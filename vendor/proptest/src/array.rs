//! Fixed-size array strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct UniformArray<S, const N: usize>(S);

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        let values: Vec<S::Value> = (0..N).map(|_| self.0.generate(rng)).collect();
        match values.try_into() {
            Ok(array) => array,
            Err(_) => unreachable!("generated exactly N values"),
        }
    }
}

/// `[S::Value; N]` with every element from `element`.
pub fn uniform<S: Strategy, const N: usize>(element: S) -> UniformArray<S, N> {
    UniformArray(element)
}

macro_rules! uniform_fn {
    ($($name:ident => $n:literal),+ $(,)?) => {$(
        pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
            UniformArray(element)
        }
    )+};
}

uniform_fn!(
    uniform4 => 4,
    uniform8 => 8,
    uniform12 => 12,
    uniform16 => 16,
    uniform24 => 24,
    uniform32 => 32,
);
