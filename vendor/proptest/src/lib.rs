//! Minimal in-tree stand-in for the `proptest` crate so the workspace
//! builds without network access to a cargo registry.
//!
//! Provides the strategy combinators, `proptest!`/`prop_assert*` macros
//! and collection/sample/array helpers the workspace's property tests
//! use. Cases are generated from a deterministic per-test RNG (seeded
//! from the test name), so failures reproduce across runs. There is no
//! shrinking: a failing case reports its case number and message and the
//! inputs must be read from the assertion text.

pub mod strategy;
pub mod test_runner;
pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod array;
pub mod string;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(config = ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __result: $crate::test_runner::TestCaseResult = (move || {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                __result
            });
        }
        $crate::__proptest_items!(config = ($cfg); $($rest)*);
    };
}

/// `assert!` that reports a test-case failure instead of panicking, so
/// the runner can attach the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// `assert_ne!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
}

/// Discards the current case (does not count towards `cases`) when the
/// precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Picks one of several strategies (uniformly, or by `weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
