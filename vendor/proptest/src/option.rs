//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;

pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // 3:1 towards Some, matching upstream's default lean.
        if rng.next_u64() & 3 == 0 {
            None
        } else {
            Some(self.0.generate(rng))
        }
    }
}

/// `Some` from `inner` three times out of four, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}
