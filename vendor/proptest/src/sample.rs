//! Value selection: `select` and the `Index` helper.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

pub struct Select<T>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0[rng.gen_range(0..self.0.len())].clone()
    }
}

/// Uniform choice among the given values.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select(options)
}

/// A deferred index: generated once, projected onto any collection
/// length with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    pub(crate) fn from_raw(raw: u64) -> Self {
        Index(raw)
    }

    /// Projects onto `[0, len)`. Panics when `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.0 % len as u64) as usize
    }
}
