//! Tiny regex-subset string generator backing `"pattern"` strategies.
//!
//! Supported syntax — the subset the workspace's tests use, plus a
//! little headroom: literal characters, `.` (any printable char, with
//! occasional non-ASCII to exercise UTF-8 paths), character classes
//! like `[a-z0-9_]`, and the quantifiers `*`, `+`, `?`, `{m}`, `{m,n}`,
//! `{m,}` applied to the preceding atom. Unsupported constructs panic
//! so a typo fails loudly instead of generating garbage.

use crate::test_runner::TestRng;
use rand::Rng;

const UNBOUNDED_CAP: usize = 8;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// `.` — any printable character.
    Any,
    /// `[...]` — inclusive char ranges and singletons.
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"))
                    + i;
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
                i = close + 1;
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                match c {
                    'd' => Atom::Class(vec![('0', '9')]),
                    'w' => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    other => Atom::Literal(other),
                }
            }
            '(' | ')' | '|' => {
                panic!("unsupported regex construct {:?} in pattern {pattern:?}", chars[i])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                i += 1;
                (1, UNBOUNDED_CAP)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                let parts: Vec<&str> = body.split(',').collect();
                match parts.as_slice() {
                    [exact] => {
                        let n = exact.trim().parse().expect("repetition count");
                        (n, n)
                    }
                    [lo, hi] if hi.trim().is_empty() => {
                        let lo: usize = lo.trim().parse().expect("repetition lower bound");
                        (lo, lo + UNBOUNDED_CAP)
                    }
                    [lo, hi] => (
                        lo.trim().parse().expect("repetition lower bound"),
                        hi.trim().parse().expect("repetition upper bound"),
                    ),
                    _ => panic!("malformed repetition in pattern {pattern:?}"),
                }
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn generate_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Any => {
            // Mostly printable ASCII; occasionally multi-byte to keep
            // UTF-8 handling honest.
            match rng.gen_range(0..10u8) {
                0 => ['λ', 'é', '中', '🦀', 'Ж'][rng.gen_range(0..5usize)],
                _ => (b' ' + rng.gen_range(0..95u8)) as char,
            }
        }
        Atom::Class(ranges) => {
            let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
            char::from_u32(rng.gen_range(lo as u32..=hi as u32))
                .expect("class range stays in scalar space")
        }
    }
}

/// Generates one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = rng.gen_range(piece.min..=piece.max);
        for _ in 0..count {
            out.push(generate_atom(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_with_repetition() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn dot_star_generates_valid_utf8() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = generate_from_pattern(".*", &mut rng);
            assert!(s.chars().count() <= 8);
        }
    }

    #[test]
    fn literals_and_escapes() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = generate_from_pattern("ab\\.c", &mut rng);
        assert_eq!(s, "ab.c");
        let d = generate_from_pattern("\\d{3}", &mut rng);
        assert_eq!(d.len(), 3);
        assert!(d.chars().all(|c| c.is_ascii_digit()));
    }
}
