//! The `Strategy` trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is just a generator.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence: whence.into(), f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Local rejection sampling. A pathological filter that almost
        // never passes aborts the test instead of hanging.
        for _ in 0..10_000 {
            let candidate = self.inner.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter({:?}) rejected 10000 candidates in a row", self.whence);
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Weighted choice over same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        Self::new_weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total_weight = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { options, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, strategy) in &self.options {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick beyond total weight");
    }
}

// ------------------------------------------------------ ranges as strategies

macro_rules! numeric_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// -------------------------------------------------- strings from mini-regex

/// String literals are strategies generating matching strings; see
/// [`crate::string::generate_from_pattern`] for the supported subset.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

// ------------------------------------------------------ tuples of strategies

macro_rules! tuple_strategy {
    ($(($t:ident $idx:tt)),+) => {
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!((T0 0));
tuple_strategy!((T0 0), (T1 1));
tuple_strategy!((T0 0), (T1 1), (T2 2));
tuple_strategy!((T0 0), (T1 1), (T2 2), (T3 3));
tuple_strategy!((T0 0), (T1 1), (T2 2), (T3 3), (T4 4));
tuple_strategy!((T0 0), (T1 1), (T2 2), (T3 3), (T4 4), (T5 5));
tuple_strategy!((T0 0), (T1 1), (T2 2), (T3 3), (T4 4), (T5 5), (T6 6));
tuple_strategy!((T0 0), (T1 1), (T2 2), (T3 3), (T4 4), (T5 5), (T6 6), (T7 7));
tuple_strategy!(
    (T0 0), (T1 1), (T2 2), (T3 3), (T4 4), (T5 5), (T6 6), (T7 7), (T8 8)
);
tuple_strategy!(
    (T0 0), (T1 1), (T2 2), (T3 3), (T4 4), (T5 5), (T6 6), (T7 7), (T8 8), (T9 9)
);
tuple_strategy!(
    (T0 0), (T1 1), (T2 2), (T3 3), (T4 4), (T5 5), (T6 6), (T7 7), (T8 8), (T9 9),
    (T10 10)
);
tuple_strategy!(
    (T0 0), (T1 1), (T2 2), (T3 3), (T4 4), (T5 5), (T6 6), (T7 7), (T8 8), (T9 9),
    (T10 10), (T11 11)
);
