//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

/// An inclusive size band for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec`s whose length falls in `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        // Duplicate keys collapse, so the final size may fall below the
        // picked target — same contract as upstream.
        let target = self.size.pick(rng);
        let mut map = BTreeMap::new();
        for _ in 0..target {
            map.insert(self.key.generate(rng), self.value.generate(rng));
        }
        map
    }
}

/// `BTreeMap`s with `size`-many generated entries (pre-deduplication).
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy { key, value, size: size.into() }
}
