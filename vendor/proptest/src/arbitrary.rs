//! `any::<T>()` — canonical strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;
use std::marker::PhantomData;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-domain generator for primitives.
pub struct AnyPrimitive<T>(PhantomData<T>);

impl<T> Default for AnyPrimitive<T> {
    fn default() -> Self {
        AnyPrimitive(PhantomData)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive::default()
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive::default()
    }
}

// Floats generate from raw bits, so infinities and NaNs appear with
// their natural (tiny) probability — just like upstream proptest
// exercises the full representable domain.
impl Strategy for AnyPrimitive<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u32())
    }
}

impl Arbitrary for f32 {
    type Strategy = AnyPrimitive<f32>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive::default()
    }
}

impl Strategy for AnyPrimitive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrimitive<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive::default()
    }
}

impl Strategy for AnyPrimitive<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        // Bias towards ASCII but exercise the full scalar-value space.
        if rng.next_u64() & 3 == 0 {
            loop {
                if let Some(c) = char::from_u32(rng.next_u32() % 0x11_0000) {
                    return c;
                }
            }
        } else {
            (b' ' + (rng.next_u64() % 95) as u8) as char
        }
    }
}

impl Arbitrary for char {
    type Strategy = AnyPrimitive<char>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive::default()
    }
}

impl Strategy for AnyPrimitive<crate::sample::Index> {
    type Value = crate::sample::Index;
    fn generate(&self, rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}

impl Arbitrary for crate::sample::Index {
    type Strategy = AnyPrimitive<crate::sample::Index>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive::default()
    }
}
