//! Deterministic case runner behind the `proptest!` macro.

use std::fmt;

pub use rand::rngs::StdRng as TestRng;

/// Per-test configuration; only `cases` matters to this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The case was discarded by `prop_assume!` (not counted).
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject(msg) => write!(f, "rejected: {msg}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Runs `config.cases` cases of `property`, each with an RNG seeded from
/// the test name and case index — failures reproduce deterministically.
pub fn run<F>(config: &ProptestConfig, name: &str, property: F)
where
    F: Fn(&mut TestRng) -> TestCaseResult,
{
    use rand::SeedableRng;
    let base_seed = fnv1a(name.as_bytes());
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let mut case = 0u64;
    while passed < config.cases {
        let seed = base_seed.wrapping_add(case);
        let mut rng = TestRng::seed_from_u64(seed);
        case += 1;
        match property(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                let limit = u64::from(config.cases) * 32 + 1024;
                assert!(
                    rejected <= limit,
                    "proptest '{name}': too many rejected cases ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed at case {} (seed {seed:#x}):\n{msg}",
                    case - 1
                );
            }
        }
    }
}
