//! Minimal benchmarking harness exposing the slice of the criterion
//! API this workspace's benches use. Each benchmark runs a short
//! calibrated timing loop and prints one mean-per-iteration line; there
//! is no statistical analysis, plotting, or CLI argument handling.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock budget per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into() }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().0, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&full, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&full, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl ToString, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.to_string(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    // Calibrate: find an iteration count that fills the budget.
    let mut iters = 1u64;
    let elapsed = loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= MEASURE_BUDGET || iters >= 1 << 24 {
            break b.elapsed;
        }
        let scale = if b.elapsed.is_zero() {
            16
        } else {
            (MEASURE_BUDGET.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
        };
        iters = iters.saturating_mul(scale);
    };
    let per_iter = elapsed.as_nanos() as f64 / iters as f64;
    let (value, unit) = if per_iter < 1_000.0 {
        (per_iter, "ns")
    } else if per_iter < 1_000_000.0 {
        (per_iter / 1_000.0, "us")
    } else {
        (per_iter / 1_000_000.0, "ms")
    };
    println!("{id:<56} {value:>10.2} {unit}/iter  ({iters} iters)");
}

/// Re-exported for benches that import it from criterion rather than
/// `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
