//! Minimal in-tree stand-in for the `crossbeam` crate so the workspace
//! builds without network access to a cargo registry.
//!
//! Only the `channel` module is provided: MPMC bounded/unbounded channels
//! with cloneable senders *and* receivers, blocking `recv`, and
//! `recv_timeout` — the surface `mvtee-core`'s pipeline uses. Built on a
//! `Mutex<VecDeque>` + two `Condvar`s; throughput is adequate for the
//! checkpoint batch sizes the monitor pushes through it.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// Carries the rejected message back to the caller.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("channel is empty and disconnected")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel is empty"),
                TryRecvError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
    }

    /// The sending half of a channel. Cloneable; the channel disconnects
    /// for receivers once the last clone drops.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable (MPMC); the channel
    /// disconnects for senders once the last clone drops.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a channel holding at most `cap` queued messages; `send`
    /// blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    /// Creates a channel with no queue bound; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, blocking while a bounded channel is full.
        /// Fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.shared.not_full.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, blocking until one arrives. Fails
        /// only when the queue is drained and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).unwrap();
            }
        }

        /// Like [`recv`](Self::recv) but gives up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, _timed_out) =
                    self.shared.not_empty.wait_timeout(state, deadline - now).unwrap();
                state = next;
            }
        }

        /// Dequeues the next message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap();
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;
        use std::time::Duration;

        #[test]
        fn unbounded_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv(), Ok(7));
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap();
        }

        #[test]
        fn recv_after_senders_drop() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_after_receivers_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn mpmc_fan_in_fan_out() {
            let (tx, rx) = bounded(4);
            let producers: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    thread::spawn(move || {
                        for j in 0..25 {
                            tx.send(i * 100 + j).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || {
                        let mut n = 0;
                        while rx.recv().is_ok() {
                            n += 1;
                        }
                        n
                    })
                })
                .collect();
            drop(rx);
            for p in producers {
                p.join().unwrap();
            }
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 100);
        }
    }
}
