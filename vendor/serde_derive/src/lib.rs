//! Minimal in-tree stand-in for `serde_derive` so the workspace builds
//! without network access to a cargo registry.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes the workspace actually derives on: non-generic named structs,
//! tuple/newtype/unit structs, and enums whose variants are unit,
//! newtype, tuple or struct-like. No `#[serde(...)]` attributes are
//! supported (none exist in the workspace). The implementation parses
//! the raw `TokenStream` by hand and emits code through `format!` —
//! no `syn`/`quote`, keeping the crate dependency-free.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Unnamed(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Skips `#[...]` attributes (including doc comments) starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, …) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(ident)) = tokens.get(i) {
        if ident.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits `tokens` on commas that sit outside any `<...>` nesting.
/// (Delimiter groups are single token trees, so only angle brackets —
/// which are plain puncts — need explicit depth tracking.)
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0usize;
    for token in tokens {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(token.clone());
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Extracts field names from the token stream of a `{ ... }` fields group.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    split_top_level_commas(tokens)
        .iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let i = skip_vis(chunk, skip_attrs(chunk, 0));
            match chunk.get(i) {
                Some(TokenTree::Ident(ident)) => ident.to_string(),
                other => panic!("expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn count_unnamed_fields(tokens: &[TokenTree]) -> usize {
    split_top_level_commas(tokens).iter().filter(|chunk| !chunk.is_empty()).count()
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    split_top_level_commas(tokens)
        .iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let i = skip_attrs(chunk, 0);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(ident)) => ident.to_string(),
                other => panic!("expected variant name, found {other:?}"),
            };
            let fields = match chunk.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Unnamed(count_unnamed_fields(&inner))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_fields(&inner))
                }
                // `None` or an explicit `= discriminant`.
                _ => Fields::Unit,
            };
            Variant { name, fields }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    i += 1;
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_fields(&inner))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Unnamed(count_unnamed_fields(&inner))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unsupported struct body: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    parse_variants(&inner)
                }
                other => panic!("unsupported enum body: {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("cannot derive serde traits for `{other}` items (generics unsupported)"),
    }
}

// ------------------------------------------------------------- Serialize

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match item {
        Item::Struct { name, fields } => serialize_struct(&name, &fields),
        Item::Enum { name, variants } => serialize_enum(&name, &variants),
    };
    code.parse().expect("generated Serialize impl parses")
}

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let mut body = format!(
                "let mut __state = serde::Serializer::serialize_struct(__serializer, \"{name}\", {})?;\n",
                names.len()
            );
            for field in names {
                let _ = writeln!(
                    body,
                    "serde::ser::SerializeStruct::serialize_field(&mut __state, \"{field}\", &self.{field})?;"
                );
            }
            body.push_str("serde::ser::SerializeStruct::end(__state)");
            body
        }
        Fields::Unnamed(1) => {
            format!("serde::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)")
        }
        Fields::Unnamed(n) => {
            let mut body = format!(
                "let mut __state = serde::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {n})?;\n"
            );
            for i in 0..*n {
                let _ = writeln!(
                    body,
                    "serde::ser::SerializeTupleStruct::serialize_field(&mut __state, &self.{i})?;"
                );
            }
            body.push_str("serde::ser::SerializeTupleStruct::end(__state)");
            body
        }
        Fields::Unit => {
            format!("serde::Serializer::serialize_unit_struct(__serializer, \"{name}\")")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn serialize<__S: serde::Serializer>(&self, __serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    if variants.is_empty() {
        return format!(
            "impl serde::Serialize for {name} {{\n\
                 fn serialize<__S: serde::Serializer>(&self, __serializer: __S)\n\
                     -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                     match *self {{}}\n\
                 }}\n\
             }}"
        );
    }
    let mut arms = String::new();
    for (index, variant) in variants.iter().enumerate() {
        let v = &variant.name;
        match &variant.fields {
            Fields::Unit => {
                let _ = writeln!(
                    arms,
                    "{name}::{v} => serde::Serializer::serialize_unit_variant(__serializer, \"{name}\", {index}u32, \"{v}\"),"
                );
            }
            Fields::Unnamed(1) => {
                let _ = writeln!(
                    arms,
                    "{name}::{v}(__f0) => serde::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {index}u32, \"{v}\", __f0),"
                );
            }
            Fields::Unnamed(n) => {
                let bindings: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let mut arm = format!(
                    "{name}::{v}({}) => {{\n\
                     let mut __state = serde::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {index}u32, \"{v}\", {n})?;\n",
                    bindings.join(", ")
                );
                for binding in &bindings {
                    let _ = writeln!(
                        arm,
                        "serde::ser::SerializeTupleVariant::serialize_field(&mut __state, {binding})?;"
                    );
                }
                arm.push_str("serde::ser::SerializeTupleVariant::end(__state)\n},\n");
                arms.push_str(&arm);
            }
            Fields::Named(fields) => {
                let bindings: Vec<String> = fields
                    .iter()
                    .enumerate()
                    .map(|(i, f)| format!("{f}: __f{i}"))
                    .collect();
                let mut arm = format!(
                    "{name}::{v} {{ {} }} => {{\n\
                     let mut __state = serde::Serializer::serialize_struct_variant(__serializer, \"{name}\", {index}u32, \"{v}\", {})?;\n",
                    bindings.join(", "),
                    fields.len()
                );
                for (i, field) in fields.iter().enumerate() {
                    let _ = writeln!(
                        arm,
                        "serde::ser::SerializeStructVariant::serialize_field(&mut __state, \"{field}\", __f{i})?;"
                    );
                }
                arm.push_str("serde::ser::SerializeStructVariant::end(__state)\n},\n");
                arms.push_str(&arm);
            }
        }
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn serialize<__S: serde::Serializer>(&self, __serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 match self {{\n{arms}\n}}\n\
             }}\n\
         }}"
    )
}

// ----------------------------------------------------------- Deserialize

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match item {
        Item::Struct { name, fields } => deserialize_struct(&name, &fields),
        Item::Enum { name, variants } => deserialize_enum(&name, &variants),
    };
    code.parse().expect("generated Deserialize impl parses")
}

/// `let __f{i} = …next_element…` lines for a positional visitor body.
fn seq_field_lets(count: usize, expected: &str) -> String {
    let mut lets = String::new();
    for i in 0..count {
        let _ = writeln!(
            lets,
            "let __f{i} = match serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                 Some(__value) => __value,\n\
                 None => return ::core::result::Result::Err(serde::de::Error::invalid_length({i}, \"{expected}\")),\n\
             }};"
        );
    }
    lets
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let (visitor_body, entry) = match fields {
        Fields::Named(names) => {
            let lets = seq_field_lets(names.len(), &format!("struct {name}"));
            let constructor: Vec<String> = names
                .iter()
                .enumerate()
                .map(|(i, f)| format!("{f}: __f{i}"))
                .collect();
            let field_list: Vec<String> = names.iter().map(|f| format!("\"{f}\"")).collect();
            (
                format!(
                    "fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                         -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                         {lets}\n\
                         ::core::result::Result::Ok({name} {{ {} }})\n\
                     }}",
                    constructor.join(", ")
                ),
                format!(
                    "serde::Deserializer::deserialize_struct(__deserializer, \"{name}\", &[{}], __MvteeVisitor)",
                    field_list.join(", ")
                ),
            )
        }
        Fields::Unnamed(1) => (
            format!(
                "fn visit_newtype_struct<__D: serde::Deserializer<'de>>(self, __deserializer: __D)\n\
                     -> ::core::result::Result<Self::Value, __D::Error> {{\n\
                     ::core::result::Result::Ok({name}(serde::Deserialize::deserialize(__deserializer)?))\n\
                 }}"
            ),
            format!(
                "serde::Deserializer::deserialize_newtype_struct(__deserializer, \"{name}\", __MvteeVisitor)"
            ),
        ),
        Fields::Unnamed(n) => {
            let lets = seq_field_lets(*n, &format!("tuple struct {name}"));
            let bindings: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            (
                format!(
                    "fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                         -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                         {lets}\n\
                         ::core::result::Result::Ok({name}({}))\n\
                     }}",
                    bindings.join(", ")
                ),
                format!(
                    "serde::Deserializer::deserialize_tuple_struct(__deserializer, \"{name}\", {n}, __MvteeVisitor)"
                ),
            )
        }
        Fields::Unit => (
            format!(
                "fn visit_unit<__E: serde::de::Error>(self) -> ::core::result::Result<Self::Value, __E> {{\n\
                     ::core::result::Result::Ok({name})\n\
                 }}"
            ),
            format!(
                "serde::Deserializer::deserialize_unit_struct(__deserializer, \"{name}\", __MvteeVisitor)"
            ),
        ),
    };
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 struct __MvteeVisitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __MvteeVisitor {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                         __f.write_str(\"struct {name}\")\n\
                     }}\n\
                     {visitor_body}\n\
                 }}\n\
                 {entry}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for (index, variant) in variants.iter().enumerate() {
        let v = &variant.name;
        match &variant.fields {
            Fields::Unit => {
                let _ = writeln!(
                    arms,
                    "{index}u32 => {{\n\
                         serde::de::VariantAccess::unit_variant(__variant)?;\n\
                         ::core::result::Result::Ok({name}::{v})\n\
                     }},"
                );
            }
            Fields::Unnamed(1) => {
                let _ = writeln!(
                    arms,
                    "{index}u32 => ::core::result::Result::Ok({name}::{v}(serde::de::VariantAccess::newtype_variant(__variant)?)),"
                );
            }
            Fields::Unnamed(n) => {
                let lets = seq_field_lets(*n, &format!("tuple variant {name}::{v}"));
                let bindings: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let _ = writeln!(
                    arms,
                    "{index}u32 => {{\n\
                         struct __MvteeVariant{index};\n\
                         impl<'de> serde::de::Visitor<'de> for __MvteeVariant{index} {{\n\
                             type Value = {name};\n\
                             fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                                 __f.write_str(\"tuple variant {name}::{v}\")\n\
                             }}\n\
                             fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                                 -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                                 {lets}\n\
                                 ::core::result::Result::Ok({name}::{v}({bindings}))\n\
                             }}\n\
                         }}\n\
                         serde::de::VariantAccess::tuple_variant(__variant, {n}, __MvteeVariant{index})\n\
                     }},",
                    bindings = bindings.join(", ")
                );
            }
            Fields::Named(fields) => {
                let lets = seq_field_lets(fields.len(), &format!("struct variant {name}::{v}"));
                let constructor: Vec<String> = fields
                    .iter()
                    .enumerate()
                    .map(|(i, f)| format!("{f}: __f{i}"))
                    .collect();
                let field_list: Vec<String> = fields.iter().map(|f| format!("\"{f}\"")).collect();
                let _ = writeln!(
                    arms,
                    "{index}u32 => {{\n\
                         struct __MvteeVariant{index};\n\
                         impl<'de> serde::de::Visitor<'de> for __MvteeVariant{index} {{\n\
                             type Value = {name};\n\
                             fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                                 __f.write_str(\"struct variant {name}::{v}\")\n\
                             }}\n\
                             fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                                 -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                                 {lets}\n\
                                 ::core::result::Result::Ok({name}::{v} {{ {constructor} }})\n\
                             }}\n\
                         }}\n\
                         serde::de::VariantAccess::struct_variant(__variant, &[{field_list}], __MvteeVariant{index})\n\
                     }},",
                    constructor = constructor.join(", "),
                    field_list = field_list.join(", ")
                );
            }
        }
    }
    let variant_list: Vec<String> = variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 struct __MvteeVisitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __MvteeVisitor {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                         __f.write_str(\"enum {name}\")\n\
                     }}\n\
                     fn visit_enum<__A: serde::de::EnumAccess<'de>>(self, __data: __A)\n\
                         -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                         let (__index, __variant) = serde::de::EnumAccess::variant::<u32>(__data)?;\n\
                         match __index {{\n\
                             {arms}\n\
                             _ => ::core::result::Result::Err(serde::de::Error::custom(\n\
                                 ::std::format!(\"invalid variant index {{}} for enum {name}\", __index))),\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 serde::Deserializer::deserialize_enum(__deserializer, \"{name}\", &[{variant_list}], __MvteeVisitor)\n\
             }}\n\
         }}",
        variant_list = variant_list.join(", ")
    )
}
