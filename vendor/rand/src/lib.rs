//! Minimal in-tree stand-in for the `rand` crate so the workspace builds
//! without network access to a cargo registry.
//!
//! Covers the surface the workspace uses: `RngCore`, `SeedableRng`
//! (including `seed_from_u64`), the `Rng` extension trait (`gen_range`
//! over integer/float ranges, `gen_bool`, `fill`), `rngs::StdRng`,
//! `thread_rng()` and `seq::SliceRandom`. The generator is
//! xoshiro256++ seeded via splitmix64 — statistically solid for the
//! simulation/diversification workloads here, but the exact streams
//! differ from upstream `rand 0.8`, so seeds do not reproduce upstream
//! sequences bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// Core uniform bit source.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via splitmix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let mut x = {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            for byte in chunk {
                *byte = x as u8;
                x >>= 8;
            }
        }
        Self::from_seed(seed)
    }

    /// Seeds from ambient process entropy (address-space layout, time,
    /// and the std hasher's per-process randomness).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_u64())
    }
}

fn entropy_u64() -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    use std::time::{SystemTime, UNIX_EPOCH};
    let mut hasher = RandomState::new().build_hasher();
    if let Ok(dur) = SystemTime::now().duration_since(UNIX_EPOCH) {
        hasher.write_u128(dur.as_nanos());
    }
    hasher.write_usize(&hasher as *const _ as usize);
    hasher.finish()
}

/// A range or distribution `gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                // Lemire-style widening multiply: maps next_u64 onto
                // [0, span) with negligible bias for the spans used here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as $wide).wrapping_add(hi as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * (span + 1) as u128) >> 64) as u64;
                ((start as $wide).wrapping_add(hi as $wide)) as $t
            }
        }
    )+};
}

int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! float_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                start + unit * (end - start)
            }
        }
    )+};
}

float_sample_range!(f32, f64);

/// Destinations `Rng::fill` can populate with uniform bytes.
pub trait Fill {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// Convenience extension over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.try_fill(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the standard PRNG of this stand-in.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xD1B5_4A32_D192_ED03, 1, 2];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    /// Per-call entropy-seeded generator returned by [`crate::thread_rng`].
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }
}

use std::cell::RefCell;

thread_local! {
    static THREAD_RNG: RefCell<rngs::StdRng> = RefCell::new(rngs::StdRng::from_entropy());
}

/// Returns a generator seeded once per thread from process entropy.
pub fn thread_rng() -> rngs::ThreadRng {
    // Each call snapshots and advances the thread-local state so two
    // handles never replay the same stream.
    THREAD_RNG.with(|cell| {
        let mut inner = cell.borrow_mut();
        let fork = rngs::StdRng::seed_from_u64(inner.next_u64());
        rngs::ThreadRng(fork)
    })
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and random picks.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `rand::prelude` — the common imports, mirroring upstream.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f32 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z: f32 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&z));
            let b: u8 = rng.gen_range(0..3u8);
            assert!(b < 3);
        }
    }

    #[test]
    fn fill_and_fill_bytes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut key = [0u8; 32];
        rng.fill(&mut key);
        assert_ne!(key, [0u8; 32]);
        let mut buf = vec![0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn gen_bool_rough_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn thread_rng_streams_differ() {
        use super::thread_rng;
        let mut a = thread_rng();
        let mut b = thread_rng();
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
