//! Minimal in-tree stand-in for the `serde` crate so the workspace builds
//! without network access to a cargo registry.
//!
//! Implements the serde data model exactly as far as `mvtee-codec` (the
//! workspace's only format) and the workspace's derived types exercise it:
//! the full `Serializer`/`Deserializer` method sets, the seven
//! `Serialize*` sub-traits, `Visitor`/`SeqAccess`/`MapAccess`/
//! `EnumAccess`/`VariantAccess`/`DeserializeSeed`,
//! `de::value::U32Deserializer`, and `Serialize`/`Deserialize` impls for
//! the std types the workspace serializes. The `derive` feature re-exports
//! the in-tree `serde_derive` proc macros.

pub mod ser;
pub mod de;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

mod impls;
