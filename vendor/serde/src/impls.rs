//! `Serialize`/`Deserialize` impls for the std types the workspace
//! actually serializes.

use crate::de::{self, Deserialize, Deserializer, MapAccess, SeqAccess, Visitor};
use crate::ser::{
    Serialize, SerializeMap, SerializeSeq, SerializeTuple, Serializer,
};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;

// ---------------------------------------------------------------- primitives

macro_rules! primitive_impl {
    ($ty:ty, $ser:ident, $de:ident, $visit:ident, $expect:literal) => {
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self)
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct PrimitiveVisitor;
                impl<'de> Visitor<'de> for PrimitiveVisitor {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str($expect)
                    }
                    fn $visit<E: de::Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$de(PrimitiveVisitor)
            }
        }
    };
}

primitive_impl!(bool, serialize_bool, deserialize_bool, visit_bool, "a bool");
primitive_impl!(i8, serialize_i8, deserialize_i8, visit_i8, "an i8");
primitive_impl!(i16, serialize_i16, deserialize_i16, visit_i16, "an i16");
primitive_impl!(i32, serialize_i32, deserialize_i32, visit_i32, "an i32");
primitive_impl!(i64, serialize_i64, deserialize_i64, visit_i64, "an i64");
primitive_impl!(u8, serialize_u8, deserialize_u8, visit_u8, "a u8");
primitive_impl!(u16, serialize_u16, deserialize_u16, visit_u16, "a u16");
primitive_impl!(u32, serialize_u32, deserialize_u32, visit_u32, "a u32");
primitive_impl!(u64, serialize_u64, deserialize_u64, visit_u64, "a u64");
primitive_impl!(f32, serialize_f32, deserialize_f32, visit_f32, "an f32");
primitive_impl!(f64, serialize_f64, deserialize_f64, visit_f64, "an f64");
primitive_impl!(char, serialize_char, deserialize_char, visit_char, "a char");

// usize/isize travel as u64/i64 on the wire, like upstream serde.
impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UsizeVisitor;
        impl<'de> Visitor<'de> for UsizeVisitor {
            type Value = usize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a usize")
            }
            fn visit_u64<E: de::Error>(self, v: u64) -> Result<usize, E> {
                usize::try_from(v).map_err(|_| E::custom("u64 out of usize range"))
            }
        }
        deserializer.deserialize_u64(UsizeVisitor)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct IsizeVisitor;
        impl<'de> Visitor<'de> for IsizeVisitor {
            type Value = isize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an isize")
            }
            fn visit_i64<E: de::Error>(self, v: i64) -> Result<isize, E> {
                isize::try_from(v).map_err(|_| E::custom("i64 out of isize range"))
            }
        }
        deserializer.deserialize_i64(IsizeVisitor)
    }
}

// ------------------------------------------------------------------- strings

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: de::Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

// ---------------------------------------------------------------- references

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::sync::Arc::new)
    }
}

// -------------------------------------------------------------------- option

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => serializer.serialize_some(value),
            None => serializer.serialize_none(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: de::Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_unit<E: de::Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Self::Value, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

// ---------------------------------------------------------------------- unit

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: de::Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

// ----------------------------------------------------------------- sequences

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for element in self {
            seq.serialize_element(element)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                // Cap the pre-allocation so hostile length prefixes
                // cannot trigger huge allocations before any element
                // has actually been read.
                let mut values = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(value) = seq.next_element()? {
                    values.push(value);
                }
                Ok(values)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tuple = serializer.serialize_tuple(N)?;
        for element in self {
            tuple.serialize_element(element)?;
        }
        tuple.end()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct ArrayVisitor<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for ArrayVisitor<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an array of length {N}")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<[T; N], A::Error> {
                let mut values = Vec::with_capacity(N);
                for i in 0..N {
                    match seq.next_element()? {
                        Some(value) => values.push(value),
                        None => {
                            return Err(de::Error::invalid_length(i, "more array elements"))
                        }
                    }
                }
                values
                    .try_into()
                    .map_err(|_| de::Error::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_tuple(N, ArrayVisitor::<T, N>(PhantomData))
    }
}

// -------------------------------------------------------------------- tuples

macro_rules! tuple_impl {
    ($len:expr => $(($idx:tt $t:ident $v:ident)),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tuple = serializer.serialize_tuple($len)?;
                $(tuple.serialize_element(&self.$idx)?;)+
                tuple.end()
            }
        }

        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct TupleVisitor<$($t),+>(PhantomData<($($t,)+)>);
                impl<'de, $($t: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($t),+> {
                    type Value = ($($t,)+);
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, "a tuple of length {}", $len)
                    }
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        $(
                            let $v = seq
                                .next_element()?
                                .ok_or_else(|| {
                                    de::Error::invalid_length($idx, "more tuple elements")
                                })?;
                        )+
                        Ok(($($v,)+))
                    }
                }
                deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
            }
        }
    };
}

tuple_impl!(1 => (0 T0 v0));
tuple_impl!(2 => (0 T0 v0), (1 T1 v1));
tuple_impl!(3 => (0 T0 v0), (1 T1 v1), (2 T2 v2));
tuple_impl!(4 => (0 T0 v0), (1 T1 v1), (2 T2 v2), (3 T3 v3));
tuple_impl!(5 => (0 T0 v0), (1 T1 v1), (2 T2 v2), (3 T3 v3), (4 T4 v4));
tuple_impl!(6 => (0 T0 v0), (1 T1 v1), (2 T2 v2), (3 T3 v3), (4 T4 v4), (5 T5 v5));
tuple_impl!(7 => (0 T0 v0), (1 T1 v1), (2 T2 v2), (3 T3 v3), (4 T4 v4), (5 T5 v5), (6 T6 v6));
tuple_impl!(8 => (0 T0 v0), (1 T1 v1), (2 T2 v2), (3 T3 v3), (4 T4 v4), (5 T5 v5), (6 T6 v6), (7 T7 v7));

// ---------------------------------------------------------------------- maps

macro_rules! map_serialize_body {
    ($self:ident, $serializer:ident) => {{
        let mut map = $serializer.serialize_map(Some($self.len()))?;
        for (key, value) in $self {
            map.serialize_entry(key, value)?;
        }
        map.end()
    }};
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        map_serialize_body!(self, serializer)
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BTreeMapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de>
            for BTreeMapVisitor<K, V>
        {
            type Value = BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut values = BTreeMap::new();
                while let Some((key, value)) = map.next_entry()? {
                    values.insert(key, value);
                }
                Ok(values)
            }
        }
        deserializer.deserialize_map(BTreeMapVisitor(PhantomData))
    }
}

impl<K: Serialize, V: Serialize, H: BuildHasher> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        map_serialize_body!(self, serializer)
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct HashMapVisitor<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for HashMapVisitor<K, V, H>
        where
            K: Deserialize<'de> + Eq + Hash,
            V: Deserialize<'de>,
            H: BuildHasher + Default,
        {
            type Value = HashMap<K, V, H>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut values = HashMap::with_hasher(H::default());
                while let Some((key, value)) = map.next_entry()? {
                    values.insert(key, value);
                }
                Ok(values)
            }
        }
        deserializer.deserialize_map(HashMapVisitor(PhantomData))
    }
}

// ---------------------------------------------------------------------- sets

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for element in self {
            seq.serialize_element(element)?;
        }
        seq.end()
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BTreeSetVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de> + Ord> Visitor<'de> for BTreeSetVisitor<T> {
            type Value = BTreeSet<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut values = BTreeSet::new();
                while let Some(value) = seq.next_element()? {
                    values.insert(value);
                }
                Ok(values)
            }
        }
        deserializer.deserialize_seq(BTreeSetVisitor(PhantomData))
    }
}

impl<T: Serialize, H: BuildHasher> Serialize for HashSet<T, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for element in self {
            seq.serialize_element(element)?;
        }
        seq.end()
    }
}

impl<'de, T, H> Deserialize<'de> for HashSet<T, H>
where
    T: Deserialize<'de> + Eq + Hash,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct HashSetVisitor<T, H>(PhantomData<(T, H)>);
        impl<'de, T, H> Visitor<'de> for HashSetVisitor<T, H>
        where
            T: Deserialize<'de> + Eq + Hash,
            H: BuildHasher + Default,
        {
            type Value = HashSet<T, H>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut values = HashSet::with_hasher(H::default());
                while let Some(value) = seq.next_element()? {
                    values.insert(value);
                }
                Ok(values)
            }
        }
        deserializer.deserialize_seq(HashSetVisitor(PhantomData))
    }
}

// ----------------------------------------------------------------- PhantomData

impl<T> Serialize for PhantomData<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit_struct("PhantomData")
    }
}

impl<'de, T> Deserialize<'de> for PhantomData<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct PhantomVisitor<T>(PhantomData<T>);
        impl<'de, T> Visitor<'de> for PhantomVisitor<T> {
            type Value = PhantomData<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: de::Error>(self) -> Result<Self::Value, E> {
                Ok(PhantomData)
            }
        }
        deserializer.deserialize_unit_struct("PhantomData", PhantomVisitor(PhantomData))
    }
}
