//! Deserialization half of the data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Errors produced while deserializing.
pub trait Error: Sized {
    fn custom<T: Display>(msg: T) -> Self;

    fn invalid_length(len: usize, expected: &str) -> Self {
        Self::custom(format!("invalid length {len}, expected {expected}"))
    }

    fn missing_field(field: &'static str) -> Self {
        Self::custom(format!("missing field `{field}`"))
    }
}

/// A value constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stateful deserialization entry point; `PhantomData<T>` is the stateless
/// instance standing in for plain [`Deserialize`].
pub trait DeserializeSeed<'de>: Sized {
    type Value;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A data format that can produce any deserializable value.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V)
        -> Result<V::Value, Self::Error>;
    fn deserialize_ignored_any<V: Visitor<'de>>(
        self,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

fn unexpected<'de, V: Visitor<'de>, E: Error>(visitor: &V, got: &str) -> E {
    struct Expecting<'a, 'de, V: Visitor<'de>>(&'a V, PhantomData<&'de ()>);
    impl<'a, 'de, V: Visitor<'de>> Display for Expecting<'a, 'de, V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.expecting(f)
        }
    }
    E::custom(format!("invalid type: got {got}, expected {}", Expecting(visitor, PhantomData)))
}

/// Receives whichever shape of value the format produced.
#[allow(unused_variables)]
pub trait Visitor<'de>: Sized {
    type Value;

    /// Writes a noun phrase for error messages: "expected {}".
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        Err(unexpected(&self, "bool"))
    }
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        Err(unexpected(&self, "i8"))
    }
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        Err(unexpected(&self, "i16"))
    }
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        Err(unexpected(&self, "i32"))
    }
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        Err(unexpected(&self, "i64"))
    }
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        Err(unexpected(&self, "u8"))
    }
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        Err(unexpected(&self, "u16"))
    }
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        Err(unexpected(&self, "u32"))
    }
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        Err(unexpected(&self, "u64"))
    }
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        Err(unexpected(&self, "f32"))
    }
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        Err(unexpected(&self, "f64"))
    }
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        Err(unexpected(&self, "char"))
    }
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        Err(unexpected(&self, "string"))
    }
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        Err(unexpected(&self, "bytes"))
    }
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(unexpected(&self, "none"))
    }
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        Err(unexpected(&self, "some"))
    }
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(unexpected(&self, "unit"))
    }
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        Err(unexpected(&self, "newtype struct"))
    }
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, "sequence"))
    }
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, "map"))
    }
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, "enum"))
    }
}

/// Streaming access to sequence elements.
pub trait SeqAccess<'de> {
    type Error: Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Streaming access to map entries.
pub trait MapAccess<'de> {
    type Error: Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V)
        -> Result<V::Value, Self::Error>;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(key) => Ok(Some((key, self.next_value()?))),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the discriminant of an enum value.
pub trait EnumAccess<'de>: Sized {
    type Error: Error;
    type Variant: VariantAccess<'de, Error = Self::Error>;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of one enum variant.
pub trait VariantAccess<'de>: Sized {
    type Error: Error;

    fn unit_variant(self) -> Result<(), Self::Error>;

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Deserializers over in-memory primitives (used for enum discriminants).
pub mod value {
    use super::{Deserializer, Error, Visitor};
    use std::marker::PhantomData;

    /// Feeds one `u32` to whatever visitor asks for it.
    pub struct U32Deserializer<E> {
        value: u32,
        marker: PhantomData<E>,
    }

    impl<E> U32Deserializer<E> {
        pub fn new(value: u32) -> Self {
            U32Deserializer { value, marker: PhantomData }
        }
    }

    macro_rules! forward_to_visit_u32 {
        ($($method:ident)+) => {$(
            fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                visitor.visit_u32(self.value)
            }
        )+};
    }

    impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
        type Error = E;

        forward_to_visit_u32!(
            deserialize_any deserialize_bool
            deserialize_i8 deserialize_i16 deserialize_i32 deserialize_i64
            deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64
            deserialize_f32 deserialize_f64 deserialize_char
            deserialize_str deserialize_string deserialize_bytes deserialize_byte_buf
            deserialize_option deserialize_unit deserialize_seq deserialize_map
            deserialize_identifier deserialize_ignored_any
        );

        fn deserialize_unit_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_newtype_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_tuple<V: Visitor<'de>>(
            self,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_tuple_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_enum<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
    }
}
