//! Minimal in-tree stand-in for the `parking_lot` crate so the workspace
//! builds without network access to a cargo registry.
//!
//! Provides the non-poisoning `Mutex`/`RwLock` API surface the workspace
//! actually uses, backed by `std::sync`. Lock poisoning is deliberately
//! swallowed (`parking_lot` locks cannot poison), which matches how the
//! callers treat these locks.

use std::sync::{self, TryLockError};

/// Non-poisoning mutex with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Non-poisoning reader-writer lock with the `parking_lot` convention.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
