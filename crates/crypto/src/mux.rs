//! Lane multiplexing: several [`FrameTransport`] endpoints over one
//! connection.
//!
//! A variant worker process keeps a single TCP connection to the monitor
//! but needs several independent frame streams on it — the plaintext
//! bootstrap exchange, the two directional data-plane channels that
//! each own their own AEAD sequence space, and (for supervised workers)
//! a heartbeat lane. [`split`] turns one transport into N [`MuxLane`]s:
//! every outbound frame is prefixed with its 1-byte lane id, and a
//! demultiplexer thread routes inbound frames to the destination lane's
//! queue.
//!
//! Lifecycle: when the underlying connection dies the pump thread exits
//! and every lane's `recv_frame` reports a disconnect (how a killed
//! worker process surfaces as a quarantine in the monitor). The pump
//! records *why* it exited, so lanes distinguish an orderly hang-up
//! ([`CryptoError::ConnectionClosed`]) from a wire-protocol violation
//! ([`CryptoError::MalformedFrame`]) — a supervisor treats the former as
//! liveness and the latter as hostility. Conversely, when the *last*
//! lane of a split is dropped the underlying transport is closed, so the
//! remote peer observes the hang-up even though the local pump still
//! holds a reference to the connection.

use crate::channel::FrameTransport;
use crate::{CryptoError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Lane id for the bootstrap/attestation exchange.
pub const LANE_BOOTSTRAP: u8 = 0;
/// Lane id for stage requests (monitor → variant).
pub const LANE_REQUEST: u8 = 1;
/// Lane id for stage responses (variant → monitor).
pub const LANE_RESPONSE: u8 = 2;
/// Lane id for keepalive heartbeats (variant → monitor).
pub const LANE_HEARTBEAT: u8 = 3;
/// Lane id for model-registry provisioning (tenant → registry): the
/// chunked encrypted upload protocol of `mvtee-registry` runs its
/// begin/push/finalize exchange on this lane so model material shares a
/// connection with the bootstrap and data-plane lanes without ever
/// mixing frame streams.
pub const LANE_PROVISION: u8 = 4;

/// Pump has not exited yet.
const PUMP_RUNNING: u8 = 0;
/// Pump exited because the underlying transport reported a disconnect.
const PUMP_CLOSED: u8 = 1;
/// Pump exited on a wire-protocol violation (frame without a lane id).
const PUMP_VIOLATION: u8 = 2;

/// Closes the shared transport once every lane of a split is gone.
///
/// The pump thread must NOT hold this (only the transport and the exit
/// reason), or the close-on-last-lane-drop lifecycle would never fire.
struct LaneRegistry {
    transport: Arc<dyn FrameTransport + Sync>,
    /// Why the pump thread exited ([`PUMP_RUNNING`] while it is alive).
    exit_reason: Arc<AtomicU8>,
}

impl Drop for LaneRegistry {
    fn drop(&mut self) {
        self.transport.close();
    }
}

/// One multiplexed endpoint of a [`split`] transport.
///
/// Sends prefix the lane id; receives are fed by the shared demux pump.
/// Implements [`FrameTransport`], so a
/// [`SecureChannel`](crate::channel::SecureChannel) or a plaintext
/// framing layer runs over a lane exactly as over a dedicated connection.
pub struct MuxLane {
    lane: u8,
    registry: Arc<LaneRegistry>,
    rx: Mutex<mpsc::Receiver<Vec<u8>>>,
    bytes_out: mvtee_telemetry::Counter,
    bytes_in: mvtee_telemetry::Counter,
}

impl std::fmt::Debug for MuxLane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MuxLane({})", self.lane)
    }
}

impl MuxLane {
    /// This endpoint's lane id.
    pub fn lane(&self) -> u8 {
        self.lane
    }

    /// Maps a pump exit to the error the receiving lane should surface:
    /// an orderly disconnect or a framing violation.
    fn disconnect_error(&self) -> CryptoError {
        match self.registry.exit_reason.load(Ordering::Acquire) {
            PUMP_VIOLATION => CryptoError::MalformedFrame,
            _ => CryptoError::ConnectionClosed,
        }
    }

    /// Receives one frame, waiting at most `deadline`.
    ///
    /// This is how a supervisor turns a stalled peer into a diagnosable
    /// event instead of an infinite block.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::RecvTimeout`] if no frame arrived in time,
    /// * [`CryptoError::ConnectionClosed`] on orderly disconnect,
    /// * [`CryptoError::MalformedFrame`] if the pump died on a framing
    ///   violation.
    pub fn recv_frame_deadline(&self, deadline: Duration) -> Result<Vec<u8>> {
        let rx = self.rx.lock().expect("mux lane receiver poisoned");
        match rx.recv_timeout(deadline) {
            Ok(frame) => {
                self.bytes_in.add(1 + frame.len() as u64);
                Ok(frame)
            }
            Err(mpsc::RecvTimeoutError::Timeout) => Err(CryptoError::RecvTimeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(self.disconnect_error()),
        }
    }
}

impl FrameTransport for MuxLane {
    fn send_frame(&self, frame: Vec<u8>) -> Result<()> {
        let mut tagged = Vec::with_capacity(1 + frame.len());
        tagged.push(self.lane);
        tagged.extend_from_slice(&frame);
        self.bytes_out.add(tagged.len() as u64);
        self.registry.transport.send_frame(tagged)
    }

    fn recv_frame(&self) -> Result<Vec<u8>> {
        let rx = self.rx.lock().expect("mux lane receiver poisoned");
        match rx.recv() {
            Ok(frame) => {
                self.bytes_in.add(1 + frame.len() as u64);
                Ok(frame)
            }
            Err(_) => Err(self.disconnect_error()),
        }
    }

    fn close(&self) {
        self.registry.transport.close();
    }
}

/// Splits `transport` into one [`MuxLane`] per entry of `lanes`
/// (returned in the same order) and spawns the demux pump thread.
///
/// Inbound frames with an unknown lane id are dropped (the AEAD layer
/// above each lane makes injection useless anyway); an inbound frame too
/// short to carry a lane id terminates the pump as malformed. Frames for
/// a lane whose endpoint was dropped are discarded while the other lanes
/// keep flowing. Both discard cases are counted on
/// `crypto.mux.dropped_frames` so a chattering or misrouted peer shows
/// up in telemetry instead of vanishing.
pub fn split<T>(transport: T, lanes: &[u8]) -> Vec<MuxLane>
where
    T: FrameTransport + Sync + 'static,
{
    let shared: Arc<dyn FrameTransport + Sync> = Arc::new(transport);
    let exit_reason = Arc::new(AtomicU8::new(PUMP_RUNNING));
    let registry = Arc::new(LaneRegistry {
        transport: Arc::clone(&shared),
        exit_reason: Arc::clone(&exit_reason),
    });
    let bytes_out = mvtee_telemetry::counter("crypto.mux.bytes_out");
    let bytes_in = mvtee_telemetry::counter("crypto.mux.bytes_in");
    let dropped_frames = mvtee_telemetry::counter("crypto.mux.dropped_frames");
    let mut senders: HashMap<u8, mpsc::Sender<Vec<u8>>> = HashMap::new();
    let mut endpoints = Vec::with_capacity(lanes.len());
    for &lane in lanes {
        let (tx, rx) = mpsc::channel();
        senders.insert(lane, tx);
        endpoints.push(MuxLane {
            lane,
            registry: Arc::clone(&registry),
            rx: Mutex::new(rx),
            bytes_out: bytes_out.clone(),
            bytes_in: bytes_in.clone(),
        });
    }
    std::thread::Builder::new()
        .name("mux-pump".into())
        .spawn(move || {
            let mut reason = PUMP_CLOSED;
            while let Ok(frame) = shared.recv_frame() {
                let Some((&lane, rest)) = frame.split_first() else {
                    reason = PUMP_VIOLATION; // framing violation: no lane id
                    break;
                };
                match senders.get(&lane) {
                    Some(tx) => {
                        if tx.send(rest.to_vec()).is_err() {
                            dropped_frames.inc(); // endpoint retired
                        }
                    }
                    None => dropped_frames.inc(), // unknown lane id
                }
            }
            exit_reason.store(reason, Ordering::Release);
            // Dropping the senders here disconnects every lane receiver.
        })
        .expect("thread spawn cannot fail");
    endpoints
}

/// A keepalive pinger feeding a [`LANE_HEARTBEAT`] lane.
///
/// The worker side spawns one of these right after splitting its
/// connection; the monitor side watches the peer lane with
/// [`MuxLane::recv_frame_deadline`]. The thread exits on its own when
/// the transport dies (the send fails) or when [`Keepalive::stop`] is
/// called.
pub struct Keepalive {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Keepalive {
    /// Stops the pinger and joins its thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Keepalive {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Spawns a thread that sends a 1-byte ping on `lane` every `interval`
/// until the transport dies or the handle is stopped/dropped.
pub fn spawn_keepalive(lane: MuxLane, interval: Duration) -> Keepalive {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("mux-keepalive".into())
        .spawn(move || {
            // First ping immediately so the supervisor's very first
            // deadline window already sees traffic.
            while !stop_flag.load(Ordering::Acquire) {
                if lane.send_frame(vec![0xA5]).is_err() {
                    break;
                }
                std::thread::sleep(interval);
            }
        })
        .expect("thread spawn cannot fail");
    Keepalive { stop, thread: Some(thread) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Handshake, Role, SecureChannel};
    use crate::tcp::loopback_pair;

    fn lane_pair() -> (Vec<MuxLane>, Vec<MuxLane>) {
        let (client, server) = loopback_pair().expect("loopback");
        let ids = [LANE_BOOTSTRAP, LANE_REQUEST, LANE_RESPONSE];
        (split(client, &ids), split(server, &ids))
    }

    #[test]
    fn lanes_are_independent_streams() {
        let (a, b) = lane_pair();
        a[0].send_frame(b"boot".to_vec()).unwrap();
        a[2].send_frame(b"resp".to_vec()).unwrap();
        a[1].send_frame(b"req".to_vec()).unwrap();
        // Delivery order across lanes is the wire order, but each lane
        // only ever sees its own frames.
        assert_eq!(b[1].recv_frame().unwrap(), b"req");
        assert_eq!(b[0].recv_frame().unwrap(), b"boot");
        assert_eq!(b[2].recv_frame().unwrap(), b"resp");
    }

    #[test]
    fn secure_channels_run_over_distinct_lanes() {
        let (mut a, mut b) = lane_pair();
        let hs_i = Handshake::from_pre_shared(b"secret", Role::Initiator);
        let hs_r = Handshake::from_pre_shared(b"secret", Role::Responder);
        let mut req_tx = SecureChannel::new(a.remove(1), &hs_i, 0);
        let mut req_rx = SecureChannel::new(b.remove(1), &hs_r, 0);
        let mut resp_rx = SecureChannel::new(a.pop().unwrap(), &hs_i, 1);
        let mut resp_tx = SecureChannel::new(b.pop().unwrap(), &hs_r, 1);
        req_tx.send(b"stage request").unwrap();
        assert_eq!(req_rx.recv().unwrap(), b"stage request");
        resp_tx.send(b"stage response").unwrap();
        assert_eq!(resp_rx.recv().unwrap(), b"stage response");
    }

    #[test]
    fn connection_loss_disconnects_every_lane() {
        let (a, b) = lane_pair();
        drop(b); // last remote lane dropped → remote registry closes TCP
        for lane in &a {
            assert!(lane.recv_frame().is_err(), "lane {} must disconnect", lane.lane());
        }
    }

    #[test]
    fn dropping_one_lane_keeps_the_others_flowing() {
        let (mut a, b) = lane_pair();
        drop(a.remove(0)); // bootstrap lane retired after attestation
        a[0].send_frame(b"still here".to_vec()).unwrap();
        assert_eq!(b[1].recv_frame().unwrap(), b"still here");
    }

    #[test]
    fn orderly_close_reports_connection_closed() {
        let (a, b) = lane_pair();
        drop(b);
        assert!(matches!(a[0].recv_frame(), Err(CryptoError::ConnectionClosed)));
        // Deadline path maps the same disconnect identically.
        assert!(matches!(
            a[1].recv_frame_deadline(Duration::from_millis(50)),
            Err(CryptoError::ConnectionClosed)
        ));
    }

    #[test]
    fn framing_violation_reports_malformed_frame() {
        let (client, server) = loopback_pair().expect("loopback");
        let lanes = split(server, &[LANE_REQUEST]);
        // An empty frame has no lane id: a wire-protocol violation.
        client.send_frame(Vec::new()).unwrap();
        assert!(matches!(lanes[0].recv_frame(), Err(CryptoError::MalformedFrame)));
    }

    #[test]
    fn recv_frame_deadline_times_out_then_delivers() {
        let (a, b) = lane_pair();
        assert!(matches!(
            b[1].recv_frame_deadline(Duration::from_millis(25)),
            Err(CryptoError::RecvTimeout)
        ));
        a[1].send_frame(b"late".to_vec()).unwrap();
        assert_eq!(b[1].recv_frame_deadline(Duration::from_secs(5)).unwrap(), b"late");
    }

    #[test]
    fn dropped_and_unknown_lane_frames_are_counted() {
        let counter = mvtee_telemetry::counter("crypto.mux.dropped_frames");
        let before = counter.get();
        let (client, server) = loopback_pair().expect("loopback");
        let mut lanes = split(server, &[LANE_BOOTSTRAP, LANE_REQUEST]);
        // Unknown lane id 9: nobody is listening.
        client.send_frame(vec![9, 1, 2, 3]).unwrap();
        // Retired lane: endpoint dropped, frames for it are discarded.
        drop(lanes.remove(0));
        client.send_frame(vec![LANE_BOOTSTRAP, 4, 5]).unwrap();
        // Anchor on the surviving lane so both drops have been pumped.
        client.send_frame(vec![LANE_REQUEST, 6]).unwrap();
        assert_eq!(lanes[0].recv_frame().unwrap(), vec![6]);
        assert_eq!(counter.get() - before, 2);
    }

    #[test]
    fn keepalive_pings_flow_on_heartbeat_lane() {
        let (client, server) = loopback_pair().expect("loopback");
        let mut tx = split(client, &[LANE_HEARTBEAT]);
        let rx = split(server, &[LANE_HEARTBEAT]);
        let keepalive = spawn_keepalive(tx.pop().unwrap(), Duration::from_millis(10));
        let ping = rx[0].recv_frame_deadline(Duration::from_secs(5)).unwrap();
        assert_eq!(ping, vec![0xA5]);
        keepalive.stop();
    }
}
