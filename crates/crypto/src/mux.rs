//! Lane multiplexing: several [`FrameTransport`] endpoints over one
//! connection.
//!
//! A variant worker process keeps a single TCP connection to the monitor
//! but needs three independent frame streams on it — the plaintext
//! bootstrap exchange plus the two directional data-plane channels that
//! each own their own AEAD sequence space. [`split`] turns one transport
//! into N [`MuxLane`]s: every outbound frame is prefixed with its 1-byte
//! lane id, and a demultiplexer thread routes inbound frames to the
//! destination lane's queue.
//!
//! Lifecycle: when the underlying connection dies the pump thread exits
//! and every lane's `recv_frame` reports a disconnect (how a killed
//! worker process surfaces as a quarantine in the monitor). Conversely,
//! when the *last* lane of a split is dropped the underlying transport
//! is closed, so the remote peer observes the hang-up even though the
//! local pump still holds a reference to the connection.

use crate::channel::FrameTransport;
use crate::{CryptoError, Result};
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Lane id for the bootstrap/attestation exchange.
pub const LANE_BOOTSTRAP: u8 = 0;
/// Lane id for stage requests (monitor → variant).
pub const LANE_REQUEST: u8 = 1;
/// Lane id for stage responses (variant → monitor).
pub const LANE_RESPONSE: u8 = 2;

/// Closes the shared transport once every lane of a split is gone.
struct LaneRegistry {
    transport: Arc<dyn FrameTransport + Sync>,
}

impl Drop for LaneRegistry {
    fn drop(&mut self) {
        self.transport.close();
    }
}

/// One multiplexed endpoint of a [`split`] transport.
///
/// Sends prefix the lane id; receives are fed by the shared demux pump.
/// Implements [`FrameTransport`], so a
/// [`SecureChannel`](crate::channel::SecureChannel) or a plaintext
/// framing layer runs over a lane exactly as over a dedicated connection.
pub struct MuxLane {
    lane: u8,
    registry: Arc<LaneRegistry>,
    rx: Mutex<mpsc::Receiver<Vec<u8>>>,
    bytes_out: mvtee_telemetry::Counter,
    bytes_in: mvtee_telemetry::Counter,
}

impl std::fmt::Debug for MuxLane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MuxLane({})", self.lane)
    }
}

impl MuxLane {
    /// This endpoint's lane id.
    pub fn lane(&self) -> u8 {
        self.lane
    }
}

impl FrameTransport for MuxLane {
    fn send_frame(&self, frame: Vec<u8>) -> Result<()> {
        let mut tagged = Vec::with_capacity(1 + frame.len());
        tagged.push(self.lane);
        tagged.extend_from_slice(&frame);
        self.bytes_out.add(tagged.len() as u64);
        self.registry.transport.send_frame(tagged)
    }

    fn recv_frame(&self) -> Result<Vec<u8>> {
        let rx = self.rx.lock().expect("mux lane receiver poisoned");
        let frame = rx.recv().map_err(|_| CryptoError::MalformedFrame)?;
        self.bytes_in.add(1 + frame.len() as u64);
        Ok(frame)
    }

    fn close(&self) {
        self.registry.transport.close();
    }
}

/// Splits `transport` into one [`MuxLane`] per entry of `lanes`
/// (returned in the same order) and spawns the demux pump thread.
///
/// Inbound frames with an unknown lane id are dropped (the AEAD layer
/// above each lane makes injection useless anyway); an inbound frame too
/// short to carry a lane id terminates the pump as malformed. Frames for
/// a lane whose endpoint was dropped are discarded while the other lanes
/// keep flowing.
pub fn split<T>(transport: T, lanes: &[u8]) -> Vec<MuxLane>
where
    T: FrameTransport + Sync + 'static,
{
    let shared: Arc<dyn FrameTransport + Sync> = Arc::new(transport);
    let registry = Arc::new(LaneRegistry { transport: Arc::clone(&shared) });
    let bytes_out = mvtee_telemetry::counter("crypto.mux.bytes_out");
    let bytes_in = mvtee_telemetry::counter("crypto.mux.bytes_in");
    let mut senders: HashMap<u8, mpsc::Sender<Vec<u8>>> = HashMap::new();
    let mut endpoints = Vec::with_capacity(lanes.len());
    for &lane in lanes {
        let (tx, rx) = mpsc::channel();
        senders.insert(lane, tx);
        endpoints.push(MuxLane {
            lane,
            registry: Arc::clone(&registry),
            rx: Mutex::new(rx),
            bytes_out: bytes_out.clone(),
            bytes_in: bytes_in.clone(),
        });
    }
    std::thread::Builder::new()
        .name("mux-pump".into())
        .spawn(move || {
            while let Ok(frame) = shared.recv_frame() {
                let Some((&lane, rest)) = frame.split_first() else {
                    break; // framing violation: no lane id
                };
                if let Some(tx) = senders.get(&lane) {
                    let _ = tx.send(rest.to_vec());
                }
            }
            // Dropping the senders here disconnects every lane receiver.
        })
        .expect("thread spawn cannot fail");
    endpoints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Handshake, Role, SecureChannel};
    use crate::tcp::loopback_pair;

    fn lane_pair() -> (Vec<MuxLane>, Vec<MuxLane>) {
        let (client, server) = loopback_pair().expect("loopback");
        let ids = [LANE_BOOTSTRAP, LANE_REQUEST, LANE_RESPONSE];
        (split(client, &ids), split(server, &ids))
    }

    #[test]
    fn lanes_are_independent_streams() {
        let (a, b) = lane_pair();
        a[0].send_frame(b"boot".to_vec()).unwrap();
        a[2].send_frame(b"resp".to_vec()).unwrap();
        a[1].send_frame(b"req".to_vec()).unwrap();
        // Delivery order across lanes is the wire order, but each lane
        // only ever sees its own frames.
        assert_eq!(b[1].recv_frame().unwrap(), b"req");
        assert_eq!(b[0].recv_frame().unwrap(), b"boot");
        assert_eq!(b[2].recv_frame().unwrap(), b"resp");
    }

    #[test]
    fn secure_channels_run_over_distinct_lanes() {
        let (mut a, mut b) = lane_pair();
        let hs_i = Handshake::from_pre_shared(b"secret", Role::Initiator);
        let hs_r = Handshake::from_pre_shared(b"secret", Role::Responder);
        let mut req_tx = SecureChannel::new(a.remove(1), &hs_i, 0);
        let mut req_rx = SecureChannel::new(b.remove(1), &hs_r, 0);
        let mut resp_rx = SecureChannel::new(a.pop().unwrap(), &hs_i, 1);
        let mut resp_tx = SecureChannel::new(b.pop().unwrap(), &hs_r, 1);
        req_tx.send(b"stage request").unwrap();
        assert_eq!(req_rx.recv().unwrap(), b"stage request");
        resp_tx.send(b"stage response").unwrap();
        assert_eq!(resp_rx.recv().unwrap(), b"stage response");
    }

    #[test]
    fn connection_loss_disconnects_every_lane() {
        let (a, b) = lane_pair();
        drop(b); // last remote lane dropped → remote registry closes TCP
        for lane in &a {
            assert!(lane.recv_frame().is_err(), "lane {} must disconnect", lane.lane());
        }
    }

    #[test]
    fn dropping_one_lane_keeps_the_others_flowing() {
        let (mut a, b) = lane_pair();
        drop(a.remove(0)); // bootstrap lane retired after attestation
        a[0].send_frame(b"still here".to_vec()).unwrap();
        assert_eq!(b[1].recv_frame().unwrap(), b"still here");
    }
}
