use std::fmt;

/// Errors produced by cryptographic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// AEAD authentication failed (ciphertext or AAD was tampered with).
    AuthenticationFailed,
    /// A ciphertext was too short to contain the authentication tag.
    CiphertextTooShort {
        /// Actual ciphertext length.
        len: usize,
    },
    /// A key had an unsupported length.
    InvalidKeyLength {
        /// Supplied key length.
        len: usize,
    },
    /// A nonce had an unsupported length (GCM here requires 96-bit nonces).
    InvalidNonceLength {
        /// Supplied nonce length.
        len: usize,
    },
    /// A received frame was malformed.
    MalformedFrame,
    /// A frame arrived with an unexpected sequence number (replay or drop).
    SequenceMismatch {
        /// Sequence number the receiver expected.
        expected: u64,
        /// Sequence number carried by the frame.
        actual: u64,
    },
    /// The channel handshake failed.
    HandshakeFailed(String),
    /// The peer hung up cleanly (orderly close, not a protocol violation).
    ConnectionClosed,
    /// No frame arrived before the caller's deadline expired.
    RecvTimeout,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::AuthenticationFailed => write!(f, "aead authentication failed"),
            CryptoError::CiphertextTooShort { len } => {
                write!(f, "ciphertext of {len} bytes is too short to hold a tag")
            }
            CryptoError::InvalidKeyLength { len } => {
                write!(f, "invalid key length {len}")
            }
            CryptoError::InvalidNonceLength { len } => {
                write!(f, "invalid nonce length {len}, expected 12")
            }
            CryptoError::MalformedFrame => write!(f, "malformed channel frame"),
            CryptoError::SequenceMismatch { expected, actual } => {
                write!(f, "sequence mismatch: expected {expected}, got {actual}")
            }
            CryptoError::HandshakeFailed(why) => write!(f, "handshake failed: {why}"),
            CryptoError::ConnectionClosed => write!(f, "connection closed by peer"),
            CryptoError::RecvTimeout => write!(f, "receive deadline expired"),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            CryptoError::AuthenticationFailed,
            CryptoError::CiphertextTooShort { len: 3 },
            CryptoError::InvalidKeyLength { len: 7 },
            CryptoError::InvalidNonceLength { len: 8 },
            CryptoError::MalformedFrame,
            CryptoError::SequenceMismatch { expected: 1, actual: 9 },
            CryptoError::HandshakeFailed("nope".into()),
            CryptoError::ConnectionClosed,
            CryptoError::RecvTimeout,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
