//! Sequence-numbered secure channels (the paper's socket-level RA-TLS
//! analogue, §4.3 / §5.2).
//!
//! All inter-TEE data in MVTEE is "encrypted and authenticated with unique
//! sequence numbers for freshness". A [`SecureChannel`] wraps any duplex
//! byte transport with:
//!
//! * an ephemeral X25519 handshake ([`Handshake`]) whose transcript is
//!   exported for binding into attestation evidence (RA-TLS style),
//! * per-direction AES-GCM-256 keys derived via HKDF,
//! * strictly monotone sequence numbers carried in the AEAD associated
//!   data, so replayed, dropped or reordered frames are rejected.
//!
//! The transport itself is abstracted by [`FrameTransport`]; the TEE
//! substrate provides an in-memory pair and a loopback-TCP implementation.

use crate::gcm::{nonce_from_sequence, AesGcm};
use crate::sha256::{derive_key32, hkdf, sha256};
use crate::x25519::EphemeralKeypair;
use crate::{CryptoError, Result};
use std::sync::{mpsc, Mutex};

/// A reliable, ordered, duplex frame transport.
///
/// Implementations deliver whole frames (no partial reads). This mirrors a
/// TCP connection with length-prefixed framing.
pub trait FrameTransport: Send {
    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MalformedFrame`] if the peer is gone.
    fn send_frame(&self, frame: Vec<u8>) -> Result<()>;

    /// Receives one frame, blocking until available.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MalformedFrame`] if the peer is gone.
    fn recv_frame(&self) -> Result<Vec<u8>>;

    /// Actively tears the transport down so a peer blocked in
    /// `recv_frame` observes a disconnect. In-memory transports signal
    /// disconnection by dropping, so the default is a no-op; transports
    /// whose connection outlives individual handles (TCP behind a
    /// demultiplexer) override this.
    fn close(&self) {}
}

impl FrameTransport for Box<dyn FrameTransport> {
    fn send_frame(&self, frame: Vec<u8>) -> Result<()> {
        (**self).send_frame(frame)
    }

    fn recv_frame(&self) -> Result<Vec<u8>> {
        (**self).recv_frame()
    }

    fn close(&self) {
        (**self).close()
    }
}

/// In-memory duplex transport half, built from a pair of mpsc channels.
/// The receiver sits behind a mutex so the transport is `Sync` and can be
/// shared by the mux pump the way the socket transports are.
#[derive(Debug)]
pub struct MemoryTransport {
    tx: mpsc::Sender<Vec<u8>>,
    rx: Mutex<mpsc::Receiver<Vec<u8>>>,
}

/// Creates a connected pair of in-memory transports.
pub fn memory_pair() -> (MemoryTransport, MemoryTransport) {
    let (tx_a, rx_b) = mpsc::channel();
    let (tx_b, rx_a) = mpsc::channel();
    (
        MemoryTransport { tx: tx_a, rx: Mutex::new(rx_a) },
        MemoryTransport { tx: tx_b, rx: Mutex::new(rx_b) },
    )
}

impl FrameTransport for MemoryTransport {
    fn send_frame(&self, frame: Vec<u8>) -> Result<()> {
        self.tx.send(frame).map_err(|_| CryptoError::MalformedFrame)
    }

    fn recv_frame(&self) -> Result<Vec<u8>> {
        let rx = self.rx.lock().map_err(|_| CryptoError::MalformedFrame)?;
        rx.recv().map_err(|_| CryptoError::MalformedFrame)
    }
}

/// Which side of the handshake this endpoint plays.
///
/// The two roles derive mirrored directional keys: the initiator's send key
/// is the responder's receive key and vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The connecting side (in MVTEE: usually the monitor).
    Initiator,
    /// The accepting side (in MVTEE: usually a variant TEE).
    Responder,
}

/// The result of a completed handshake, before attestation binding.
#[derive(Debug)]
pub struct Handshake {
    /// SHA-256 of both public keys in initiator-first order. The TEE layer
    /// embeds this in attestation reports so a MITM'd channel fails
    /// verification (RA-TLS binding).
    pub transcript_hash: [u8; 32],
    send_key: [u8; 32],
    recv_key: [u8; 32],
}

impl Handshake {
    /// Runs an ephemeral X25519 handshake over `transport`.
    ///
    /// Both sides call this with their respective [`Role`]s.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::HandshakeFailed`] on malformed peer messages
    /// or transport failure.
    pub fn run<T: FrameTransport>(role: Role, transport: &T) -> Result<Handshake> {
        let timer = mvtee_telemetry::histogram("crypto.channel.handshake_ns").start();
        let result = Self::run_inner(role, transport);
        if result.is_ok() {
            timer.finish();
        } else {
            timer.cancel();
        }
        result
    }

    fn run_inner<T: FrameTransport>(role: Role, transport: &T) -> Result<Handshake> {
        let keypair = EphemeralKeypair::generate();
        transport
            .send_frame(keypair.public.to_vec())
            .map_err(|e| CryptoError::HandshakeFailed(e.to_string()))?;
        let peer = transport
            .recv_frame()
            .map_err(|e| CryptoError::HandshakeFailed(e.to_string()))?;
        if peer.len() != 32 {
            return Err(CryptoError::HandshakeFailed(format!(
                "peer public key of {} bytes",
                peer.len()
            )));
        }
        let mut peer_pk = [0u8; 32];
        peer_pk.copy_from_slice(&peer);
        let shared = keypair.diffie_hellman(&peer_pk);
        if shared == [0u8; 32] {
            return Err(CryptoError::HandshakeFailed("low-order peer point".into()));
        }
        let (first, second) = match role {
            Role::Initiator => (keypair.public, peer_pk),
            Role::Responder => (peer_pk, keypair.public),
        };
        let mut transcript = Vec::with_capacity(64);
        transcript.extend_from_slice(&first);
        transcript.extend_from_slice(&second);
        let transcript_hash = sha256(&transcript);
        let okm = hkdf(&transcript_hash, &shared, b"mvtee-channel-v1", 64);
        let mut i2r = [0u8; 32];
        let mut r2i = [0u8; 32];
        i2r.copy_from_slice(&okm[..32]);
        r2i.copy_from_slice(&okm[32..]);
        let (send_key, recv_key) = match role {
            Role::Initiator => (i2r, r2i),
            Role::Responder => (r2i, i2r),
        };
        Ok(Handshake { transcript_hash, send_key, recv_key })
    }

    /// Derives keys directly from a pre-shared secret instead of a DH
    /// exchange (used for keys released through the attestation protocol,
    /// e.g. the variant-specific key of the two-stage bootstrap).
    pub fn from_pre_shared(secret: &[u8], role: Role) -> Handshake {
        let i2r = derive_key32(secret, "psk-initiator-to-responder");
        let r2i = derive_key32(secret, "psk-responder-to-initiator");
        let (send_key, recv_key) = match role {
            Role::Initiator => (i2r, r2i),
            Role::Responder => (r2i, i2r),
        };
        Handshake { transcript_hash: sha256(secret), send_key, recv_key }
    }
}

/// An established AEAD-protected channel over a [`FrameTransport`].
///
/// Frames carry an 8-byte big-endian sequence number followed by the sealed
/// payload. The sequence number doubles as AEAD associated data and nonce
/// input, so any replay, reorder or truncation fails authentication.
pub struct SecureChannel<T> {
    transport: T,
    send_cipher: AesGcm,
    recv_cipher: AesGcm,
    send_seq: u64,
    recv_seq: u64,
    channel_id: u32,
    /// Running count of payload bytes sent (for overhead accounting in the
    /// Fig 10 experiments).
    pub bytes_sent: u64,
    telemetry: ChannelTelemetry,
}

/// Global telemetry handles shared by every secure channel, fetched once
/// per channel so the send/recv paths record lock-free.
struct ChannelTelemetry {
    bytes_out: mvtee_telemetry::Counter,
    bytes_in: mvtee_telemetry::Counter,
    seal_ns: mvtee_telemetry::Histogram,
    open_ns: mvtee_telemetry::Histogram,
    auth_failures: mvtee_telemetry::Counter,
}

impl ChannelTelemetry {
    fn new() -> Self {
        ChannelTelemetry {
            bytes_out: mvtee_telemetry::counter("crypto.channel.bytes_out"),
            bytes_in: mvtee_telemetry::counter("crypto.channel.bytes_in"),
            seal_ns: mvtee_telemetry::histogram("crypto.channel.seal_ns"),
            open_ns: mvtee_telemetry::histogram("crypto.channel.open_ns"),
            auth_failures: mvtee_telemetry::counter("crypto.channel.auth_failures"),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SecureChannel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SecureChannel {{ id: {}, send_seq: {}, recv_seq: {} }}",
            self.channel_id, self.send_seq, self.recv_seq
        )
    }
}

impl<T: FrameTransport> SecureChannel<T> {
    /// Wraps `transport` using the keys from a completed handshake.
    pub fn new(transport: T, handshake: &Handshake, channel_id: u32) -> Self {
        SecureChannel {
            transport,
            send_cipher: AesGcm::new_256(&handshake.send_key),
            recv_cipher: AesGcm::new_256(&handshake.recv_key),
            send_seq: 0,
            recv_seq: 0,
            channel_id,
            bytes_sent: 0,
            telemetry: ChannelTelemetry::new(),
        }
    }

    /// Performs the full handshake-then-wrap sequence.
    ///
    /// # Errors
    ///
    /// Propagates handshake failures.
    pub fn establish(role: Role, transport: T, channel_id: u32) -> Result<Self> {
        let hs = Handshake::run(role, &transport)?;
        Ok(Self::new(transport, &hs, channel_id))
    }

    /// Encrypts and sends one message.
    ///
    /// # Errors
    ///
    /// Fails if the transport is disconnected.
    pub fn send(&mut self, payload: &[u8]) -> Result<()> {
        let seq = self.send_seq;
        self.send_seq += 1;
        let nonce = nonce_from_sequence(self.channel_id, seq);
        let mut aad = [0u8; 12];
        aad[..4].copy_from_slice(&self.channel_id.to_be_bytes());
        aad[4..].copy_from_slice(&seq.to_be_bytes());
        let seal_timer = self.telemetry.seal_ns.start();
        let sealed = self.send_cipher.seal(&nonce, payload, &aad);
        seal_timer.finish();
        let mut frame = Vec::with_capacity(8 + sealed.len());
        frame.extend_from_slice(&seq.to_be_bytes());
        frame.extend_from_slice(&sealed);
        self.bytes_sent += payload.len() as u64;
        self.telemetry.bytes_out.add(payload.len() as u64);
        let tracer = mvtee_telemetry::trace::recorder();
        if tracer.is_enabled() {
            drop(
                tracer
                    .instant(mvtee_telemetry::trace::current(), "crypto.send", "crypto")
                    .arg("channel", self.channel_id)
                    .arg("seq", seq)
                    .arg("bytes", payload.len()),
            );
        }
        self.transport.send_frame(frame)
    }

    /// Receives, authenticates and decrypts the next message.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::SequenceMismatch`] on replayed/reordered frames,
    /// * [`CryptoError::AuthenticationFailed`] on tampering,
    /// * [`CryptoError::MalformedFrame`] on truncated frames or disconnect.
    pub fn recv(&mut self) -> Result<Vec<u8>> {
        let frame = self.transport.recv_frame()?;
        if frame.len() < 8 {
            return Err(CryptoError::MalformedFrame);
        }
        let seq = u64::from_be_bytes(frame[..8].try_into().expect("sliced"));
        if seq != self.recv_seq {
            return Err(CryptoError::SequenceMismatch { expected: self.recv_seq, actual: seq });
        }
        let nonce = nonce_from_sequence(self.channel_id, seq);
        let mut aad = [0u8; 12];
        aad[..4].copy_from_slice(&self.channel_id.to_be_bytes());
        aad[4..].copy_from_slice(&seq.to_be_bytes());
        let open_timer = self.telemetry.open_ns.start();
        let opened = self.recv_cipher.open(&nonce, &frame[8..], &aad);
        match opened {
            Ok(payload) => {
                open_timer.finish();
                self.recv_seq += 1;
                self.telemetry.bytes_in.add(payload.len() as u64);
                let tracer = mvtee_telemetry::trace::recorder();
                if tracer.is_enabled() {
                    drop(
                        tracer
                            .instant(mvtee_telemetry::trace::current(), "crypto.recv", "crypto")
                            .arg("channel", self.channel_id)
                            .arg("seq", seq)
                            .arg("bytes", payload.len()),
                    );
                }
                Ok(payload)
            }
            Err(e) => {
                open_timer.cancel();
                if e == CryptoError::AuthenticationFailed {
                    // A frame that *arrived* but fails AEAD is corruption
                    // or tampering — distinct from disconnects/timeouts,
                    // and the netchaos detection gate audits this count.
                    self.telemetry.auth_failures.inc();
                }
                Err(e)
            }
        }
    }

    /// The transcript-independent channel id.
    pub fn channel_id(&self) -> u32 {
        self.channel_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn establish_pair() -> (SecureChannel<MemoryTransport>, SecureChannel<MemoryTransport>) {
        let (a, b) = memory_pair();
        let t = thread::spawn(move || SecureChannel::establish(Role::Responder, b, 7).unwrap());
        let ca = SecureChannel::establish(Role::Initiator, a, 7).unwrap();
        let cb = t.join().unwrap();
        (ca, cb)
    }

    #[test]
    fn round_trip_both_directions() {
        let (mut ca, mut cb) = establish_pair();
        ca.send(b"hello variant").unwrap();
        assert_eq!(cb.recv().unwrap(), b"hello variant");
        cb.send(b"hello monitor").unwrap();
        assert_eq!(ca.recv().unwrap(), b"hello monitor");
    }

    #[test]
    fn sequences_advance() {
        let (mut ca, mut cb) = establish_pair();
        for i in 0..10u8 {
            ca.send(&[i]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(cb.recv().unwrap(), vec![i]);
        }
    }

    #[test]
    fn transcript_hashes_agree() {
        let (a, b) = memory_pair();
        let t = thread::spawn(move || Handshake::run(Role::Responder, &b).unwrap());
        let ha = Handshake::run(Role::Initiator, &a).unwrap();
        let hb = t.join().unwrap();
        assert_eq!(ha.transcript_hash, hb.transcript_hash);
        assert_eq!(ha.send_key, hb.recv_key);
        assert_eq!(ha.recv_key, hb.send_key);
    }

    #[test]
    fn replay_is_rejected() {
        // Tap the wire: capture the sender's frame and deliver it twice.
        let (a, b) = memory_pair();
        let mut tx = SecureChannel::new(a, &Handshake::from_pre_shared(b"k", Role::Initiator), 1);
        tx.send(b"once").unwrap();
        let frame = b.recv_frame().unwrap();
        let (ta, tb) = memory_pair();
        ta.send_frame(frame.clone()).unwrap();
        ta.send_frame(frame).unwrap();
        let mut rx = SecureChannel::new(tb, &Handshake::from_pre_shared(b"k", Role::Responder), 1);
        assert_eq!(rx.recv().unwrap(), b"once");
        assert!(matches!(
            rx.recv(),
            Err(CryptoError::SequenceMismatch { expected: 1, actual: 0 })
        ));
    }

    #[test]
    fn tampered_frame_rejected() {
        let hs_i = Handshake::from_pre_shared(b"shared", Role::Initiator);
        let hs_r = Handshake::from_pre_shared(b"shared", Role::Responder);
        let (a, b) = memory_pair();
        let mut tx = SecureChannel::new(a, &hs_i, 2);
        tx.send(b"payload").unwrap();
        // Intercept and corrupt.
        let mut frame = b.recv_frame().unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0xff;
        let (c, d) = memory_pair();
        c.send_frame(frame).unwrap();
        let mut rx = SecureChannel::new(d, &hs_r, 2);
        assert!(matches!(rx.recv(), Err(CryptoError::AuthenticationFailed)));
    }

    #[test]
    fn auth_failures_are_counted() {
        let counter = mvtee_telemetry::counter("crypto.channel.auth_failures");
        let before = counter.get();
        let hs_i = Handshake::from_pre_shared(b"count", Role::Initiator);
        let hs_r = Handshake::from_pre_shared(b"count", Role::Responder);
        let (a, b) = memory_pair();
        let mut tx = SecureChannel::new(a, &hs_i, 4);
        tx.send(b"payload").unwrap();
        let mut frame = b.recv_frame().unwrap();
        frame[9] ^= 0x01;
        let (c, d) = memory_pair();
        c.send_frame(frame).unwrap();
        let mut rx = SecureChannel::new(d, &hs_r, 4);
        assert!(matches!(rx.recv(), Err(CryptoError::AuthenticationFailed)));
        // Other tests tamper frames concurrently, so assert growth, not
        // an exact delta.
        assert!(counter.get() > before);
    }

    #[test]
    fn wrong_channel_id_rejected() {
        let hs_i = Handshake::from_pre_shared(b"shared", Role::Initiator);
        let hs_r = Handshake::from_pre_shared(b"shared", Role::Responder);
        let (a, b) = memory_pair();
        let mut tx = SecureChannel::new(a, &hs_i, 1);
        tx.send(b"payload").unwrap();
        let frame = b.recv_frame().unwrap();
        let (c, d) = memory_pair();
        c.send_frame(frame).unwrap();
        // Receiver expects channel 9: nonce/AAD mismatch => auth failure.
        let mut rx = SecureChannel::new(d, &hs_r, 9);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn short_frame_rejected() {
        let hs = Handshake::from_pre_shared(b"s", Role::Responder);
        let (a, b) = memory_pair();
        a.send_frame(vec![1, 2, 3]).unwrap();
        let mut rx = SecureChannel::new(b, &hs, 0);
        assert!(matches!(rx.recv(), Err(CryptoError::MalformedFrame)));
    }

    #[test]
    fn psk_channels_interoperate() {
        let hs_i = Handshake::from_pre_shared(b"variant-key-123", Role::Initiator);
        let hs_r = Handshake::from_pre_shared(b"variant-key-123", Role::Responder);
        let (a, b) = memory_pair();
        let mut ca = SecureChannel::new(a, &hs_i, 3);
        let mut cb = SecureChannel::new(b, &hs_r, 3);
        ca.send(b"bundle").unwrap();
        assert_eq!(cb.recv().unwrap(), b"bundle");
        cb.send(b"ack").unwrap();
        assert_eq!(ca.recv().unwrap(), b"ack");
    }

    #[test]
    fn bytes_sent_accounting() {
        let (mut ca, _cb) = establish_pair();
        ca.send(&[0u8; 100]).unwrap();
        ca.send(&[0u8; 28]).unwrap();
        assert_eq!(ca.bytes_sent, 128);
    }

    #[test]
    fn disconnected_peer_errors() {
        let hs = Handshake::from_pre_shared(b"s", Role::Initiator);
        let (a, b) = memory_pair();
        drop(b);
        let mut ch = SecureChannel::new(a, &hs, 0);
        assert!(ch.send(b"x").is_err());
    }
}
