//! Loopback-TCP frame transport: the wire-level counterpart of the
//! in-memory transport, for distributed-setting demonstrations.
//!
//! The paper's monitor–variant channels run over TCP/IP sockets; MVTEE
//! "can be deployed either in a co-located or distributed setting". This
//! transport carries the same length-prefixed frames as
//! [`crate::channel::MemoryTransport`] over a real TCP connection, so a
//! [`crate::channel::SecureChannel`] works identically over either.
//!
//! Framing: 4-byte big-endian length, then the frame bytes. Frames are
//! capped at [`MAX_FRAME_LEN`] to bound allocation on malformed input.

use crate::channel::FrameTransport;
use crate::{CryptoError, Result};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Mutex;

/// Upper bound on a single frame (64 MiB — far above any checkpoint
/// payload at the evaluated scales).
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// A TCP-backed [`FrameTransport`].
///
/// Internally the stream is split behind mutexes so `send_frame` and
/// `recv_frame` may be used from the sending and receiving sides of the
/// secure-channel machinery without additional locking by the caller.
#[derive(Debug)]
pub struct TcpTransport {
    reader: Mutex<TcpStream>,
    writer: Mutex<TcpStream>,
}

impl TcpTransport {
    /// Wraps an established TCP stream.
    ///
    /// # Errors
    ///
    /// Fails when the stream cannot be duplicated for split ownership.
    pub fn new(stream: TcpStream) -> Result<Self> {
        stream.set_nodelay(true).ok();
        let reader = stream.try_clone().map_err(|_| CryptoError::MalformedFrame)?;
        Ok(TcpTransport { reader: Mutex::new(reader), writer: Mutex::new(stream) })
    }

    /// Connects to a listening peer.
    ///
    /// # Errors
    ///
    /// Fails when the connection cannot be established.
    pub fn connect(addr: &str) -> Result<Self> {
        let stream = TcpStream::connect(addr).map_err(|_| {
            CryptoError::HandshakeFailed(format!("tcp connect to {addr} failed"))
        })?;
        Self::new(stream)
    }

    /// Accepts one inbound connection on `listener`.
    ///
    /// # Errors
    ///
    /// Fails when accepting fails.
    pub fn accept(listener: &TcpListener) -> Result<Self> {
        let (stream, _) = listener
            .accept()
            .map_err(|_| CryptoError::HandshakeFailed("tcp accept failed".into()))?;
        Self::new(stream)
    }
}

/// Binds a loopback listener on an OS-assigned port (port 0) and returns
/// it with the port actually chosen. Every loopback rendezvous — tests,
/// worker-process spawning — goes through this, so parallel runs never
/// collide on a fixed port.
///
/// # Errors
///
/// Fails when the loopback interface cannot be bound at all.
pub fn bind_loopback() -> Result<(TcpListener, u16)> {
    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(|_| CryptoError::HandshakeFailed("loopback bind failed".into()))?;
    let port = listener
        .local_addr()
        .map_err(|_| CryptoError::HandshakeFailed("loopback addr unavailable".into()))?
        .port();
    Ok((listener, port))
}

/// Creates a connected loopback pair (client, server) over an ephemeral
/// port — the TCP analogue of [`crate::channel::memory_pair`].
///
/// # Errors
///
/// Fails when binding, connecting or accepting fails.
pub fn loopback_pair() -> Result<(TcpTransport, TcpTransport)> {
    let (listener, port) = bind_loopback()?;
    let join = std::thread::spawn(move || TcpTransport::accept(&listener));
    let client = TcpTransport::connect(&format!("127.0.0.1:{port}"))?;
    let server = join
        .join()
        .map_err(|_| CryptoError::HandshakeFailed("accept thread panicked".into()))??;
    Ok((client, server))
}

impl FrameTransport for TcpTransport {
    fn send_frame(&self, frame: Vec<u8>) -> Result<()> {
        if frame.len() > MAX_FRAME_LEN {
            return Err(CryptoError::MalformedFrame);
        }
        let mut writer = self.writer.lock().expect("tcp writer poisoned");
        let len = (frame.len() as u32).to_be_bytes();
        writer.write_all(&len).map_err(|_| CryptoError::MalformedFrame)?;
        writer.write_all(&frame).map_err(|_| CryptoError::MalformedFrame)?;
        writer.flush().map_err(|_| CryptoError::MalformedFrame)?;
        Ok(())
    }

    fn recv_frame(&self) -> Result<Vec<u8>> {
        let mut reader = self.reader.lock().expect("tcp reader poisoned");
        let mut len_buf = [0u8; 4];
        reader.read_exact(&mut len_buf).map_err(|_| CryptoError::MalformedFrame)?;
        let len = u32::from_be_bytes(len_buf) as usize;
        if len > MAX_FRAME_LEN {
            return Err(CryptoError::MalformedFrame);
        }
        let mut frame = vec![0u8; len];
        reader.read_exact(&mut frame).map_err(|_| CryptoError::MalformedFrame)?;
        Ok(frame)
    }

    fn close(&self) {
        if let Ok(writer) = self.writer.lock() {
            let _ = writer.shutdown(std::net::Shutdown::Both);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Role, SecureChannel};
    use std::thread;

    fn loopback_pair() -> (TcpTransport, TcpTransport) {
        super::loopback_pair().expect("loopback pair")
    }

    #[test]
    fn bind_loopback_reports_the_chosen_port() {
        let (listener, port) = bind_loopback().expect("bind");
        assert_ne!(port, 0, "the OS-assigned port must be propagated, not the wildcard");
        assert_eq!(listener.local_addr().expect("addr").port(), port);
    }

    #[test]
    fn parallel_loopback_pairs_never_collide() {
        // Each pair binds its own ephemeral port; a fixed port would make
        // one of these binds fail or cross-connect.
        let pairs: Vec<_> = (0..4).map(|_| loopback_pair()).collect();
        for (i, (client, server)) in pairs.iter().enumerate() {
            client.send_frame(vec![i as u8]).unwrap();
            assert_eq!(server.recv_frame().unwrap(), vec![i as u8]);
        }
    }

    #[test]
    fn close_unblocks_the_peer() {
        let (client, server) = loopback_pair();
        let join = thread::spawn(move || server.recv_frame());
        client.close();
        assert!(join.join().expect("recv thread").is_err());
    }

    #[test]
    fn frames_round_trip_over_tcp() {
        let (client, server) = loopback_pair();
        client.send_frame(b"hello over tcp".to_vec()).unwrap();
        assert_eq!(server.recv_frame().unwrap(), b"hello over tcp");
        server.send_frame(vec![0u8; 100_000]).unwrap();
        assert_eq!(client.recv_frame().unwrap().len(), 100_000);
    }

    #[test]
    fn empty_frames_allowed() {
        let (client, server) = loopback_pair();
        client.send_frame(Vec::new()).unwrap();
        assert_eq!(server.recv_frame().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn oversized_frame_rejected_on_send() {
        let (client, _server) = loopback_pair();
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(matches!(client.send_frame(huge), Err(CryptoError::MalformedFrame)));
    }

    #[test]
    fn disconnect_surfaces_as_error() {
        let (client, server) = loopback_pair();
        drop(server);
        // Depending on timing the first send may be buffered; the read
        // side must error.
        let _ = client.send_frame(b"into the void".to_vec());
        assert!(client.recv_frame().is_err());
    }

    #[test]
    fn secure_channel_runs_over_tcp() {
        let (client, server) = loopback_pair();
        let join = thread::spawn(move || {
            SecureChannel::establish(Role::Responder, server, 9).expect("responder")
        });
        let mut c = SecureChannel::establish(Role::Initiator, client, 9).expect("initiator");
        let mut s = join.join().expect("thread");
        c.send(b"checkpoint tensor over real sockets").unwrap();
        assert_eq!(s.recv().unwrap(), b"checkpoint tensor over real sockets");
        s.send(b"ack").unwrap();
        assert_eq!(c.recv().unwrap(), b"ack");
    }

    #[test]
    fn tampering_on_the_wire_is_detected() {
        // A MITM TCP hop that flips one byte of every frame.
        let (client, mitm_side) = loopback_pair();
        let (mitm_out, server) = loopback_pair();
        thread::spawn(move || {
            while let Ok(mut frame) = mitm_side.recv_frame() {
                if !frame.is_empty() {
                    let last = frame.len() - 1;
                    frame[last] ^= 0x01;
                }
                if mitm_out.send_frame(frame).is_err() {
                    break;
                }
            }
        });
        // Pre-shared-key channel (the handshake itself would also fail
        // under tampering; PSK isolates the data-plane check).
        use crate::channel::Handshake;
        let mut tx =
            SecureChannel::new(client, &Handshake::from_pre_shared(b"k", Role::Initiator), 1);
        let mut rx =
            SecureChannel::new(server, &Handshake::from_pre_shared(b"k", Role::Responder), 1);
        tx.send(b"integrity matters").unwrap();
        assert!(matches!(rx.recv(), Err(CryptoError::AuthenticationFailed)));
    }
}
