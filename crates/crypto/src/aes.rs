//! The AES block cipher (FIPS 197), supporting 128- and 256-bit keys.
//!
//! This is a straightforward table-free implementation (S-box lookup plus
//! explicit GF(2^8) arithmetic for MixColumns). It exists to back
//! [`crate::gcm::AesGcm`]; no other mode is exposed.

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 15] = [
    0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d, 0x9a,
];

#[cfg(test)]
fn xtime(x: u8) -> u8 {
    (x << 1) ^ (if x & 0x80 != 0 { 0x1b } else { 0x00 })
}

#[cfg(test)]
fn mul(x: u8, y: u8) -> u8 {
    // GF(2^8) multiply, used by MixColumns (y is 1, 2 or 3 there).
    let mut acc = 0u8;
    let mut a = x;
    let mut b = y;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    acc
}

/// An AES key schedule ready for encryption.
///
/// Only the *encrypt* direction is implemented: GCM is a CTR-based mode and
/// never needs the inverse cipher. Block encryption uses the classic
/// T-table formulation (one 256-entry table plus rotations), matching the
/// throughput class of real software AES so that measured encryption
/// overheads are representative.
#[derive(Clone)]
pub struct Aes {
    /// Byte-wise round keys, used by the reference (table-free) path that
    /// cross-validates the T-table path in tests.
    #[cfg_attr(not(test), allow(dead_code))]
    round_keys: Vec<[u8; 16]>,
    round_key_words: Vec<[u32; 4]>,
    rounds: usize,
}

/// The combined SubBytes+MixColumns table: `Te0[x] = (2·S, S, S, 3·S)`
/// packed big-endian.
static TE0: [u32; 256] = build_te0();

const fn build_te0() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i] as u32;
        let s2 = ((s << 1) ^ (if s & 0x80 != 0 { 0x1b } else { 0 })) & 0xff;
        let s3 = s2 ^ s;
        table[i] = (s2 << 24) | (s << 16) | (s << 8) | s3;
        i += 1;
    }
    table
}

impl std::fmt::Debug for Aes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "Aes {{ rounds: {} }}", self.rounds)
    }
}

impl Aes {
    /// Expands a 128-bit key.
    pub fn new_128(key: &[u8; 16]) -> Self {
        Self::expand(key, 4, 10)
    }

    /// Expands a 256-bit key.
    pub fn new_256(key: &[u8; 32]) -> Self {
        Self::expand(key, 8, 14)
    }

    /// Expands a key of 16 or 32 bytes.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CryptoError::InvalidKeyLength`] for other lengths.
    pub fn new(key: &[u8]) -> crate::Result<Self> {
        match key.len() {
            16 => {
                let mut k = [0u8; 16];
                k.copy_from_slice(key);
                Ok(Self::new_128(&k))
            }
            32 => {
                let mut k = [0u8; 32];
                k.copy_from_slice(key);
                Ok(Self::new_256(&k))
            }
            len => Err(crate::CryptoError::InvalidKeyLength { len }),
        }
    }

    fn expand(key: &[u8], nk: usize, rounds: usize) -> Self {
        let total_words = 4 * (rounds + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for i in 0..nk {
            w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / nk - 1];
            } else if nk > 6 && i % nk == 4 {
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
            }
            let prev = w[i - nk];
            w.push([
                prev[0] ^ temp[0],
                prev[1] ^ temp[1],
                prev[2] ^ temp[2],
                prev[3] ^ temp[3],
            ]);
        }
        let mut round_keys = Vec::with_capacity(rounds + 1);
        let mut round_key_words = Vec::with_capacity(rounds + 1);
        for r in 0..=rounds {
            let mut rk = [0u8; 16];
            let mut rkw = [0u32; 4];
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
                rkw[c] = u32::from_be_bytes(w[4 * r + c]);
            }
            round_keys.push(rk);
            round_key_words.push(rkw);
        }
        Aes { round_keys, round_key_words, rounds }
    }

    /// Encrypts a single 16-byte block in place (T-table fast path).
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        let mut s = [0u32; 4];
        for c in 0..4 {
            s[c] = u32::from_be_bytes(block[4 * c..4 * c + 4].try_into().expect("sliced"))
                ^ self.round_key_words[0][c];
        }
        for r in 1..self.rounds {
            let rk = &self.round_key_words[r];
            let mut t = [0u32; 4];
            for c in 0..4 {
                t[c] = TE0[(s[c] >> 24) as usize]
                    ^ TE0[((s[(c + 1) & 3] >> 16) & 0xff) as usize].rotate_right(8)
                    ^ TE0[((s[(c + 2) & 3] >> 8) & 0xff) as usize].rotate_right(16)
                    ^ TE0[(s[(c + 3) & 3] & 0xff) as usize].rotate_right(24)
                    ^ rk[c];
            }
            s = t;
        }
        // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        let rk = &self.round_key_words[self.rounds];
        let mut out = [0u32; 4];
        for c in 0..4 {
            out[c] = ((SBOX[(s[c] >> 24) as usize] as u32) << 24)
                | ((SBOX[((s[(c + 1) & 3] >> 16) & 0xff) as usize] as u32) << 16)
                | ((SBOX[((s[(c + 2) & 3] >> 8) & 0xff) as usize] as u32) << 8)
                | (SBOX[(s[(c + 3) & 3] & 0xff) as usize] as u32);
            out[c] ^= rk[c];
        }
        for c in 0..4 {
            block[4 * c..4 * c + 4].copy_from_slice(&out[c].to_be_bytes());
        }
    }

    /// Reference (table-free) block encryption, kept for cross-validation
    /// in tests.
    #[cfg(test)]
    fn encrypt_block_reference(&self, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &self.round_keys[0]);
        for r in 1..self.rounds {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[r]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[self.rounds]);
    }

    /// Encrypts a block and returns the result.
    pub fn encrypt(&self, block: &[u8; BLOCK_LEN]) -> [u8; BLOCK_LEN] {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }
}

#[cfg(test)]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

#[cfg(test)]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

#[cfg(test)]
fn shift_rows(state: &mut [u8; 16]) {
    // State is column-major: state[4*c + r].
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

#[cfg(test)]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] = mul(col[0], 2) ^ mul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ mul(col[1], 2) ^ mul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ mul(col[2], 2) ^ mul(col[3], 3);
        state[4 * c + 3] = mul(col[0], 3) ^ col[1] ^ col[2] ^ mul(col[3], 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    #[test]
    fn fips197_aes128_example() {
        // FIPS 197 Appendix C.1.
        let key: [u8; 16] = (0x00..=0x0f).collect::<Vec<u8>>().try_into().unwrap();
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let aes = Aes::new_128(&key);
        assert_eq!(hex(&aes.encrypt(&pt)), "69c4e0d86a7b0430d8cdb78070b4c55a");
    }

    #[test]
    fn fips197_aes256_example() {
        // FIPS 197 Appendix C.3.
        let key: [u8; 32] = (0x00..=0x1f).collect::<Vec<u8>>().try_into().unwrap();
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let aes = Aes::new_256(&key);
        assert_eq!(hex(&aes.encrypt(&pt)), "8ea2b7ca516745bfeafc49904b496089");
    }

    #[test]
    fn aes128_all_zero_vector() {
        // Well-known NIST vector: AES-128(key=0, pt=0).
        let aes = Aes::new_128(&[0u8; 16]);
        assert_eq!(hex(&aes.encrypt(&[0u8; 16])), "66e94bd4ef8a2c3b884cfa59ca342b2e");
    }

    #[test]
    fn new_validates_key_length() {
        assert!(Aes::new(&[0u8; 16]).is_ok());
        assert!(Aes::new(&[0u8; 32]).is_ok());
        assert!(matches!(
            Aes::new(&[0u8; 24]),
            Err(crate::CryptoError::InvalidKeyLength { len: 24 })
        ));
    }

    #[test]
    fn encrypt_is_deterministic_and_key_dependent() {
        let a = Aes::new_128(&[1u8; 16]);
        let b = Aes::new_128(&[2u8; 16]);
        let pt = [7u8; 16];
        assert_eq!(a.encrypt(&pt), a.encrypt(&pt));
        assert_ne!(a.encrypt(&pt), b.encrypt(&pt));
    }

    #[test]
    fn table_path_matches_reference_path() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let mut key = [0u8; 32];
            rng.fill(&mut key);
            let mut block = [0u8; 16];
            rng.fill(&mut block);
            let aes = Aes::new_256(&key);
            let mut fast = block;
            let mut slow = block;
            aes.encrypt_block(&mut fast);
            aes.encrypt_block_reference(&mut slow);
            assert_eq!(fast, slow);
            let aes128 = Aes::new_128(&key[..16].try_into().unwrap());
            let mut fast = block;
            let mut slow = block;
            aes128.encrypt_block(&mut fast);
            aes128.encrypt_block_reference(&mut slow);
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn debug_hides_keys() {
        let a = Aes::new_128(&[9u8; 16]);
        let s = format!("{a:?}");
        assert!(!s.contains('9'), "debug output must not leak key bytes: {s}");
        assert!(s.contains("rounds"));
    }
}
