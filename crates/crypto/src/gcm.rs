//! AES-GCM authenticated encryption (NIST SP 800-38D).
//!
//! All inter-TEE traffic in MVTEE — checkpoint tensors, bootstrap keys,
//! encrypted variant bundles — is sealed with AES-GCM-256. The 16-byte tag
//! is appended to the ciphertext, mirroring common wire formats.
//!
//! Nonces are fixed at 96 bits (the GCM fast path); the secure channel layer
//! derives them from per-direction counters so they never repeat under a key.

use crate::aes::{Aes, BLOCK_LEN};
use crate::{ct_eq, CryptoError, Result};

/// Length of the GCM authentication tag in bytes.
pub const TAG_LEN: usize = 16;
/// Length of the GCM nonce in bytes (96-bit fast path only).
pub const NONCE_LEN: usize = 12;

/// Precomputed Shoup byte tables for multiplication by a fixed `H`:
/// `table[i][b]` is the product of `H` with the field element whose byte
/// `i` (most-significant first) equals `b`. Built once per key; makes
/// GHASH run at a few cycles per byte, the throughput class of real
/// software GHASH.
struct HTable {
    table: Box<[[u128; 256]; 16]>,
}

/// Multiplies a field element by `x` (one-bit shift with reduction).
fn mul_x(a: u128) -> u128 {
    const R: u128 = 0xe1000000_00000000_00000000_00000000;
    let out = a >> 1;
    if a & 1 == 1 {
        out ^ R
    } else {
        out
    }
}

impl HTable {
    fn new(h: [u8; 16]) -> Self {
        let h = u128::from_be_bytes(h);
        // e[j] = H · x^j.
        let mut e = [0u128; 128];
        let mut cur = h;
        for entry in e.iter_mut() {
            *entry = cur;
            cur = mul_x(cur);
        }
        let mut table = Box::new([[0u128; 256]; 16]);
        for i in 0..16 {
            for b in 0..256usize {
                let mut acc = 0u128;
                for k in 0..8 {
                    if b & (0x80 >> k) != 0 {
                        acc ^= e[8 * i + k];
                    }
                }
                table[i][b] = acc;
            }
        }
        HTable { table }
    }

    /// Computes `y · H`.
    fn mul(&self, y: u128) -> u128 {
        let mut z = 0u128;
        for i in 0..16 {
            let byte = (y >> (8 * (15 - i))) as u8;
            z ^= self.table[i][byte as usize];
        }
        z
    }
}

impl std::fmt::Debug for HTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HTable {{ .. }}") // never print key-derived material
    }
}

/// GHASH state over a precomputed [`HTable`].
struct GHash<'a> {
    h: &'a HTable,
    acc: u128,
}

impl<'a> GHash<'a> {
    fn new(h: &'a HTable) -> Self {
        GHash { h, acc: 0 }
    }

    /// Reference bitwise multiplication in GF(2^128) modulo
    /// x^128 + x^7 + x^2 + x + 1 with GCM's bit order (kept for
    /// cross-validation in tests).
    #[cfg(test)]
    fn gf_mul(x: u128, y: u128) -> u128 {
        const R: u128 = 0xe1000000_00000000_00000000_00000000;
        let mut z = 0u128;
        let mut v = x;
        for i in 0..128 {
            if (y >> (127 - i)) & 1 == 1 {
                z ^= v;
            }
            let lsb = v & 1;
            v >>= 1;
            if lsb == 1 {
                v ^= R;
            }
        }
        z
    }

    fn update_block(&mut self, block: &[u8; 16]) {
        self.acc ^= u128::from_be_bytes(*block);
        self.acc = self.h.mul(self.acc);
    }

    /// Absorbs `data`, zero-padding the trailing partial block.
    fn update_padded(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(16);
        for c in chunks.by_ref() {
            let mut b = [0u8; 16];
            b.copy_from_slice(c);
            self.update_block(&b);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut b = [0u8; 16];
            b[..rem.len()].copy_from_slice(rem);
            self.update_block(&b);
        }
    }

    fn finalize(mut self, aad_len: usize, ct_len: usize) -> [u8; 16] {
        let mut lens = [0u8; 16];
        lens[..8].copy_from_slice(&((aad_len as u64) * 8).to_be_bytes());
        lens[8..].copy_from_slice(&((ct_len as u64) * 8).to_be_bytes());
        self.update_block(&lens);
        self.acc.to_be_bytes()
    }
}

/// Payload-size bucket labels for the seal/open latency histograms.
///
/// AEAD cost is dominated by payload length, so one flat histogram
/// would bury the registry's megabyte-class re-seals under the data
/// plane's kilobyte-class checkpoint traffic. Four decade-ish buckets
/// keep both visible in the telemetry report.
const SIZE_BUCKETS: [(&str, usize); 4] = [
    ("le_1k", 1 << 10),
    ("le_64k", 1 << 16),
    ("le_1m", 1 << 20),
    ("gt_1m", usize::MAX),
];

/// The per-bucket histograms, resolved once per process (registry
/// lookups are lock-protected; the hot seal path must not pay them per
/// call).
fn size_histograms(op: &str) -> &'static [mvtee_telemetry::Histogram; 4] {
    use std::sync::OnceLock;
    static SEAL: OnceLock<[mvtee_telemetry::Histogram; 4]> = OnceLock::new();
    static OPEN: OnceLock<[mvtee_telemetry::Histogram; 4]> = OnceLock::new();
    let cell = if op == "seal" { &SEAL } else { &OPEN };
    cell.get_or_init(|| {
        SIZE_BUCKETS
            .map(|(label, _)| mvtee_telemetry::histogram(&format!("crypto.{op}_ns.{label}")))
    })
}

/// The histogram recording an `op` of `len` payload bytes.
fn size_histogram(op: &str, len: usize) -> &'static mvtee_telemetry::Histogram {
    let idx = SIZE_BUCKETS.iter().position(|&(_, cap)| len <= cap).unwrap_or(3);
    &size_histograms(op)[idx]
}

/// An AES-GCM AEAD cipher bound to one key.
///
/// # Example
///
/// ```
/// use mvtee_crypto::gcm::AesGcm;
///
/// let cipher = AesGcm::new_256(&[0u8; 32]);
/// let sealed = cipher.seal(&[0u8; 12], b"secret", b"");
/// assert_eq!(cipher.open(&[0u8; 12], &sealed, b"").unwrap(), b"secret");
/// assert!(cipher.open(&[1u8; 12], &sealed, b"").is_err());
/// ```
#[derive(Debug, Clone)]
pub struct AesGcm {
    aes: Aes,
    h: std::sync::Arc<HTable>,
}

impl AesGcm {
    /// Creates a cipher from a 256-bit key.
    pub fn new_256(key: &[u8; 32]) -> Self {
        Self::from_aes(Aes::new_256(key))
    }

    /// Creates a cipher from a 128-bit key.
    pub fn new_128(key: &[u8; 16]) -> Self {
        Self::from_aes(Aes::new_128(key))
    }

    /// Creates a cipher from a 16- or 32-byte key slice.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] for other lengths.
    pub fn new(key: &[u8]) -> Result<Self> {
        Ok(Self::from_aes(Aes::new(key)?))
    }

    fn from_aes(aes: Aes) -> Self {
        let h = aes.encrypt(&[0u8; 16]);
        AesGcm { aes, h: std::sync::Arc::new(HTable::new(h)) }
    }

    fn counter_block(nonce: &[u8; NONCE_LEN], counter: u32) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[..NONCE_LEN].copy_from_slice(nonce);
        block[12..].copy_from_slice(&counter.to_be_bytes());
        block
    }

    /// Maximum GCM payload under one nonce: (2^32 − 2) 16-byte blocks
    /// (SP 800-38D); beyond it the 32-bit counter would wrap and reuse
    /// keystream.
    const MAX_PAYLOAD: usize = ((u32::MAX as usize) - 2) * BLOCK_LEN;

    fn ctr_xor(&self, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
        assert!(
            data.len() <= Self::MAX_PAYLOAD,
            "gcm payload exceeds the single-nonce limit"
        );
        let mut counter = 2u32; // counter 1 is reserved for the tag mask
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let ks = self.aes.encrypt(&Self::counter_block(nonce, counter));
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }

    fn compute_tag(&self, nonce: &[u8; NONCE_LEN], ciphertext: &[u8], aad: &[u8]) -> [u8; TAG_LEN] {
        let mut ghash = GHash::new(&self.h);
        ghash.update_padded(aad);
        ghash.update_padded(ciphertext);
        let s = ghash.finalize(aad.len(), ciphertext.len());
        let mask = self.aes.encrypt(&Self::counter_block(nonce, 1));
        let mut tag = [0u8; TAG_LEN];
        for i in 0..TAG_LEN {
            tag[i] = s[i] ^ mask[i];
        }
        tag
    }

    /// Encrypts `plaintext` with associated data `aad`, returning
    /// `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        let timer = size_histogram("seal", plaintext.len()).start();
        let mut out = plaintext.to_vec();
        self.ctr_xor(nonce, &mut out);
        let tag = self.compute_tag(nonce, &out, aad);
        out.extend_from_slice(&tag);
        timer.finish();
        out
    }

    /// Decrypts and authenticates `ciphertext || tag`.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::CiphertextTooShort`] when the input cannot contain a
    ///   tag.
    /// * [`CryptoError::AuthenticationFailed`] when the tag does not verify
    ///   (tampered ciphertext, AAD or nonce).
    pub fn open(&self, nonce: &[u8; NONCE_LEN], sealed: &[u8], aad: &[u8]) -> Result<Vec<u8>> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::CiphertextTooShort { len: sealed.len() });
        }
        let timer = size_histogram("open", sealed.len() - TAG_LEN).start();
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expected = self.compute_tag(nonce, ct, aad);
        if !ct_eq(&expected, tag) {
            timer.cancel(); // rejected opens must not skew the latency curve
            return Err(CryptoError::AuthenticationFailed);
        }
        let mut out = ct.to_vec();
        self.ctr_xor(nonce, &mut out);
        timer.finish();
        Ok(out)
    }
}

/// Builds a deterministic 96-bit nonce from a 4-byte channel id and a
/// 64-bit sequence number. Unique per (key, direction, sequence).
pub fn nonce_from_sequence(channel_id: u32, sequence: u64) -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    nonce[..4].copy_from_slice(&channel_id.to_be_bytes());
    nonce[4..].copy_from_slice(&sequence.to_be_bytes());
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_lengths() {
        let cipher = AesGcm::new_256(&[3u8; 32]);
        let nonce = [5u8; NONCE_LEN];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 100, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let sealed = cipher.seal(&nonce, &pt, b"aad");
            assert_eq!(sealed.len(), len + TAG_LEN);
            assert_eq!(cipher.open(&nonce, &sealed, b"aad").unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn tamper_detection_every_byte() {
        let cipher = AesGcm::new_128(&[9u8; 16]);
        let nonce = [0u8; NONCE_LEN];
        let sealed = cipher.seal(&nonce, b"the checkpoint tensor bytes", b"hdr");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert!(
                matches!(cipher.open(&nonce, &bad, b"hdr"), Err(CryptoError::AuthenticationFailed)),
                "flip at byte {i} must fail"
            );
        }
    }

    #[test]
    fn aad_is_authenticated() {
        let cipher = AesGcm::new_256(&[1u8; 32]);
        let nonce = [2u8; NONCE_LEN];
        let sealed = cipher.seal(&nonce, b"payload", b"seq=1");
        assert!(cipher.open(&nonce, &sealed, b"seq=2").is_err());
        assert!(cipher.open(&nonce, &sealed, b"seq=1").is_ok());
    }

    #[test]
    fn wrong_key_or_nonce_fails() {
        let a = AesGcm::new_256(&[1u8; 32]);
        let b = AesGcm::new_256(&[2u8; 32]);
        let sealed = a.seal(&[0u8; 12], b"x", b"");
        assert!(b.open(&[0u8; 12], &sealed, b"").is_err());
        assert!(a.open(&[1u8; 12], &sealed, b"").is_err());
    }

    #[test]
    fn too_short_rejected() {
        let cipher = AesGcm::new_128(&[0u8; 16]);
        assert!(matches!(
            cipher.open(&[0u8; 12], &[0u8; 8], b""),
            Err(CryptoError::CiphertextTooShort { len: 8 })
        ));
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let cipher = AesGcm::new_256(&[4u8; 32]);
        let pt = vec![0u8; 64];
        let sealed = cipher.seal(&[7u8; 12], &pt, b"");
        assert_ne!(&sealed[..64], &pt[..]);
    }

    #[test]
    fn nonce_uniqueness_changes_ciphertext() {
        let cipher = AesGcm::new_256(&[4u8; 32]);
        let s1 = cipher.seal(&nonce_from_sequence(1, 1), b"msg", b"");
        let s2 = cipher.seal(&nonce_from_sequence(1, 2), b"msg", b"");
        assert_ne!(s1, s2);
    }

    #[test]
    fn nonce_from_sequence_layout() {
        let n = nonce_from_sequence(0x01020304, 0x05060708090a0b0c);
        assert_eq!(n, [1, 2, 3, 4, 5, 6, 7, 8, 9, 0x0a, 0x0b, 0x0c]);
    }

    #[test]
    fn table_mul_matches_bitwise_mul() {
        for h_val in [1u128 << 127, 0xdeadbeefu128, u128::MAX, 0x0123_4567_89ab_cdefu128 << 64] {
            let table = HTable::new(h_val.to_be_bytes());
            for y in [0u128, 1, 1 << 127, 0xffff, u128::MAX, 0x5555_aaaa << 32] {
                assert_eq!(table.mul(y), GHash::gf_mul(y, h_val), "h={h_val:x} y={y:x}");
            }
        }
    }

    #[test]
    fn gf_mul_identity_and_commutativity() {
        // The GCM "1" element is the reflected MSB-first 1: 0x80...0.
        let one: u128 = 1u128 << 127;
        for x in [0x1234u128, u128::MAX, 1u128 << 127, 0x0f0f0f0fu128] {
            assert_eq!(GHash::gf_mul(x, one), x);
            assert_eq!(GHash::gf_mul(one, x), x);
        }
        let (a, b) = (0xdeadbeefu128, 0xc0ffeeu128 << 64);
        assert_eq!(GHash::gf_mul(a, b), GHash::gf_mul(b, a));
    }

    #[test]
    fn gf_mul_distributes_over_xor() {
        let (a, b, c) = (0x1111u128, 0x2222u128 << 32, 0xff00ff00u128 << 90);
        assert_eq!(
            GHash::gf_mul(a ^ b, c),
            GHash::gf_mul(a, c) ^ GHash::gf_mul(b, c)
        );
    }

    #[test]
    fn seal_open_latency_lands_in_the_size_bucket() {
        let cipher = AesGcm::new_256(&[8u8; 32]);
        let nonce = [3u8; NONCE_LEN];
        let small = vec![0u8; 100];
        let large = vec![0u8; 70_000];
        let count = |name: &str| {
            mvtee_telemetry::snapshot().histograms.get(name).map_or(0, |h| h.count)
        };
        let (s0, l0, o0) = (
            count("crypto.seal_ns.le_1k"),
            count("crypto.seal_ns.le_1m"),
            count("crypto.open_ns.le_1k"),
        );
        let sealed = cipher.seal(&nonce, &small, b"");
        cipher.seal(&nonce, &large, b"");
        cipher.open(&nonce, &sealed, b"").unwrap();
        assert_eq!(count("crypto.seal_ns.le_1k") - s0, 1);
        assert_eq!(count("crypto.seal_ns.le_1m") - l0, 1);
        assert_eq!(count("crypto.open_ns.le_1k") - o0, 1);
        // A rejected open is cancelled, not recorded.
        let mut bad = sealed.clone();
        bad[0] ^= 1;
        let before = count("crypto.open_ns.le_1k");
        assert!(cipher.open(&nonce, &bad, b"").is_err());
        assert_eq!(count("crypto.open_ns.le_1k"), before);
    }

    #[test]
    fn empty_plaintext_produces_tag_only() {
        let cipher = AesGcm::new_128(&[0u8; 16]);
        let sealed = cipher.seal(&[0u8; 12], b"", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(cipher.open(&[0u8; 12], &sealed, b"").unwrap(), b"");
    }
}
