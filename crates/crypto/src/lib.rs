//! Cryptographic primitives for the MVTEE reproduction, written from
//! scratch in safe Rust.
//!
//! The paper's runtime encrypts *all* monitor–variant and variant–variant
//! traffic with AES-GCM-256 over RA-TLS-established channels, seals variant
//! bundles with per-variant keys, and authenticates attestation reports.
//! This crate supplies those building blocks:
//!
//! * [`sha256`] — SHA-256, HMAC-SHA-256 and HKDF (RFC 5869) for
//!   measurements, report MACs and key derivation,
//! * [`aes`] — the AES-128/AES-256 block cipher (FIPS 197),
//! * [`gcm`] — AES-GCM authenticated encryption (NIST SP 800-38D),
//! * [`x25519`] — the X25519 Diffie-Hellman function (RFC 7748) used by the
//!   attested channel handshake,
//! * [`channel`] — sequence-numbered, AEAD-framed secure channels
//!   (the paper's "encrypted and authenticated with unique sequence numbers
//!   for freshness" transport, §4.3),
//! * [`tcp`] — a loopback/remote TCP frame transport so the same secure
//!   channels run in the paper's distributed setting.
//!
//! # Security note
//!
//! These implementations are validated against published test vectors
//! (FIPS 197, RFC 7748, NIST SHA-2) plus extensive round-trip/tamper
//! property tests, but they are *not* constant-time and are intended for the
//! simulated TEE substrate of this reproduction, not for production use.
//!
//! # Example
//!
//! ```
//! use mvtee_crypto::gcm::AesGcm;
//!
//! let key = [7u8; 32];
//! let cipher = AesGcm::new_256(&key);
//! let nonce = [1u8; 12];
//! let ct = cipher.seal(&nonce, b"checkpoint tensor", b"aad");
//! let pt = cipher.open(&nonce, &ct, b"aad").expect("authentic");
//! assert_eq!(pt, b"checkpoint tensor");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod channel;
pub mod gcm;
pub mod mux;
pub mod sha256;
pub mod tcp;
pub mod x25519;

mod error;

pub use error::CryptoError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CryptoError>;

/// Fills `buf` with bytes from the thread-local CSPRNG.
///
/// Centralised so the simulated TEE substrate has one place to source
/// entropy (and tests can observe that distinct invocations differ).
pub fn random_bytes(buf: &mut [u8]) {
    use rand::RngCore;
    rand::thread_rng().fill_bytes(buf);
}

/// Convenience: a fresh random array of `N` bytes.
pub fn random_array<const N: usize>() -> [u8; N] {
    let mut out = [0u8; N];
    random_bytes(&mut out);
    out
}

/// Constant-shape byte comparison that does not early-exit.
///
/// Not strictly constant-time at the instruction level, but avoids the
/// obvious length-dependent early return.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_arrays_differ() {
        let a: [u8; 32] = random_array();
        let b: [u8; 32] = random_array();
        assert_ne!(a, b, "256-bit collisions do not happen");
    }

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }
}
