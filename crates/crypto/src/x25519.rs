//! X25519 Diffie-Hellman (RFC 7748) over Curve25519.
//!
//! The attested secure channels of the TEE substrate perform an ephemeral
//! X25519 handshake whose public keys are bound into the attestation
//! evidence (the RA-TLS pattern of Knauth et al., which the paper implements
//! "at the socket level"). Field arithmetic uses ten 25.5-bit limbs held in
//! `u64`s with `u128` products, a standard safe-Rust formulation.

/// A Curve25519 field element in 10 limbs, radix 2^25.5.
#[derive(Clone, Copy, Debug)]
struct Fe([u64; 10]);

const MASK26: u64 = (1 << 26) - 1;
const MASK25: u64 = (1 << 25) - 1;

impl Fe {
    const ZERO: Fe = Fe([0; 10]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0, 0, 0, 0, 0, 0]);

    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load32 = |i: usize| -> u64 {
            u32::from_le_bytes(bytes[i..i + 4].try_into().expect("sliced")) as u64
        };
        let mut h = [0u64; 10];
        h[0] = load32(0) & MASK26;
        h[1] = (load32(3) >> 2) & MASK25;
        h[2] = (load32(6) >> 3) & MASK26;
        h[3] = (load32(9) >> 5) & MASK25;
        h[4] = (load32(12) >> 6) & MASK26;
        h[5] = load32(16) & MASK25;
        h[6] = (load32(19) >> 1) & MASK26;
        h[7] = (load32(22) >> 3) & MASK25;
        h[8] = (load32(25) >> 4) & MASK26;
        h[9] = (load32(28) >> 6) & MASK25;
        Fe(h)
    }

    fn to_bytes(self) -> [u8; 32] {
        let mut h = self.reduce_full();
        let mut out = [0u8; 32];
        let mut bits = 0usize;
        let mut byte = 0usize;
        let mut acc = 0u64;
        for (i, limb) in h.0.iter_mut().enumerate() {
            let width = if i % 2 == 0 { 26 } else { 25 };
            acc |= *limb << bits;
            bits += width;
            while bits >= 8 {
                out[byte] = (acc & 0xff) as u8;
                acc >>= 8;
                bits -= 8;
                byte += 1;
            }
        }
        if byte < 32 {
            out[byte] = (acc & 0xff) as u8;
        }
        out
    }

    /// Carries all limbs into canonical ranges (not yet fully reduced mod p).
    fn carry(mut self) -> Fe {
        for _ in 0..2 {
            for i in 0..9 {
                let width = if i % 2 == 0 { 26 } else { 25 };
                let mask = if i % 2 == 0 { MASK26 } else { MASK25 };
                let c = self.0[i] >> width;
                self.0[i] &= mask;
                self.0[i + 1] += c;
            }
            let c = self.0[9] >> 25;
            self.0[9] &= MASK25;
            self.0[0] += 19 * c;
        }
        self
    }

    /// Full reduction to the canonical representative in [0, p).
    fn reduce_full(self) -> Fe {
        let mut h = self.carry();
        // h is now < 2^255 + small. Conditionally subtract p = 2^255 - 19:
        // add 19 and check whether bit 255 sets; if so the original was >= p
        // and the overflowed form (top bit cleared) is the reduced value.
        let mut t = h.0;
        t[0] += 19;
        for i in 0..9 {
            let width = if i % 2 == 0 { 26 } else { 25 };
            let mask = if i % 2 == 0 { MASK26 } else { MASK25 };
            let c = t[i] >> width;
            t[i] &= mask;
            t[i + 1] += c;
        }
        let q = t[9] >> 25;
        if q != 0 {
            // h >= p: result is t with top bit cleared.
            t[9] &= MASK25;
            h = Fe(t);
        }
        h
    }

    fn add(self, other: Fe) -> Fe {
        let mut out = [0u64; 10];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = a + b;
        }
        Fe(out).carry()
    }

    fn sub(self, other: Fe) -> Fe {
        // Add 2*p worth of slack before subtracting to keep limbs positive.
        const SLACK: [u64; 10] = [
            0x7ffffda, 0x3fffffe, 0x7fffffe, 0x3fffffe, 0x7fffffe, 0x3fffffe, 0x7fffffe,
            0x3fffffe, 0x7fffffe, 0x3fffffe,
        ];
        let mut out = [0u64; 10];
        for i in 0..10 {
            out[i] = self.0[i] + SLACK[i] - other.0[i];
        }
        Fe(out).carry()
    }

    #[allow(clippy::needless_range_loop)] // index arithmetic over limb pairs
    fn mul(self, other: Fe) -> Fe {
        let a = &self.0;
        let b = &other.0;
        let mut t = [0u128; 19];
        for i in 0..10 {
            for j in 0..10 {
                // Odd limbs are radix-25.5; cross products of two odd
                // positions pick up a factor of 2.
                let factor = if i % 2 == 1 && j % 2 == 1 { 2 } else { 1 };
                t[i + j] += (a[i] as u128) * (b[j] as u128) * factor;
            }
        }
        // Fold limbs >= 10 back with the 19 multiplier (2^255 ≡ 19).
        for i in (10..19).rev() {
            t[i - 10] += t[i] * 19;
            t[i] = 0;
        }
        // Carry chain from u128 accumulators into u64 limbs.
        let mut out = [0u64; 10];
        let mut carry: u128 = 0;
        for i in 0..10 {
            let width = if i % 2 == 0 { 26 } else { 25 };
            let mask = if i % 2 == 0 { MASK26 as u128 } else { MASK25 as u128 };
            let v = t[i] + carry;
            out[i] = (v & mask) as u64;
            carry = v >> width;
        }
        let mut fe = Fe(out);
        fe.0[0] += (carry * 19) as u64;
        fe.carry()
    }

    fn square(self) -> Fe {
        self.mul(self)
    }

    #[allow(clippy::needless_range_loop)] // parallel limb/carry indexing
    fn mul_small(self, k: u64) -> Fe {
        let mut t = [0u128; 10];
        for i in 0..10 {
            t[i] = (self.0[i] as u128) * (k as u128);
        }
        let mut out = [0u64; 10];
        let mut carry: u128 = 0;
        for i in 0..10 {
            let width = if i % 2 == 0 { 26 } else { 25 };
            let mask = if i % 2 == 0 { MASK26 as u128 } else { MASK25 as u128 };
            let v = t[i] + carry;
            out[i] = (v & mask) as u64;
            carry = v >> width;
        }
        let mut fe = Fe(out);
        fe.0[0] += (carry * 19) as u64;
        fe.carry()
    }

    /// Inversion via Fermat's little theorem: a^(p-2).
    fn invert(self) -> Fe {
        // p - 2 = 2^255 - 21.
        let mut acc = Fe::ONE;
        let mut base = self;
        // Exponent bits of 2^255 - 21, LSB first: 2^255 - 21 =
        // ...11111111101011 (low bits 01011, i.e. bits 0,1,3 set; bit 2
        // clear; bit 4 clear; bits 5.. up to 254 set).
        // Simpler: iterate over the 255 bits of (p-2) computed on the fly.
        // p-2 in binary: bit pattern = 2^255 - 21; low 5 bits are 01011,
        // bits 5..255 are all 1.
        for i in 0..255 {
            let bit = match i {
                0 | 1 | 3 => 1u8,
                2 | 4 => 0u8,
                _ => 1u8,
            };
            if bit == 1 {
                acc = acc.mul(base);
            }
            base = base.square();
        }
        acc
    }

    fn cswap(a: &mut Fe, b: &mut Fe, swap: u64) {
        let mask = 0u64.wrapping_sub(swap);
        for i in 0..10 {
            let t = mask & (a.0[i] ^ b.0[i]);
            a.0[i] ^= t;
            b.0[i] ^= t;
        }
    }
}

/// Length of X25519 keys and shared secrets.
pub const KEY_LEN: usize = 32;

/// Clamps a 32-byte scalar per RFC 7748.
fn clamp(mut scalar: [u8; 32]) -> [u8; 32] {
    scalar[0] &= 248;
    scalar[31] &= 127;
    scalar[31] |= 64;
    scalar
}

/// The X25519 function: scalar multiplication on Curve25519.
///
/// `scalar` is clamped internally. Returns the shared point's u-coordinate.
pub fn x25519(scalar: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let k = clamp(*scalar);
    // Mask the top bit of u per RFC 7748.
    let mut u_bytes = *u;
    u_bytes[31] &= 127;
    let x1 = Fe::from_bytes(&u_bytes);

    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;

    for t in (0..255).rev() {
        let k_t = ((k[t / 8] >> (t % 8)) & 1) as u64;
        swap ^= k_t;
        Fe::cswap(&mut x2, &mut x3, swap);
        Fe::cswap(&mut z2, &mut z3, swap);
        swap = k_t;

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        let t0 = da.add(cb);
        x3 = t0.square();
        let t1 = da.sub(cb);
        z3 = x1.mul(t1.square());
        x2 = aa.mul(bb);
        // z2 = E * (AA + a24 * E), a24 = 121665.
        z2 = e.mul(aa.add(e.mul_small(121_665)));
    }
    Fe::cswap(&mut x2, &mut x3, swap);
    Fe::cswap(&mut z2, &mut z3, swap);

    x2.mul(z2.invert()).to_bytes()
}

/// The canonical Curve25519 base point (u = 9).
pub const BASE_POINT: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

/// Computes the public key for a secret scalar.
pub fn public_key(secret: &[u8; 32]) -> [u8; 32] {
    x25519(secret, &BASE_POINT)
}

/// An ephemeral X25519 keypair.
#[derive(Clone)]
pub struct EphemeralKeypair {
    secret: [u8; 32],
    /// The public u-coordinate, safe to transmit.
    pub public: [u8; 32],
}

impl std::fmt::Debug for EphemeralKeypair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EphemeralKeypair {{ public: {} }}", crate::sha256::hex(&self.public))
    }
}

impl EphemeralKeypair {
    /// Generates a fresh keypair from the CSPRNG.
    pub fn generate() -> Self {
        let secret: [u8; 32] = crate::random_array();
        let public = public_key(&secret);
        EphemeralKeypair { secret, public }
    }

    /// Creates a keypair from a fixed secret (for deterministic tests).
    pub fn from_secret(secret: [u8; 32]) -> Self {
        let public = public_key(&secret);
        EphemeralKeypair { secret, public }
    }

    /// Computes the shared secret with a peer public key.
    pub fn diffie_hellman(&self, peer_public: &[u8; 32]) -> [u8; 32] {
        x25519(&self.secret, peer_public)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    fn from_hex(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn rfc7748_vector_1() {
        let scalar =
            from_hex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = from_hex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let out = x25519(&scalar, &u);
        assert_eq!(
            hex(&out),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    #[test]
    fn rfc7748_vector_2() {
        let scalar =
            from_hex("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let u = from_hex("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        let out = x25519(&scalar, &u);
        assert_eq!(
            hex(&out),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    #[test]
    fn rfc7748_iterated_once() {
        // RFC 7748 §5.2: after one iteration of k = X25519(k, u) with
        // k = u = base point encoding.
        let mut k = BASE_POINT;
        let u = BASE_POINT;
        k = x25519(&k, &u);
        assert_eq!(
            hex(&k),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
    }

    #[test]
    fn rfc7748_iterated_1000() {
        let mut k = BASE_POINT;
        let mut u = BASE_POINT;
        for _ in 0..1000 {
            let next = x25519(&k, &u);
            u = k;
            k = next;
        }
        assert_eq!(
            hex(&k),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51"
        );
    }

    #[test]
    fn diffie_hellman_agreement() {
        let alice = EphemeralKeypair::generate();
        let bob = EphemeralKeypair::generate();
        let s1 = alice.diffie_hellman(&bob.public);
        let s2 = bob.diffie_hellman(&alice.public);
        assert_eq!(s1, s2);
        assert_ne!(s1, [0u8; 32]);
    }

    #[test]
    fn distinct_keypairs_distinct_secrets() {
        let a = EphemeralKeypair::generate();
        let b = EphemeralKeypair::generate();
        assert_ne!(a.public, b.public);
        let c = EphemeralKeypair::generate();
        assert_ne!(a.diffie_hellman(&c.public), b.diffie_hellman(&c.public));
    }

    #[test]
    fn debug_hides_secret() {
        let kp = EphemeralKeypair::from_secret([0x42; 32]);
        let dbg = format!("{kp:?}");
        assert!(dbg.contains("public"));
        assert!(!dbg.contains("4242424242"), "secret must not appear: {dbg}");
    }

    #[test]
    fn field_invert() {
        let a = Fe::from_bytes(&from_hex(
            "0902000000000000000000000000000000000000000000000000000000000000",
        ));
        let inv = a.invert();
        let prod = a.mul(inv).to_bytes();
        assert_eq!(hex(&prod), hex(&Fe::ONE.to_bytes()));
    }
}
