//! Property tests for channel framing: arbitrary payload sizes must
//! round-trip bit-exactly through the secure channel, the transport
//! frame cap must hold on both sides of a TCP connection, and a
//! truncated frame — a lossy channel cutting a payload short mid-flight
//! — must always be rejected by the GCM tag, never silently accepted.

use mvtee_crypto::channel::{memory_pair, FrameTransport, Handshake, Role, SecureChannel};
use mvtee_crypto::tcp::{loopback_pair, MAX_FRAME_LEN};
use mvtee_crypto::CryptoError;
use proptest::prelude::*;

fn psk_pair(
) -> (SecureChannel<mvtee_crypto::channel::MemoryTransport>, SecureChannel<mvtee_crypto::channel::MemoryTransport>)
{
    let (a, b) = memory_pair();
    let tx = SecureChannel::new(a, &Handshake::from_pre_shared(b"framing-props", Role::Initiator), 1);
    let rx = SecureChannel::new(b, &Handshake::from_pre_shared(b"framing-props", Role::Responder), 1);
    (tx, rx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_payloads_round_trip(payload in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let (mut tx, mut rx) = psk_pair();
        tx.send(&payload).unwrap();
        prop_assert_eq!(rx.recv().unwrap(), payload);
    }

    #[test]
    fn truncation_is_always_detected(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        cut in 0usize..10_000,
    ) {
        // Seal a frame, then deliver only a prefix of it — the fault a
        // lossy channel injects when it cuts a frame short. Whatever the
        // cut point, the receiver must error: short prefixes fail
        // framing, longer ones fail the GCM tag. Never Ok.
        let (a, wire) = memory_pair();
        let mut tx = SecureChannel::new(a, &Handshake::from_pre_shared(b"t", Role::Initiator), 3);
        tx.send(&payload).unwrap();
        let frame = wire.recv_frame().unwrap();
        let idx = cut % frame.len(); // frame is never empty: 8-byte seq + 16-byte tag
        let (c, d) = memory_pair();
        c.send_frame(frame[..idx].to_vec()).unwrap();
        let mut rx = SecureChannel::new(d, &Handshake::from_pre_shared(b"t", Role::Responder), 3);
        let result = rx.recv();
        prop_assert!(result.is_err(), "truncation at {} of {} accepted", idx, frame.len());
        if idx >= 8 + 16 {
            // Sequence header intact and at least a tag's worth of sealed
            // bytes present: only the AEAD tag itself can catch it.
            prop_assert!(
                matches!(result, Err(CryptoError::AuthenticationFailed)),
                "expected tag failure at cut {}, got {:?}", idx, result
            );
        } else if idx >= 8 {
            // Cut inside the tag region: too short to even carry a tag.
            prop_assert!(
                matches!(result, Err(CryptoError::CiphertextTooShort { .. })),
                "expected short-ciphertext failure at cut {}, got {:?}", idx, result
            );
        }
    }

    #[test]
    fn arbitrary_payloads_round_trip_over_tcp(payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let (client, server) = loopback_pair().unwrap();
        client.send_frame(payload.clone()).unwrap();
        prop_assert_eq!(server.recv_frame().unwrap(), payload);
    }
}

#[test]
fn edge_sizes_round_trip() {
    // 0- and 1-byte payloads through the full secure channel.
    for payload in [vec![], vec![0x5a]] {
        let (mut tx, mut rx) = psk_pair();
        tx.send(&payload).unwrap();
        assert_eq!(rx.recv().unwrap(), payload);
    }
}

#[test]
fn max_frame_round_trips_and_max_plus_one_is_rejected() {
    // Raw transport framing at the cap (the AEAD layer above adds its
    // own header, so the cap is a transport property).
    let (client, server) = loopback_pair().unwrap();
    let max = vec![0xabu8; MAX_FRAME_LEN];
    let sender = std::thread::spawn(move || {
        client.send_frame(max).unwrap();
        client
    });
    let got = server.recv_frame().unwrap();
    assert_eq!(got.len(), MAX_FRAME_LEN);
    assert!(got.iter().all(|&b| b == 0xab));
    let client = sender.join().unwrap();

    let over = vec![0u8; MAX_FRAME_LEN + 1];
    assert!(matches!(client.send_frame(over), Err(CryptoError::MalformedFrame)));
}

#[test]
fn oversized_length_prefix_rejected_on_receive() {
    // A malicious peer that skips the sender-side check: write a raw
    // length prefix above the cap straight onto the socket. The receiver
    // must reject before allocating.
    use std::io::Write;
    let (listener, port) = mvtee_crypto::tcp::bind_loopback().unwrap();
    let join = std::thread::spawn(move || {
        let transport = mvtee_crypto::tcp::TcpTransport::accept(&listener).unwrap();
        transport.recv_frame()
    });
    let mut raw = std::net::TcpStream::connect(("127.0.0.1", port)).unwrap();
    let len = (MAX_FRAME_LEN as u32 + 1).to_be_bytes();
    raw.write_all(&len).unwrap();
    raw.flush().unwrap();
    let result = join.join().unwrap();
    assert!(matches!(result, Err(CryptoError::MalformedFrame)));
}
