//! The Gramine-like TEE OS: manifest enforcement, the two-stage bootstrap
//! state machine, and the key-protected filesystem.
//!
//! MVTEE's §5.2 extensions to Gramine are all modelled:
//!
//! * **Two-stage manifests** — a second-stage manifest can be installed
//!   exactly once, only from the init stage, only when the active manifest
//!   opted in (`two_stage`); the install interface is disabled afterwards
//!   and in the main stage.
//! * **One-way `exec()` transition** — the first `exec()` switches to the
//!   second-stage manifest and resets state "as thoroughly as possible"
//!   (the simulation clears the syscall log, host environment view and
//!   pending host args).
//! * **Key management** — the variant-specific key installed by the
//!   init-variant acts as a *key-derivation key*; per-file one-time keys
//!   are derived via HKDF (the paper's ciphertext-volume argument for key
//!   rotation). Key installation is prohibited in the main stage.
//! * **Protected FS** — encrypted files are sealed with AES-GCM-256 and
//!   fail closed on any tampering; trusted files verify against manifest
//!   reference hashes.

use crate::manifest::{Manifest, Syscall};
use crate::{Result, TeeError};
use mvtee_crypto::gcm::{AesGcm, NONCE_LEN};
use mvtee_crypto::sha256::hkdf;
use mvtee_crypto::{random_array, random_bytes};
use std::collections::HashMap;
use std::fmt;

/// Bootstrap stage of a variant TEE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Running the public init-variant.
    Init,
    /// Running the decrypted main variant (post-`exec`).
    Main,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Init => write!(f, "init"),
            Stage::Main => write!(f, "main"),
        }
    }
}

/// The encrypted filesystem: sealed blobs on (untrusted) host storage,
/// per-file one-time keys derived from the key-derivation key.
///
/// Rollback mitigation (§6.5): every write bumps a per-file freshness
/// version that is bound into the AEAD associated data. While the instance
/// lives, re-importing an older sealed blob (a rollback/replay attack)
/// fails authentication on the next read. A complete defense across
/// restarts would need monotonic counters, which the paper also notes.
#[derive(Debug, Default)]
pub struct ProtectedFs {
    /// path → (salt, sealed bytes). The host sees only this.
    sealed: HashMap<String, ([u8; 16], Vec<u8>)>,
    /// path → freshness version (runtime metadata, inside the TEE).
    versions: HashMap<String, u64>,
}

impl ProtectedFs {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn file_key(kdk: &[u8; 32], path: &str, salt: &[u8; 16]) -> [u8; 32] {
        let mut info = Vec::with_capacity(path.len() + 24);
        info.extend_from_slice(b"mvtee-file-key:");
        info.extend_from_slice(path.as_bytes());
        let okm = hkdf(salt, kdk, &info, 32);
        let mut key = [0u8; 32];
        key.copy_from_slice(&okm);
        key
    }

    fn aad(path: &str, version: u64) -> Vec<u8> {
        let mut aad = Vec::with_capacity(path.len() + 8);
        aad.extend_from_slice(path.as_bytes());
        aad.extend_from_slice(&version.to_le_bytes());
        aad
    }

    /// Seals `plaintext` under a fresh one-time key derived from `kdk`,
    /// bumping the file's freshness version.
    ///
    /// Blob layout: `version:u64le ‖ nonce ‖ ciphertext ‖ tag`. The version
    /// also rides in cleartext so [`ProtectedFs::import`] can adopt it, but
    /// authenticity comes from its copy inside the AEAD associated data —
    /// editing the cleartext version fails authentication.
    pub fn write(&mut self, kdk: &[u8; 32], path: &str, plaintext: &[u8]) {
        let version = self.versions.get(path).copied().unwrap_or(0) + 1;
        let salt: [u8; 16] = random_array();
        let key = Self::file_key(kdk, path, &salt);
        let mut nonce = [0u8; NONCE_LEN];
        random_bytes(&mut nonce);
        let cipher = AesGcm::new_256(&key);
        let sealed = cipher.seal(&nonce, plaintext, &Self::aad(path, version));
        let mut blob = Vec::with_capacity(8 + NONCE_LEN + sealed.len());
        blob.extend_from_slice(&version.to_le_bytes());
        blob.extend_from_slice(&nonce);
        blob.extend_from_slice(&sealed);
        self.sealed.insert(path.to_string(), (salt, blob));
        self.versions.insert(path.to_string(), version);
    }

    /// Opens and verifies a sealed file.
    ///
    /// # Errors
    ///
    /// * [`TeeError::FileNotFound`] when absent,
    /// * [`TeeError::Crypto`] when the blob was tampered with or the key is
    ///   wrong.
    pub fn read(&self, kdk: &[u8; 32], path: &str) -> Result<Vec<u8>> {
        let (salt, blob) =
            self.sealed.get(path).ok_or_else(|| TeeError::FileNotFound { path: path.into() })?;
        if blob.len() < 8 + NONCE_LEN {
            return Err(TeeError::Crypto(mvtee_crypto::CryptoError::MalformedFrame));
        }
        let key = Self::file_key(kdk, path, salt);
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(&blob[8..8 + NONCE_LEN]);
        let cipher = AesGcm::new_256(&key);
        // Freshness: authenticate against the *runtime* version, not the
        // blob's cleartext claim — a reverted blob carries an old version
        // in its AAD and fails.
        let version = self.versions.get(path).copied().unwrap_or(1);
        Ok(cipher.open(&nonce, &blob[8 + NONCE_LEN..], &Self::aad(path, version))?)
    }

    /// Imports an externally sealed blob (the deployment path: the offline
    /// tool seals variant bundles, the orchestrator places them on host
    /// storage). `blob` must have been produced by [`ProtectedFs::export`]
    /// or [`ProtectedFs::write`]'s on-disk format.
    ///
    /// The runtime freshness floor never decreases: the adopted version is
    /// `max(current, blob's claimed version)`, so importing a blob older
    /// than the newest state this instance has seen leaves it unreadable
    /// (rollback protection), while first placements of any version work.
    pub fn import(&mut self, path: &str, salt: [u8; 16], blob: Vec<u8>) {
        let claimed = blob
            .get(..8)
            .and_then(|b| b.try_into().ok())
            .map(u64::from_le_bytes)
            .unwrap_or(1);
        let entry = self.versions.entry(path.to_string()).or_insert(claimed);
        *entry = (*entry).max(claimed);
        self.sealed.insert(path.to_string(), (salt, blob));
    }

    /// Exports the sealed representation of a file (what the untrusted
    /// host would see / ship around).
    pub fn export(&self, path: &str) -> Option<([u8; 16], Vec<u8>)> {
        self.sealed.get(path).cloned()
    }

    /// Host-level tampering hook for tests: flips a byte of the sealed
    /// blob.
    pub fn tamper(&mut self, path: &str, byte: usize) -> bool {
        if let Some((_, blob)) = self.sealed.get_mut(path) {
            if let Some(b) = blob.get_mut(byte) {
                *b ^= 0xff;
                return true;
            }
        }
        false
    }

    /// Removes a sealed file, returning whether it existed. The freshness
    /// version is kept, so a host re-importing the removed blob later (an
    /// eviction-replay attack) still fails the rollback check once the
    /// path has been re-written.
    pub fn remove(&mut self, path: &str) -> bool {
        self.sealed.remove(path).is_some()
    }

    /// Lists sealed paths.
    pub fn paths(&self) -> Vec<&str> {
        self.sealed.keys().map(String::as_str).collect()
    }

    /// Current freshness version of a file (0 = never written).
    pub fn version(&self, path: &str) -> u64 {
        self.versions.get(path).copied().unwrap_or(0)
    }
}

/// The TEE OS instance backing one enclave.
#[derive(Debug)]
pub struct TeeOs {
    stage: Stage,
    active: Manifest,
    second_stage: Option<Manifest>,
    install_locked: bool,
    kdk: Option<[u8; 32]>,
    fs: ProtectedFs,
    /// Untrusted host files (plaintext, integrity unprotected).
    host_files: HashMap<String, Vec<u8>>,
    syscall_log: Vec<Syscall>,
}

impl TeeOs {
    /// Boots a TEE OS with a first-stage manifest.
    pub fn new(manifest: Manifest) -> Self {
        TeeOs {
            stage: Stage::Init,
            active: manifest,
            second_stage: None,
            install_locked: false,
            kdk: None,
            fs: ProtectedFs::new(),
            host_files: HashMap::new(),
            syscall_log: Vec::new(),
        }
    }

    /// Current bootstrap stage.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// The currently enforced manifest.
    pub fn active_manifest(&self) -> &Manifest {
        &self.active
    }

    /// Hash of the enforced manifest (for attestation evidence).
    pub fn manifest_hash(&self) -> [u8; 32] {
        self.active.hash()
    }

    /// Hash of the installed-but-not-yet-active second-stage manifest, if
    /// any (sent to the monitor as installation evidence, step ⑥ of
    /// Fig 6).
    pub fn second_stage_hash(&self) -> Option<[u8; 32]> {
        self.second_stage.as_ref().map(Manifest::hash)
    }

    /// Issues a syscall through the manifest policy.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::SyscallDenied`] when the active manifest does
    /// not allow it.
    pub fn syscall(&mut self, call: Syscall) -> Result<()> {
        if !self.active.allows(call) {
            return Err(TeeError::SyscallDenied {
                syscall: call.to_string(),
                stage: self.stage.to_string(),
            });
        }
        self.syscall_log.push(call);
        Ok(())
    }

    /// Syscalls issued since boot / the last stage transition.
    pub fn syscall_log(&self) -> &[Syscall] {
        &self.syscall_log
    }

    /// Provisions a plaintext file on the untrusted host side.
    pub fn provision_host_file(&mut self, path: impl Into<String>, content: Vec<u8>) {
        self.host_files.insert(path.into(), content);
    }

    /// Opens a trusted file, verifying its hash against the manifest.
    ///
    /// # Errors
    ///
    /// * [`TeeError::SyscallDenied`] when `open` is not allowed,
    /// * [`TeeError::FileAccessDenied`] for unlisted or modified files,
    /// * [`TeeError::FileNotFound`] when missing on the host.
    pub fn open_trusted(&mut self, path: &str) -> Result<Vec<u8>> {
        self.syscall(Syscall::Open)?;
        let expected = *self.active.trusted_files.get(path).ok_or_else(|| {
            TeeError::FileAccessDenied { path: path.into(), reason: "not a trusted file".into() }
        })?;
        let content = self
            .host_files
            .get(path)
            .ok_or_else(|| TeeError::FileNotFound { path: path.into() })?;
        let actual = mvtee_crypto::sha256::sha256(content);
        if actual != expected {
            return Err(TeeError::FileAccessDenied {
                path: path.into(),
                reason: "hash mismatch".into(),
            });
        }
        Ok(content.clone())
    }

    /// Installs the variant-specific key-derivation key.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::KeyInstallDenied`] outside the init stage — the
    /// paper "prohibits any key manipulation in the second stage".
    pub fn install_key(&mut self, kdk: [u8; 32]) -> Result<()> {
        if self.stage != Stage::Init {
            return Err(TeeError::KeyInstallDenied(
                "key manipulation is prohibited in the main-variant stage".into(),
            ));
        }
        self.kdk = Some(kdk);
        Ok(())
    }

    /// Whether a key-derivation key has been installed.
    pub fn has_key(&self) -> bool {
        self.kdk.is_some()
    }

    /// Writes a file through the encrypted filesystem.
    ///
    /// # Errors
    ///
    /// Fails when `write` is denied, the path is not in the manifest's
    /// encrypted set, or no key is installed.
    pub fn write_encrypted(&mut self, path: &str, plaintext: &[u8]) -> Result<()> {
        self.syscall(Syscall::Write)?;
        if !self.active.encrypted_files.contains(path) {
            return Err(TeeError::FileAccessDenied {
                path: path.into(),
                reason: "not in the encrypted-files set".into(),
            });
        }
        let kdk = self.kdk.ok_or_else(|| {
            TeeError::FileAccessDenied { path: path.into(), reason: "no key installed".into() }
        })?;
        self.fs.write(&kdk, path, plaintext);
        Ok(())
    }

    /// Reads and verifies a file from the encrypted filesystem.
    ///
    /// # Errors
    ///
    /// Fails like [`TeeOs::write_encrypted`], plus on tampering.
    pub fn read_encrypted(&mut self, path: &str) -> Result<Vec<u8>> {
        self.syscall(Syscall::Read)?;
        if !self.active.encrypted_files.contains(path) {
            return Err(TeeError::FileAccessDenied {
                path: path.into(),
                reason: "not in the encrypted-files set".into(),
            });
        }
        let kdk = self.kdk.ok_or_else(|| {
            TeeError::FileAccessDenied { path: path.into(), reason: "no key installed".into() }
        })?;
        self.fs.read(&kdk, path)
    }

    /// Direct access to the protected filesystem (deployment and test
    /// tooling; the untrusted host can see/tamper sealed blobs anyway).
    pub fn fs_mut(&mut self) -> &mut ProtectedFs {
        &mut self.fs
    }

    /// Installs the one-time second-stage manifest via the pseudo-fs
    /// interface.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::ManifestInstallDenied`] when: the active
    /// manifest did not opt into two-stage mode, the install interface is
    /// locked (already installed), or the enclave is already in the main
    /// stage.
    pub fn install_second_stage(&mut self, manifest: Manifest) -> Result<()> {
        if self.stage != Stage::Init {
            return Err(TeeError::ManifestInstallDenied(
                "interface disabled during variant execution stage".into(),
            ));
        }
        if !self.active.two_stage {
            return Err(TeeError::ManifestInstallDenied(
                "active manifest does not enable two-stage mode".into(),
            ));
        }
        if self.install_locked {
            return Err(TeeError::ManifestInstallDenied(
                "second-stage manifest already installed and locked".into(),
            ));
        }
        self.second_stage = Some(manifest);
        self.install_locked = true;
        Ok(())
    }

    /// The one-way stage transition, triggered by the first `exec()`.
    ///
    /// Switches enforcement to the second-stage manifest and resets state:
    /// clears the syscall log and the host file view (simulating the
    /// paper's memory zeroing / fd closing / TLS clearing list).
    ///
    /// # Errors
    ///
    /// * [`TeeError::SyscallDenied`] when the active manifest forbids
    ///   `exec`,
    /// * [`TeeError::ManifestInstallDenied`] when no second-stage manifest
    ///   was installed first.
    pub fn exec(&mut self) -> Result<()> {
        // One-way at the state-machine level, independent of whether a
        // (malicious) second-stage manifest happens to allow `exec`.
        if self.stage == Stage::Main {
            return Err(TeeError::ManifestInstallDenied(
                "stage transition is one-way; already in the main stage".into(),
            ));
        }
        self.syscall(Syscall::Exec)?;
        let next = self.second_stage.clone().ok_or_else(|| {
            TeeError::ManifestInstallDenied("no second-stage manifest installed".into())
        })?;
        self.active = next;
        self.stage = Stage::Main;
        // State reset "as thoroughly as possible".
        self.syscall_log.clear();
        self.host_files.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_stage_os() -> TeeOs {
        let mut init = Manifest::init_variant("init");
        init.encrypt_file("/enc/bundle");
        TeeOs::new(init)
    }

    #[test]
    fn syscall_policy_enforced() {
        let mut os = TeeOs::new(Manifest::main_variant("m"));
        os.syscall(Syscall::Read).unwrap();
        assert!(matches!(os.syscall(Syscall::Ioctl), Err(TeeError::SyscallDenied { .. })));
        assert_eq!(os.syscall_log(), &[Syscall::Read]);
    }

    #[test]
    fn trusted_file_verification() {
        let mut m = Manifest::init_variant("init");
        m.trust_file("/bin/init", b"init-code");
        let mut os = TeeOs::new(m);
        os.provision_host_file("/bin/init", b"init-code".to_vec());
        assert_eq!(os.open_trusted("/bin/init").unwrap(), b"init-code");
        // Host swaps the file: detected.
        os.provision_host_file("/bin/init", b"evil-code".to_vec());
        assert!(matches!(
            os.open_trusted("/bin/init"),
            Err(TeeError::FileAccessDenied { .. })
        ));
        // Unlisted file: denied.
        os.provision_host_file("/bin/other", b"x".to_vec());
        assert!(os.open_trusted("/bin/other").is_err());
    }

    #[test]
    fn encrypted_fs_round_trip_and_tamper() {
        let mut os = two_stage_os();
        os.install_key([9u8; 32]).unwrap();
        os.write_encrypted("/enc/bundle", b"variant bytes").unwrap();
        assert_eq!(os.read_encrypted("/enc/bundle").unwrap(), b"variant bytes");
        // Tamper at the host level.
        assert!(os.fs_mut().tamper("/enc/bundle", 20));
        assert!(matches!(os.read_encrypted("/enc/bundle"), Err(TeeError::Crypto(_))));
    }

    #[test]
    fn encrypted_fs_requires_key_and_listing() {
        let mut os = two_stage_os();
        assert!(os.write_encrypted("/enc/bundle", b"x").is_err()); // no key
        os.install_key([1u8; 32]).unwrap();
        assert!(os.write_encrypted("/enc/other", b"x").is_err()); // unlisted
        os.write_encrypted("/enc/bundle", b"x").unwrap();
    }

    #[test]
    fn wrong_key_fails_closed() {
        let mut os = two_stage_os();
        os.install_key([1u8; 32]).unwrap();
        os.write_encrypted("/enc/bundle", b"secret").unwrap();
        let exported = os.fs_mut().export("/enc/bundle").unwrap();
        // A second OS with a different key cannot read the blob.
        let mut other = two_stage_os();
        other.install_key([2u8; 32]).unwrap();
        other.fs_mut().import("/enc/bundle", exported.0, exported.1);
        assert!(matches!(other.read_encrypted("/enc/bundle"), Err(TeeError::Crypto(_))));
    }

    #[test]
    fn rollback_to_older_blob_is_detected() {
        // §6.5: "encrypted files can suffer from rollback/replay attacks,
        // where an attacker reverts files to an older state. We partially
        // mitigate this by maintaining freshness metadata at runtime."
        let kdk = [5u8; 32];
        let mut fs = ProtectedFs::new();
        fs.write(&kdk, "/enc/state", b"version 1");
        let old = fs.export("/enc/state").unwrap();
        fs.write(&kdk, "/enc/state", b"version 2");
        assert_eq!(fs.read(&kdk, "/enc/state").unwrap(), b"version 2");
        assert_eq!(fs.version("/enc/state"), 2);
        // The untrusted host reverts the blob to the old state.
        fs.import("/enc/state", old.0, old.1);
        assert!(
            matches!(fs.read(&kdk, "/enc/state"), Err(TeeError::Crypto(_))),
            "rolled-back blob must fail freshness authentication"
        );
    }

    #[test]
    fn export_after_multiple_writes_imports_cleanly() {
        // A blob exported at version N must be readable after import into a
        // fresh instance (the deployment/rotation path).
        let kdk = [8u8; 32];
        let mut fs = ProtectedFs::new();
        fs.write(&kdk, "/enc/f", b"one");
        fs.write(&kdk, "/enc/f", b"two");
        fs.write(&kdk, "/enc/f", b"three");
        let (salt, blob) = fs.export("/enc/f").unwrap();
        let mut fresh = ProtectedFs::new();
        fresh.import("/enc/f", salt, blob);
        assert_eq!(fresh.read(&kdk, "/enc/f").unwrap(), b"three");
        assert_eq!(fresh.version("/enc/f"), 3);
    }

    #[test]
    fn exec_is_one_way_even_if_second_manifest_allows_exec() {
        // A malicious second-stage manifest that re-enables exec must not
        // reopen the transition.
        let mut os = TeeOs::new(Manifest::init_variant("init"));
        let mut second = Manifest::main_variant("evil");
        second.allowed_syscalls.insert(Syscall::Exec);
        os.install_second_stage(second).unwrap();
        os.exec().unwrap();
        assert_eq!(os.stage(), Stage::Main);
        assert!(matches!(os.exec(), Err(TeeError::ManifestInstallDenied(_))));
    }

    #[test]
    fn two_stage_happy_path() {
        let mut os = two_stage_os();
        assert_eq!(os.stage(), Stage::Init);
        let mut second = Manifest::main_variant("main");
        second.encrypt_file("/enc/bundle");
        os.install_second_stage(second.clone()).unwrap();
        assert_eq!(os.second_stage_hash(), Some(second.hash()));
        os.exec().unwrap();
        assert_eq!(os.stage(), Stage::Main);
        assert_eq!(os.manifest_hash(), second.hash());
        // State was reset.
        assert!(os.syscall_log().is_empty());
    }

    #[test]
    fn second_stage_install_is_one_time() {
        let mut os = two_stage_os();
        os.install_second_stage(Manifest::main_variant("a")).unwrap();
        assert!(matches!(
            os.install_second_stage(Manifest::main_variant("b")),
            Err(TeeError::ManifestInstallDenied(_))
        ));
    }

    #[test]
    fn install_denied_in_main_stage() {
        let mut os = two_stage_os();
        os.install_second_stage(Manifest::main_variant("a")).unwrap();
        os.exec().unwrap();
        assert!(matches!(
            os.install_second_stage(Manifest::main_variant("b")),
            Err(TeeError::ManifestInstallDenied(_))
        ));
    }

    #[test]
    fn install_requires_two_stage_manifest() {
        let mut os = TeeOs::new(Manifest::main_variant("not-two-stage"));
        assert!(matches!(
            os.install_second_stage(Manifest::main_variant("x")),
            Err(TeeError::ManifestInstallDenied(_))
        ));
    }

    #[test]
    fn exec_requires_installed_second_stage() {
        let mut os = two_stage_os();
        assert!(matches!(os.exec(), Err(TeeError::ManifestInstallDenied(_))));
    }

    #[test]
    fn exec_denied_by_main_manifest() {
        // After transition, exec is refused by the one-way state machine
        // itself (before the manifest's syscall policy is even consulted).
        let mut os = two_stage_os();
        os.install_second_stage(Manifest::main_variant("m")).unwrap();
        os.exec().unwrap();
        assert!(matches!(os.exec(), Err(TeeError::ManifestInstallDenied(_))));
    }

    #[test]
    fn key_install_prohibited_in_main_stage() {
        let mut os = two_stage_os();
        os.install_key([1u8; 32]).unwrap();
        let mut second = Manifest::main_variant("m");
        second.encrypt_file("/enc/bundle");
        os.install_second_stage(second).unwrap();
        os.exec().unwrap();
        assert!(matches!(os.install_key([2u8; 32]), Err(TeeError::KeyInstallDenied(_))));
        // But the previously installed key still decrypts.
        assert!(os.has_key());
    }

    #[test]
    fn encrypted_files_survive_exec() {
        let mut os = two_stage_os();
        os.install_key([7u8; 32]).unwrap();
        os.write_encrypted("/enc/bundle", b"model-part").unwrap();
        let mut second = Manifest::main_variant("m");
        second.encrypt_file("/enc/bundle");
        os.install_second_stage(second).unwrap();
        os.exec().unwrap();
        assert_eq!(os.read_encrypted("/enc/bundle").unwrap(), b"model-part");
    }
}
