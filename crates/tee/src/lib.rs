//! Simulated TEE substrate for the MVTEE reproduction.
//!
//! The paper's runtime is built on Gramine-SGX/TDX: enclaves with
//! hardware-rooted attestation, a library OS enforcing a manifest
//! (trusted/encrypted files, syscall restrictions), an encrypted
//! filesystem, and the two-stage manifest extension MVTEE adds (§5.2).
//! No TEE hardware is available here, so this crate re-implements those
//! mechanisms as faithful *protocol- and state-machine-level* simulations:
//!
//! * [`platform`] — the "hardware": per-platform attestation keys,
//!   HMAC-signed [`platform::AttestationReport`]s over enclave
//!   measurements with nonce/report-data binding (the SGX/TDX quote
//!   analogue),
//! * [`manifest`] — Gramine-style manifests: trusted-file hashes,
//!   encrypted-file set, syscall and environment allow-lists,
//! * [`teeos`] — the library OS: manifest enforcement, the **one-time
//!   second-stage manifest installation** with one-way `exec()` transition
//!   and state reset, and the key-protected [`teeos::ProtectedFs`]
//!   (per-file keys derived from the variant key-derivation key),
//! * [`enclave`] — enclave identity: code measurement × manifest hash ×
//!   TEE kind, plus report generation bound to secure-channel transcripts
//!   (RA-TLS binding).
//!
//! Security properties preserved by the simulation (and exercised by the
//! tests): attestation unforgeability without the platform key, manifest
//! tamper-evidence, one-time/one-way stage transition, stage-2 key
//! manipulation lockout, encrypted-file confidentiality and integrity,
//! nonce freshness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enclave;
pub mod manifest;
pub mod platform;
pub mod teeos;

mod error;

pub use enclave::{compute_measurement, verify_report, CodeIdentity, Enclave, TeeKind};
pub use error::TeeError;
pub use manifest::{Manifest, Syscall};
pub use platform::{AttestationReport, Platform};
pub use teeos::{ProtectedFs, Stage, TeeOs};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TeeError>;
