//! The simulated TEE "hardware": platform attestation keys and signed
//! reports.
//!
//! Real SGX/TDX quotes are signed by fused hardware keys and verified
//! against Intel's PKI. The simulation roots trust in a per-platform
//! random key held by [`Platform`]; enclaves on the platform can request
//! reports, and any holder of a `Platform` handle can verify them — the
//! analogue of a verifier that trusts the vendor's attestation
//! infrastructure. Reports cannot be forged without the platform handle,
//! and any field tampering breaks the MAC (tested below).

use crate::enclave::TeeKind;
use mvtee_crypto::sha256::hmac_sha256;
use mvtee_crypto::{ct_eq, random_array};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Free-form data bound into a report (nonce, channel transcript hash…).
pub const REPORT_DATA_LEN: usize = 64;

/// A hardware-signed attestation report (the SGX quote analogue).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttestationReport {
    /// Which TEE flavour produced the report.
    pub tee_kind: TeeKind,
    /// Enclave measurement (code identity × manifest).
    pub measurement: [u8; 32],
    /// Hash of the currently enforced manifest.
    pub manifest_hash: [u8; 32],
    /// Caller-chosen binding data (nonce ‖ channel transcript hash).
    pub report_data: Vec<u8>,
    /// Platform MAC over all the above.
    mac: [u8; 32],
}

impl AttestationReport {
    fn mac_input(
        tee_kind: TeeKind,
        measurement: &[u8; 32],
        manifest_hash: &[u8; 32],
        report_data: &[u8],
    ) -> Vec<u8> {
        let mut msg = Vec::with_capacity(1 + 32 + 32 + report_data.len());
        msg.push(match tee_kind {
            TeeKind::Sgx => 1u8,
            TeeKind::Tdx => 2u8,
        });
        msg.extend_from_slice(measurement);
        msg.extend_from_slice(manifest_hash);
        msg.extend_from_slice(report_data);
        msg
    }
}

/// A simulated attestation-capable platform.
///
/// Cloneable handle (internally `Arc`) shared between the enclaves running
/// "on" the platform and the verifiers that trust it.
#[derive(Debug, Clone)]
pub struct Platform {
    inner: Arc<PlatformInner>,
}

#[derive(Debug)]
struct PlatformInner {
    key: [u8; 32],
}

impl Default for Platform {
    fn default() -> Self {
        Self::new()
    }
}

impl Platform {
    /// Provisions a fresh platform with a random attestation key.
    pub fn new() -> Self {
        Platform { inner: Arc::new(PlatformInner { key: random_array() }) }
    }

    /// Exports the platform root so a second host can be provisioned as
    /// part of the same trust domain — the simulation's analogue of two
    /// machines sharing one vendor attestation infrastructure. A worker
    /// process rebuilt with [`Platform::from_root`] signs and verifies
    /// reports compatibly with this handle.
    pub fn export_root(&self) -> [u8; 32] {
        self.inner.key
    }

    /// Reconstructs a platform handle from an exported root (see
    /// [`Platform::export_root`]).
    pub fn from_root(root: [u8; 32]) -> Self {
        Platform { inner: Arc::new(PlatformInner { key: root }) }
    }

    /// Signs a report for an enclave on this platform.
    ///
    /// # Panics
    ///
    /// Panics when `report_data` exceeds [`REPORT_DATA_LEN`] (callers bind
    /// fixed-size digests, mirroring the hardware field limit).
    pub fn sign_report(
        &self,
        tee_kind: TeeKind,
        measurement: [u8; 32],
        manifest_hash: [u8; 32],
        report_data: &[u8],
    ) -> AttestationReport {
        assert!(
            report_data.len() <= REPORT_DATA_LEN,
            "report data exceeds {REPORT_DATA_LEN} bytes"
        );
        let msg =
            AttestationReport::mac_input(tee_kind, &measurement, &manifest_hash, report_data);
        let mac = hmac_sha256(&self.inner.key, &msg);
        AttestationReport {
            tee_kind,
            measurement,
            manifest_hash,
            report_data: report_data.to_vec(),
            mac,
        }
    }

    /// Verifies a report allegedly produced on this platform.
    pub fn verify_report(&self, report: &AttestationReport) -> bool {
        let msg = AttestationReport::mac_input(
            report.tee_kind,
            &report.measurement,
            &report.manifest_hash,
            &report.report_data,
        );
        let expected = hmac_sha256(&self.inner.key, &msg);
        ct_eq(&expected, &report.mac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(p: &Platform) -> AttestationReport {
        p.sign_report(TeeKind::Sgx, [1u8; 32], [2u8; 32], b"nonce-and-transcript")
    }

    #[test]
    fn sign_verify_round_trip() {
        let p = Platform::new();
        let r = sample_report(&p);
        assert!(p.verify_report(&r));
    }

    #[test]
    fn other_platform_rejects() {
        let p1 = Platform::new();
        let p2 = Platform::new();
        let r = sample_report(&p1);
        assert!(!p2.verify_report(&r));
    }

    #[test]
    fn any_field_tamper_detected() {
        let p = Platform::new();
        let r = sample_report(&p);

        let mut t = r.clone();
        t.measurement[0] ^= 1;
        assert!(!p.verify_report(&t));

        let mut t = r.clone();
        t.manifest_hash[31] ^= 1;
        assert!(!p.verify_report(&t));

        let mut t = r.clone();
        t.report_data[0] ^= 1;
        assert!(!p.verify_report(&t));

        let mut t = r.clone();
        t.tee_kind = TeeKind::Tdx;
        assert!(!p.verify_report(&t));
    }

    #[test]
    fn exported_root_rebuilds_a_compatible_platform() {
        let p = Platform::new();
        let worker_side = Platform::from_root(p.export_root());
        // Reports cross process boundaries in both directions.
        assert!(worker_side.verify_report(&sample_report(&p)));
        assert!(p.verify_report(&sample_report(&worker_side)));
        // A foreign root remains foreign.
        assert!(!Platform::new().verify_report(&sample_report(&p)));
    }

    #[test]
    fn cloned_handles_share_the_key() {
        let p = Platform::new();
        let q = p.clone();
        let r = sample_report(&p);
        assert!(q.verify_report(&r));
    }

    #[test]
    #[should_panic(expected = "report data exceeds")]
    fn oversized_report_data_panics() {
        let p = Platform::new();
        p.sign_report(TeeKind::Sgx, [0u8; 32], [0u8; 32], &[0u8; 65]);
    }

    #[test]
    fn report_serde_round_trip() {
        let p = Platform::new();
        let r = sample_report(&p);
        let bytes = mvtee_codec::to_bytes(&r).unwrap();
        let back: AttestationReport = mvtee_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, r);
        assert!(p.verify_report(&back));
    }
}
