use std::fmt;

/// Errors produced by the simulated TEE substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TeeError {
    /// An attestation report failed verification.
    AttestationFailed(String),
    /// A syscall was denied by the active manifest.
    SyscallDenied {
        /// The denied syscall name.
        syscall: String,
        /// Current stage description.
        stage: String,
    },
    /// A file access violated the manifest (untrusted, hash mismatch, or
    /// not in the encrypted set).
    FileAccessDenied {
        /// Path.
        path: String,
        /// Reason.
        reason: String,
    },
    /// Second-stage manifest installation was attempted more than once or
    /// from the wrong stage.
    ManifestInstallDenied(String),
    /// Key manipulation attempted in the main-variant stage.
    KeyInstallDenied(String),
    /// Decryption or integrity verification failed.
    Crypto(mvtee_crypto::CryptoError),
    /// The requested file does not exist.
    FileNotFound {
        /// Path.
        path: String,
    },
    /// Replay detected (stale nonce or repeated message).
    ReplayDetected(String),
    /// A serialization round-trip failed.
    Codec(String),
}

impl fmt::Display for TeeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TeeError::AttestationFailed(why) => write!(f, "attestation failed: {why}"),
            TeeError::SyscallDenied { syscall, stage } => {
                write!(f, "syscall {syscall} denied in stage {stage}")
            }
            TeeError::FileAccessDenied { path, reason } => {
                write!(f, "file access to {path} denied: {reason}")
            }
            TeeError::ManifestInstallDenied(why) => {
                write!(f, "second-stage manifest install denied: {why}")
            }
            TeeError::KeyInstallDenied(why) => write!(f, "key install denied: {why}"),
            TeeError::Crypto(e) => write!(f, "crypto failure: {e}"),
            TeeError::FileNotFound { path } => write!(f, "file not found: {path}"),
            TeeError::ReplayDetected(why) => write!(f, "replay detected: {why}"),
            TeeError::Codec(why) => write!(f, "codec failure: {why}"),
        }
    }
}

impl std::error::Error for TeeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TeeError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mvtee_crypto::CryptoError> for TeeError {
    fn from(e: mvtee_crypto::CryptoError) -> Self {
        TeeError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs: Vec<TeeError> = vec![
            TeeError::AttestationFailed("bad mac".into()),
            TeeError::SyscallDenied { syscall: "exec".into(), stage: "main".into() },
            TeeError::FileAccessDenied { path: "/x".into(), reason: "hash".into() },
            TeeError::ManifestInstallDenied("twice".into()),
            TeeError::KeyInstallDenied("stage".into()),
            TeeError::Crypto(mvtee_crypto::CryptoError::AuthenticationFailed),
            TeeError::FileNotFound { path: "/y".into() },
            TeeError::ReplayDetected("nonce".into()),
            TeeError::Codec("truncated".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
