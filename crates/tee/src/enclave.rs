//! Enclave identity and report generation.
//!
//! An [`Enclave`] ties together a TEE flavour, a code identity, a booted
//! [`TeeOs`] and the [`Platform`] it runs on. Its *measurement* covers the
//! code identity and the enforced manifest, so "TEE reports that include
//! measurements of the entire software stack" (§6.5) detect malformed
//! manifests or tampered code. Reports carry caller data (nonce ‖ channel
//! transcript hash) for RA-TLS-style channel binding.

use crate::manifest::Manifest;
use crate::platform::{AttestationReport, Platform};
use crate::teeos::TeeOs;
use crate::Result;
use mvtee_crypto::sha256::{sha256, Sha256};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The TEE flavour an enclave runs under (SGX-style process enclave or
/// TDX-style trust domain). TEE-level variant diversification selects
/// different kinds per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TeeKind {
    /// Process-based enclave (Intel SGX analogue).
    Sgx,
    /// VM-based trust domain (Intel TDX analogue).
    Tdx,
}

impl fmt::Display for TeeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TeeKind::Sgx => write!(f, "SGX"),
            TeeKind::Tdx => write!(f, "TDX"),
        }
    }
}

/// The identity of the code loaded into an enclave.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeIdentity {
    /// Component name (e.g. `mvtee-monitor`, `init-variant`).
    pub name: String,
    /// Version string.
    pub version: String,
    /// SHA-256 of the (simulated) binary content.
    pub code_hash: [u8; 32],
}

impl CodeIdentity {
    /// Builds an identity by hashing the component's byte content.
    pub fn from_content(name: impl Into<String>, version: impl Into<String>, content: &[u8]) -> Self {
        CodeIdentity { name: name.into(), version: version.into(), code_hash: sha256(content) }
    }
}

/// A simulated enclave: TEE OS + identity + platform binding.
#[derive(Debug)]
pub struct Enclave {
    kind: TeeKind,
    identity: CodeIdentity,
    os: TeeOs,
    platform: Platform,
}

impl Enclave {
    /// Launches an enclave with a first-stage manifest.
    pub fn launch(
        kind: TeeKind,
        identity: CodeIdentity,
        manifest: Manifest,
        platform: Platform,
    ) -> Self {
        Enclave { kind, identity, os: TeeOs::new(manifest), platform }
    }

    /// The enclave's TEE flavour.
    pub fn kind(&self) -> TeeKind {
        self.kind
    }

    /// The loaded code identity.
    pub fn identity(&self) -> &CodeIdentity {
        &self.identity
    }

    /// Access to the TEE OS (syscalls, encrypted fs, stage machine).
    pub fn os(&mut self) -> &mut TeeOs {
        &mut self.os
    }

    /// Read-only access to the TEE OS.
    pub fn os_ref(&self) -> &TeeOs {
        &self.os
    }

    /// The enclave measurement: `H(kind ‖ code identity ‖ active manifest
    /// hash)`. Changes whenever the manifest or code changes.
    pub fn measurement(&self) -> [u8; 32] {
        compute_measurement(self.kind, &self.identity, &self.os.manifest_hash())
    }

    /// Produces a hardware-signed report binding `report_data`.
    pub fn report(&self, report_data: &[u8]) -> AttestationReport {
        self.platform.sign_report(
            self.kind,
            self.measurement(),
            self.os.manifest_hash(),
            report_data,
        )
    }

    /// Convenience: a report binding a nonce and a channel transcript (the
    /// RA-TLS pattern). `report_data = H(nonce) ‖ transcript_hash`.
    pub fn report_for_channel(&self, nonce: &[u8], transcript_hash: &[u8; 32]) -> AttestationReport {
        let mut data = Vec::with_capacity(64);
        data.extend_from_slice(&sha256(nonce));
        data.extend_from_slice(transcript_hash);
        self.report(&data)
    }

    /// Verifies a peer report against this enclave's platform, an expected
    /// measurement and the expected binding data.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TeeError::AttestationFailed`] describing the first
    /// mismatch.
    pub fn verify_peer(
        &self,
        report: &AttestationReport,
        expected_measurement: Option<[u8; 32]>,
        expected_data: &[u8],
    ) -> Result<()> {
        verify_report(&self.platform, report, expected_measurement, expected_data)
    }
}

/// Computes the measurement an enclave of this kind/identity/manifest
/// would have — used by verifiers (the monitor) to derive *expected*
/// measurements from deployment artifacts without launching anything.
pub fn compute_measurement(
    kind: TeeKind,
    identity: &CodeIdentity,
    manifest_hash: &[u8; 32],
) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(&[match kind {
        TeeKind::Sgx => 1u8,
        TeeKind::Tdx => 2u8,
    }]);
    // Length-prefix the variable-length fields: without this,
    // ("ab", "c") and ("a", "bc") would measure identically.
    h.update(&(identity.name.len() as u64).to_le_bytes());
    h.update(identity.name.as_bytes());
    h.update(&(identity.version.len() as u64).to_le_bytes());
    h.update(identity.version.as_bytes());
    h.update(&identity.code_hash);
    h.update(manifest_hash);
    h.finalize()
}

/// Standalone report verification (used by the model owner / monitor,
/// which hold a platform handle rather than an enclave).
///
/// # Errors
///
/// Returns [`crate::TeeError::AttestationFailed`] describing the first
/// mismatch: bad MAC, unexpected measurement, or binding-data mismatch.
pub fn verify_report(
    platform: &Platform,
    report: &AttestationReport,
    expected_measurement: Option<[u8; 32]>,
    expected_data: &[u8],
) -> Result<()> {
    if !platform.verify_report(report) {
        return Err(crate::TeeError::AttestationFailed("invalid platform mac".into()));
    }
    if let Some(expected) = expected_measurement {
        if report.measurement != expected {
            return Err(crate::TeeError::AttestationFailed(format!(
                "unexpected measurement {}",
                mvtee_crypto::sha256::hex(&report.measurement)
            )));
        }
    }
    if report.report_data != expected_data {
        return Err(crate::TeeError::AttestationFailed("report data mismatch".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;

    fn enclave(platform: &Platform) -> Enclave {
        Enclave::launch(
            TeeKind::Sgx,
            CodeIdentity::from_content("init-variant", "1.0", b"init code"),
            Manifest::init_variant("init"),
            platform.clone(),
        )
    }

    #[test]
    fn measurement_covers_manifest() {
        let p = Platform::new();
        let mut e = enclave(&p);
        let m1 = e.measurement();
        e.os().install_second_stage(Manifest::main_variant("m")).unwrap();
        // Not yet active: measurement unchanged.
        assert_eq!(e.measurement(), m1);
        e.os().exec().unwrap();
        assert_ne!(e.measurement(), m1, "stage transition must change the measurement");
    }

    #[test]
    fn measurement_covers_code() {
        let p = Platform::new();
        let a = enclave(&p);
        let b = Enclave::launch(
            TeeKind::Sgx,
            CodeIdentity::from_content("init-variant", "1.0", b"EVIL code"),
            Manifest::init_variant("init"),
            p.clone(),
        );
        assert_ne!(a.measurement(), b.measurement());
    }

    #[test]
    fn measurement_field_boundaries_are_unambiguous() {
        let p = Platform::new();
        let a = Enclave::launch(
            TeeKind::Sgx,
            CodeIdentity { name: "ab".into(), version: "c".into(), code_hash: [0; 32] },
            Manifest::new("m"),
            p.clone(),
        );
        let b = Enclave::launch(
            TeeKind::Sgx,
            CodeIdentity { name: "a".into(), version: "bc".into(), code_hash: [0; 32] },
            Manifest::new("m"),
            p.clone(),
        );
        assert_ne!(a.measurement(), b.measurement());
    }

    #[test]
    fn measurement_covers_tee_kind() {
        let p = Platform::new();
        let id = CodeIdentity::from_content("v", "1", b"c");
        let sgx = Enclave::launch(TeeKind::Sgx, id.clone(), Manifest::new("m"), p.clone());
        let tdx = Enclave::launch(TeeKind::Tdx, id, Manifest::new("m"), p.clone());
        assert_ne!(sgx.measurement(), tdx.measurement());
    }

    #[test]
    fn report_round_trip_with_binding() {
        let p = Platform::new();
        let e = enclave(&p);
        let transcript = [7u8; 32];
        let report = e.report_for_channel(b"nonce-123", &transcript);
        let mut expected = Vec::new();
        expected.extend_from_slice(&sha256(b"nonce-123"));
        expected.extend_from_slice(&transcript);
        verify_report(&p, &report, Some(e.measurement()), &expected).unwrap();
        // Wrong nonce: rejected.
        let mut wrong = Vec::new();
        wrong.extend_from_slice(&sha256(b"nonce-999"));
        wrong.extend_from_slice(&transcript);
        assert!(verify_report(&p, &report, Some(e.measurement()), &wrong).is_err());
        // Wrong measurement: rejected.
        assert!(verify_report(&p, &report, Some([0u8; 32]), &expected).is_err());
    }

    #[test]
    fn cross_platform_reports_rejected() {
        let p1 = Platform::new();
        let p2 = Platform::new();
        let e = enclave(&p1);
        let r = e.report(b"data");
        assert!(verify_report(&p2, &r, None, b"data").is_err());
        verify_report(&p1, &r, None, b"data").unwrap();
    }

    #[test]
    fn enclaves_verify_each_other() {
        let p = Platform::new();
        let monitor = Enclave::launch(
            TeeKind::Sgx,
            CodeIdentity::from_content("monitor", "1.0", b"monitor code"),
            Manifest::main_variant("monitor"),
            p.clone(),
        );
        let variant = enclave(&p);
        let r = variant.report(b"hello");
        monitor.verify_peer(&r, Some(variant.measurement()), b"hello").unwrap();
    }
}
