//! Gramine-style manifests.
//!
//! A manifest regulates everything an application inside the TEE may do:
//! which files it can open (with reference hashes for trusted files),
//! which files are transparently encrypted, which syscalls it may issue,
//! and which environment variables / command-line arguments pass through
//! from the untrusted host. MVTEE's two-stage bootstrap installs a second,
//! stricter manifest before `exec()`ing into the main variant (§5.2).

use mvtee_crypto::sha256::sha256;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The syscall surface the simulated TEE OS mediates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Syscall {
    /// Open a file.
    Open,
    /// Read from a file descriptor.
    Read,
    /// Write to a file descriptor.
    Write,
    /// Replace the process image (stage transition trigger).
    Exec,
    /// Open an outbound network connection.
    Connect,
    /// Accept an inbound connection.
    Accept,
    /// Map memory.
    Mmap,
    /// Change page protections.
    Mprotect,
    /// Device control.
    Ioctl,
    /// Spawn a thread.
    Clone,
    /// Query time.
    ClockGetTime,
    /// Exit the process.
    Exit,
}

impl fmt::Display for Syscall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Syscall::Open => "open",
            Syscall::Read => "read",
            Syscall::Write => "write",
            Syscall::Exec => "exec",
            Syscall::Connect => "connect",
            Syscall::Accept => "accept",
            Syscall::Mmap => "mmap",
            Syscall::Mprotect => "mprotect",
            Syscall::Ioctl => "ioctl",
            Syscall::Clone => "clone",
            Syscall::ClockGetTime => "clock_gettime",
            Syscall::Exit => "exit",
        };
        write!(f, "{name}")
    }
}

/// A TEE OS manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Manifest {
    /// Manifest name (diagnostics only; not part of enforcement).
    pub name: String,
    /// Trusted files: path → SHA-256 reference hash, verified on open.
    pub trusted_files: BTreeMap<String, [u8; 32]>,
    /// Paths served through the encrypted filesystem.
    pub encrypted_files: BTreeSet<String>,
    /// Allowed syscalls (everything else is denied).
    pub allowed_syscalls: BTreeSet<Syscall>,
    /// Environment variables allowed through from the untrusted host.
    pub allowed_env: BTreeSet<String>,
    /// Whether untrusted command-line arguments pass through (MVTEE
    /// variant manifests default to `false`).
    pub allow_host_args: bool,
    /// Whether this manifest permits installing a second-stage manifest
    /// (only init-variant manifests set this).
    pub two_stage: bool,
}

impl Manifest {
    /// Creates an empty (deny-everything) manifest.
    pub fn new(name: impl Into<String>) -> Self {
        Manifest { name: name.into(), ..Default::default() }
    }

    /// The canonical manifest for an MVTEE *init-variant*: permissive
    /// enough to attest, fetch and decrypt the variant bundle, and exec.
    pub fn init_variant(name: impl Into<String>) -> Self {
        let mut m = Manifest::new(name);
        m.two_stage = true;
        m.allowed_syscalls.extend([
            Syscall::Open,
            Syscall::Read,
            Syscall::Write,
            Syscall::Connect,
            Syscall::Mmap,
            Syscall::Exec,
            Syscall::ClockGetTime,
            Syscall::Exit,
        ]);
        m
    }

    /// The canonical second-stage manifest for a main variant: no exec, no
    /// ioctl, no further manifest installs; network plus encrypted-file
    /// reads only.
    pub fn main_variant(name: impl Into<String>) -> Self {
        let mut m = Manifest::new(name);
        m.allowed_syscalls.extend([
            Syscall::Read,
            Syscall::Write,
            Syscall::Connect,
            Syscall::Accept,
            Syscall::Mmap,
            Syscall::Clone,
            Syscall::ClockGetTime,
            Syscall::Exit,
        ]);
        m
    }

    /// Registers a trusted file by content.
    pub fn trust_file(&mut self, path: impl Into<String>, content: &[u8]) {
        self.trusted_files.insert(path.into(), sha256(content));
    }

    /// Registers an encrypted file path.
    pub fn encrypt_file(&mut self, path: impl Into<String>) {
        self.encrypted_files.insert(path.into());
    }

    /// Is `syscall` allowed?
    pub fn allows(&self, syscall: Syscall) -> bool {
        self.allowed_syscalls.contains(&syscall)
    }

    /// The manifest's measurement-relevant hash (bound into attestation
    /// evidence so manifest tampering is detectable, property (vii) of the
    /// paper's §6.5).
    pub fn hash(&self) -> [u8; 32] {
        let bytes = mvtee_codec::to_bytes(self).expect("manifest serialisation cannot fail");
        sha256(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_manifest_denies_everything() {
        let m = Manifest::new("deny");
        assert!(!m.allows(Syscall::Open));
        assert!(!m.allows(Syscall::Exec));
        assert!(!m.allow_host_args);
    }

    #[test]
    fn init_manifest_allows_exec_but_main_does_not() {
        let init = Manifest::init_variant("init");
        let main = Manifest::main_variant("main");
        assert!(init.allows(Syscall::Exec));
        assert!(init.two_stage);
        assert!(!main.allows(Syscall::Exec));
        assert!(!main.allows(Syscall::Ioctl));
        assert!(!main.two_stage);
        assert!(main.allows(Syscall::Accept));
    }

    #[test]
    fn hash_changes_with_content() {
        let mut a = Manifest::init_variant("m");
        let h1 = a.hash();
        a.trust_file("/bin/init", b"code");
        let h2 = a.hash();
        assert_ne!(h1, h2);
        a.allowed_syscalls.remove(&Syscall::Exec);
        assert_ne!(a.hash(), h2);
    }

    #[test]
    fn hash_is_deterministic() {
        let mk = || {
            let mut m = Manifest::main_variant("x");
            m.trust_file("/a", b"1");
            m.encrypt_file("/enc/model");
            m
        };
        assert_eq!(mk().hash(), mk().hash());
    }

    #[test]
    fn trusted_file_hash_recorded() {
        let mut m = Manifest::new("m");
        m.trust_file("/f", b"hello");
        assert_eq!(m.trusted_files["/f"], mvtee_crypto::sha256::sha256(b"hello"));
    }

    #[test]
    fn syscall_display() {
        assert_eq!(Syscall::Exec.to_string(), "exec");
        assert_eq!(Syscall::ClockGetTime.to_string(), "clock_gettime");
    }
}
