#![forbid(unsafe_code)]
//! A minimal, non-self-describing binary serde format for MVTEE.
//!
//! The approved dependency set includes `serde` but no serialisation
//! format crate, so variant bundles (and the TEE substrate's sealed
//! payloads) use this compact little-endian encoding. It supports exactly
//! the data model the workspace's types need — integers, floats, strings,
//! bytes, options, sequences, maps, tuples, structs and enums — and is
//! intentionally *not* self-describing (`deserialize_any` is unsupported),
//! like `bincode`/`postcard`.

use serde::de::{DeserializeOwned, DeserializeSeed, EnumAccess, MapAccess, SeqAccess, VariantAccess, Visitor};
use serde::ser::{
    SerializeMap, SerializeSeq, SerializeStruct, SerializeStructVariant, SerializeTuple,
    SerializeTupleStruct, SerializeTupleVariant,
};
use serde::Serialize;
use std::fmt;

/// Serialisation/deserialisation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

impl serde::ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

impl serde::de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

/// Encodes a value.
///
/// # Errors
///
/// Returns an error only for unserialisable values (never for the types in
/// this workspace).
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut ser = Encoder { out: Vec::new() };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Decodes a value.
///
/// # Errors
///
/// Returns an error for truncated or malformed input.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut de = Decoder { input: bytes };
    let value = T::deserialize(&mut de)?;
    if !de.input.is_empty() {
        return Err(CodecError(format!("{} trailing bytes", de.input.len())));
    }
    Ok(value)
}

struct Encoder {
    out: Vec<u8>,
}

impl Encoder {
    fn put_len(&mut self, len: usize) {
        self.out.extend_from_slice(&(len as u64).to_le_bytes());
    }
}

impl serde::Serializer for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.out.push(v as u8);
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), CodecError> {
        self.out.push(v as u8);
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), CodecError> {
        self.out.push(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.serialize_u32(v as u32)
    }
    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), CodecError> {
        self.out.push(0);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.out.push(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or_else(|| CodecError("sequences must have a known length".into()))?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        serde::Serializer::serialize_u32(&mut *self, variant_index)?;
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or_else(|| CodecError("maps must have a known length".into()))?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        serde::Serializer::serialize_u32(&mut *self, variant_index)?;
        Ok(self)
    }
}

impl SerializeSeq for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl SerializeTuple for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl SerializeTupleStruct for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl SerializeTupleVariant for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl SerializeMap for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
        key.serialize(&mut **self)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl SerializeStruct for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl SerializeStructVariant for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

struct Decoder<'de> {
    input: &'de [u8],
}

impl<'de> Decoder<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        if self.input.len() < n {
            return Err(CodecError(format!(
                "unexpected end of input: need {n}, have {}",
                self.input.len()
            )));
        }
        let (head, rest) = self.input.split_at(n);
        self.input = rest;
        Ok(head)
    }

    fn take_len(&mut self) -> Result<usize, CodecError> {
        let bytes = self.take(8)?;
        let len = u64::from_le_bytes(bytes.try_into().expect("sliced")) as usize;
        if len > self.input.len() {
            return Err(CodecError(format!("declared length {len} exceeds remaining input")));
        }
        Ok(len)
    }

    fn take_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("sliced")))
    }
}

macro_rules! de_num {
    ($method:ident, $visit:ident, $ty:ty, $n:expr) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
            let bytes = self.take($n)?;
            visitor.$visit(<$ty>::from_le_bytes(bytes.try_into().expect("sliced")))
        }
    };
}

impl<'de> serde::Deserializer<'de> for &mut Decoder<'de> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError("minicodec is not self-describing".into()))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let b = self.take(1)?[0];
        visitor.visit_bool(b != 0)
    }

    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_i8(self.take(1)?[0] as i8)
    }
    de_num!(deserialize_i16, visit_i16, i16, 2);
    de_num!(deserialize_i32, visit_i32, i32, 4);
    de_num!(deserialize_i64, visit_i64, i64, 8);
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_u8(self.take(1)?[0])
    }
    de_num!(deserialize_u16, visit_u16, u16, 2);
    de_num!(deserialize_u32, visit_u32, u32, 4);
    de_num!(deserialize_u64, visit_u64, u64, 8);
    de_num!(deserialize_f32, visit_f32, f32, 4);
    de_num!(deserialize_f64, visit_f64, f64, 8);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let code = self.take_u32()?;
        visitor.visit_char(char::from_u32(code).ok_or_else(|| CodecError("bad char".into()))?)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        visitor.visit_borrowed_str(
            std::str::from_utf8(bytes).map_err(|e| CodecError(e.to_string()))?,
        )
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(CodecError(format!("bad option tag {b}"))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        visitor.visit_seq(CountedAccess { de: self, remaining: len })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(CountedAccess { de: self, remaining: len })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        visitor.visit_map(CountedAccess { de: self, remaining: len })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_enum(EnumDecoder { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError("identifiers are not encoded".into()))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError("cannot skip unknown fields in a non-self-describing format".into()))
    }
}

struct CountedAccess<'a, 'de> {
    de: &'a mut Decoder<'de>,
    remaining: usize,
}

impl<'a, 'de> SeqAccess<'de> for CountedAccess<'a, 'de> {
    type Error = CodecError;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'a, 'de> MapAccess<'de> for CountedAccess<'a, 'de> {
    type Error = CodecError;

    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumDecoder<'a, 'de> {
    de: &'a mut Decoder<'de>,
}

impl<'a, 'de> EnumAccess<'de> for EnumDecoder<'a, 'de> {
    type Error = CodecError;
    type Variant = Self;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), CodecError> {
        let index = self.de.take_u32()?;
        let value = seed.deserialize(serde::de::value::U32Deserializer::new(index))?;
        Ok((value, self))
    }
}

impl<'a, 'de> VariantAccess<'de> for EnumDecoder<'a, 'de> {
    type Error = CodecError;

    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value, CodecError> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, CodecError> {
        serde::Deserializer::deserialize_tuple(self.de, len, visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        serde::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;
    use std::collections::BTreeMap;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Unit,
        Newtype(u32),
        Tuple(u8, String),
        Struct { a: bool, b: Vec<f32> },
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Nested {
        name: String,
        values: Vec<f64>,
        map: BTreeMap<String, i64>,
        opt: Option<Box<Nested>>,
        kind: Kind,
        pair: (u16, char),
    }

    fn round_trip<T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = to_bytes(v).unwrap();
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(&42u8);
        round_trip(&-7i64);
        round_trip(&1.5f32);
        round_trip(&f64::MIN);
        round_trip(&true);
        round_trip(&'λ');
        round_trip(&"hello".to_string());
        round_trip(&Option::<u32>::None);
        round_trip(&Some(9u32));
        round_trip(&vec![1u32, 2, 3]);
    }

    #[test]
    fn enums_round_trip() {
        round_trip(&Kind::Unit);
        round_trip(&Kind::Newtype(7));
        round_trip(&Kind::Tuple(1, "x".into()));
        round_trip(&Kind::Struct { a: true, b: vec![1.0, -2.0] });
    }

    #[test]
    fn nested_struct_round_trips() {
        let mut map = BTreeMap::new();
        map.insert("k1".to_string(), -5i64);
        map.insert("k2".to_string(), 900i64);
        let v = Nested {
            name: "deep".into(),
            values: vec![0.1, 0.2],
            map,
            opt: Some(Box::new(Nested {
                name: "inner".into(),
                values: vec![],
                map: BTreeMap::new(),
                opt: None,
                kind: Kind::Unit,
                pair: (3, 'z'),
            })),
            kind: Kind::Struct { a: false, b: vec![] },
            pair: (65535, '@'),
        };
        round_trip(&v);
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = to_bytes(&vec![1u64, 2, 3]).unwrap();
        for cut in 0..bytes.len() {
            assert!(from_bytes::<Vec<u64>>(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&7u32).unwrap();
        bytes.push(0);
        assert!(from_bytes::<u32>(&bytes).is_err());
    }

    #[test]
    fn absurd_length_rejected() {
        // A sequence claiming u64::MAX elements must not allocate.
        let bytes = u64::MAX.to_le_bytes().to_vec();
        assert!(from_bytes::<Vec<u8>>(&bytes).is_err());
    }

    #[test]
    fn bad_enum_tag_rejected() {
        let bytes = 99u32.to_le_bytes().to_vec();
        assert!(from_bytes::<Kind>(&bytes).is_err());
    }

}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use serde::Deserialize;
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum ArbEnum {
        A,
        B(u64),
        C(String, Vec<f32>),
        D { flag: bool, data: Vec<u8> },
    }

    fn arb_enum() -> impl Strategy<Value = ArbEnum> {
        prop_oneof![
            Just(ArbEnum::A),
            any::<u64>().prop_map(ArbEnum::B),
            (".*", proptest::collection::vec(any::<f32>(), 0..8))
                .prop_map(|(s, v)| ArbEnum::C(s, v)),
            (any::<bool>(), proptest::collection::vec(any::<u8>(), 0..32))
                .prop_map(|(flag, data)| ArbEnum::D { flag, data }),
        ]
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct ArbStruct {
        id: u32,
        name: String,
        values: Vec<i64>,
        nested: Option<Box<ArbStruct>>,
        tags: BTreeMap<String, u16>,
        kind: ArbEnum,
    }

    fn arb_struct(depth: u32) -> BoxedStrategy<ArbStruct> {
        let leaf = (
            any::<u32>(),
            "[a-z]{0,12}",
            proptest::collection::vec(any::<i64>(), 0..6),
            proptest::collection::btree_map("[a-z]{1,4}", any::<u16>(), 0..4),
            arb_enum(),
        )
            .prop_map(|(id, name, values, tags, kind)| ArbStruct {
                id,
                name,
                values,
                nested: None,
                tags,
                kind,
            })
            .boxed();
        if depth == 0 {
            leaf
        } else {
            (leaf.clone(), proptest::option::of(arb_struct(depth - 1)))
                .prop_map(|(mut s, nested)| {
                    s.nested = nested.map(Box::new);
                    s
                })
                .boxed()
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn arbitrary_structs_round_trip(v in arb_struct(2)) {
            let bytes = to_bytes(&v).expect("encodes");
            let back: ArbStruct = from_bytes(&bytes).expect("decodes");
            // NaN-safe comparison: re-encode and compare bytes.
            let bytes2 = to_bytes(&back).expect("re-encodes");
            prop_assert_eq!(bytes, bytes2);
        }

        #[test]
        fn truncations_never_panic(v in arb_struct(1), cut in any::<proptest::sample::Index>()) {
            let bytes = to_bytes(&v).expect("encodes");
            let cut = cut.index(bytes.len().max(1));
            // Must return an error or a value, never panic/abort.
            let _ = from_bytes::<ArbStruct>(&bytes[..cut]);
        }

        #[test]
        fn bit_flips_never_panic(v in arb_struct(1), at in any::<proptest::sample::Index>(), bit in 0u8..8) {
            let mut bytes = to_bytes(&v).expect("encodes");
            if bytes.is_empty() { return Ok(()); }
            let i = at.index(bytes.len());
            bytes[i] ^= 1 << bit;
            let _ = from_bytes::<ArbStruct>(&bytes);
        }
    }
}
