use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Memory layout of a rank-4 activation tensor.
///
/// The ORT-like executor computes in `NCHW` (as ONNX Runtime does by
/// default), while the TVM-like executor prefers `NHWC` internally. Layout
/// conversion is one of the benign sources of numeric variation between
/// diversified variants that MVTEE's thresholded consistency checks must
/// tolerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Layout {
    /// Batch, channel, height, width — the canonical layout of the IR.
    #[default]
    Nchw,
    /// Batch, height, width, channel.
    Nhwc,
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layout::Nchw => write!(f, "NCHW"),
            Layout::Nhwc => write!(f, "NHWC"),
        }
    }
}

/// The dimensions of a [`crate::Tensor`].
///
/// A `Shape` is an ordered list of axis sizes. Scalars are represented by an
/// empty dimension list (rank 0, one element).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from axis sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Creates a scalar (rank 0) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The axis sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dims; 1 for scalars).
    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of a given axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidAxis`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.0
            .get(axis)
            .copied()
            .ok_or(TensorError::InvalidAxis { axis, rank: self.rank() })
    }

    /// Row-major (C-order) strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Computes the flat row-major offset of a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index rank does not match or any coordinate is
    /// out of bounds.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(TensorError::RankMismatch { expected: self.rank(), actual: index.len() });
        }
        let strides = self.strides();
        let mut off = 0usize;
        for (axis, (&i, (&d, &s))) in
            index.iter().zip(self.0.iter().zip(strides.iter())).enumerate()
        {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds { axis, index: i, size: d });
            }
            off += i * s;
        }
        Ok(off)
    }

    /// Returns the shape obtained by broadcasting `self` with `other`
    /// following NumPy / ONNX broadcasting rules.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BroadcastError`] if the shapes are
    /// incompatible.
    pub fn broadcast(&self, other: &Shape) -> Result<Shape> {
        let a = &self.0;
        let b = &other.0;
        let rank = a.len().max(b.len());
        let mut out = vec![0usize; rank];
        for i in 0..rank {
            let da = if i < rank - a.len() { 1 } else { a[i - (rank - a.len())] };
            let db = if i < rank - b.len() { 1 } else { b[i - (rank - b.len())] };
            out[i] = if da == db || db == 1 {
                da
            } else if da == 1 {
                db
            } else {
                return Err(TensorError::BroadcastError {
                    left: a.clone(),
                    right: b.clone(),
                });
            };
        }
        Ok(Shape(out))
    }

    /// `true` when this is a rank-4 shape (the activation shape of CNNs).
    pub fn is_rank4(&self) -> bool {
        self.rank() == 4
    }

    /// Interprets a rank-4 shape as `(n, c, h, w)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-4 shapes.
    pub fn as_nchw(&self) -> Result<(usize, usize, usize, usize)> {
        if self.rank() != 4 {
            return Err(TensorError::RankMismatch { expected: 4, actual: self.rank() });
        }
        Ok((self.0[0], self.0[1], self.0[2], self.0[3]))
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.num_elements(), 24);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.num_elements(), 1);
        assert_eq!(s.offset(&[]).unwrap(), 0);
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let off = s.offset(&[i, j, k]).unwrap();
                    assert!(off < 24);
                    assert!(seen.insert(off), "offsets must be unique");
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn offset_out_of_bounds() {
        let s = Shape::new(&[2, 2]);
        assert!(matches!(
            s.offset(&[2, 0]),
            Err(TensorError::IndexOutOfBounds { axis: 0, index: 2, size: 2 })
        ));
        assert!(matches!(s.offset(&[0]), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn broadcast_rules() {
        let a = Shape::new(&[2, 1, 4]);
        let b = Shape::new(&[3, 1]);
        assert_eq!(a.broadcast(&b).unwrap(), Shape::new(&[2, 3, 4]));
        let c = Shape::new(&[5]);
        assert!(a.broadcast(&c).is_err());
        // Identical shapes broadcast to themselves.
        assert_eq!(a.broadcast(&a).unwrap(), a);
    }

    #[test]
    fn nchw_view() {
        let s = Shape::new(&[1, 3, 224, 224]);
        assert_eq!(s.as_nchw().unwrap(), (1, 3, 224, 224));
        assert!(Shape::new(&[2, 2]).as_nchw().is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Shape::new(&[1, 3, 8, 8]).to_string(), "[1x3x8x8]");
        assert_eq!(Layout::Nchw.to_string(), "NCHW");
        assert_eq!(Layout::Nhwc.to_string(), "NHWC");
    }
}
