//! Checkpoint consistency metrics (paper §5.2).
//!
//! The MVTEE monitor differentiates attacks from benign divergences with
//! "criteria-based consistency checks with thresholds and different
//! metrics". This module implements the four metrics named in the paper —
//! cosine similarity, mean squared error, maximum absolute difference and a
//! NumPy-style `assert_allclose` — plus a combined [`ConsistencyReport`]
//! the monitor records at every checkpoint.

use crate::Tensor;
use serde::{Deserialize, Serialize};

/// Cosine similarity of two flattened tensors.
///
/// Returns `1.0` when both tensors are all-zero (they are identical), `0.0`
/// when exactly one is all-zero, and `NaN` never. Shapes are *not* checked;
/// callers compare like with like (the monitor validates shapes first).
pub fn cosine_similarity(a: &Tensor, b: &Tensor) -> f32 {
    let (mut dot, mut na, mut nb) = (0f64, 0f64, 0f64);
    for (&x, &y) in a.data().iter().zip(b.data().iter()) {
        dot += x as f64 * y as f64;
        na += x as f64 * x as f64;
        nb += y as f64 * y as f64;
    }
    if na == 0.0 && nb == 0.0 {
        return 1.0;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot / (na.sqrt() * nb.sqrt())) as f32
}

/// Mean squared error between two flattened tensors.
pub fn mse(a: &Tensor, b: &Tensor) -> f32 {
    let n = a.len().min(b.len());
    if n == 0 {
        return 0.0;
    }
    let sum: f64 = a
        .data()
        .iter()
        .zip(b.data().iter())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum();
    (sum / n as f64) as f32
}

/// Maximum absolute element-wise difference.
pub fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
    a.data()
        .iter()
        .zip(b.data().iter())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// NumPy-style `assert_allclose`: every element pair must satisfy
/// `|a - b| <= atol + rtol * |b|`. NaNs never compare close.
pub fn allclose(a: &Tensor, b: &Tensor, rtol: f32, atol: f32) -> bool {
    if a.shape() != b.shape() {
        return false;
    }
    a.data()
        .iter()
        .zip(b.data().iter())
        .all(|(&x, &y)| !x.is_nan() && !y.is_nan() && (x - y).abs() <= atol + rtol * y.abs())
}

/// The consistency metric the monitor applies at a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Metric {
    /// Cosine similarity with a minimum-similarity threshold in `[0, 1]`.
    Cosine {
        /// Minimum acceptable similarity.
        min_similarity: f32,
    },
    /// Mean squared error with a maximum threshold.
    Mse {
        /// Maximum acceptable MSE.
        max_mse: f32,
    },
    /// Maximum absolute difference with a threshold.
    MaxAbsDiff {
        /// Maximum acceptable absolute difference.
        max_diff: f32,
    },
    /// `np.testing.assert_allclose`-style elementwise tolerance check.
    AllClose {
        /// Relative tolerance.
        rtol: f32,
        /// Absolute tolerance.
        atol: f32,
    },
}

impl Metric {
    /// Zero-tolerance metric for identical replicas: the deterministic
    /// runtime makes replicated variants value-exact, so any nonzero
    /// difference — however small — is a divergence. An `AllClose`-style
    /// tolerance here would let a sub-tolerance weight corruption sail
    /// through a unanimous checkpoint.
    pub fn exact() -> Self {
        Metric::MaxAbsDiff { max_diff: 0.0 }
    }

    /// Tight-tolerance metric for near-identical variants (bit-equality
    /// scale tolerances). Prefer [`Metric::exact`] for true replicas.
    pub fn strict() -> Self {
        Metric::AllClose { rtol: 1e-5, atol: 1e-6 }
    }

    /// Default metric for heterogeneous variants (ORT-like vs TVM-like)
    /// whose different accumulation orders produce small benign divergence.
    pub fn relaxed() -> Self {
        Metric::AllClose { rtol: 1e-3, atol: 1e-4 }
    }

    /// Evaluates the metric for a pair of variant outputs.
    ///
    /// Returns `true` when the pair is *consistent* (no divergence).
    /// Mismatched shapes are always inconsistent.
    pub fn check(&self, a: &Tensor, b: &Tensor) -> bool {
        if a.shape() != b.shape() {
            return false;
        }
        if a.data().iter().any(|v| v.is_nan()) || b.data().iter().any(|v| v.is_nan()) {
            return false;
        }
        match *self {
            Metric::Cosine { min_similarity } => cosine_similarity(a, b) >= min_similarity,
            Metric::Mse { max_mse } => mse(a, b) <= max_mse,
            Metric::MaxAbsDiff { max_diff } => max_abs_diff(a, b) <= max_diff,
            Metric::AllClose { rtol, atol } => allclose(a, b, rtol, atol),
        }
    }
}

/// All four paper metrics evaluated for one variant-output pair; recorded by
/// the monitor for auditing and threshold tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsistencyReport {
    /// Cosine similarity of the pair.
    pub cosine: f32,
    /// Mean squared error of the pair.
    pub mse: f32,
    /// Maximum absolute difference of the pair.
    pub max_abs_diff: f32,
    /// Whether the shapes matched at all.
    pub shapes_match: bool,
}

impl ConsistencyReport {
    /// Computes the full report for a pair of outputs.
    pub fn compute(a: &Tensor, b: &Tensor) -> Self {
        let shapes_match = a.shape() == b.shape();
        if !shapes_match {
            return ConsistencyReport {
                cosine: 0.0,
                mse: f32::INFINITY,
                max_abs_diff: f32::INFINITY,
                shapes_match,
            };
        }
        ConsistencyReport {
            cosine: cosine_similarity(a, b),
            mse: mse(a, b),
            max_abs_diff: max_abs_diff(a, b),
            shapes_match,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()]).unwrap()
    }

    #[test]
    fn cosine_identical_is_one() {
        let a = t(&[1.0, 2.0, 3.0]);
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        let a = t(&[1.0, 0.0]);
        let b = t(&[0.0, 1.0]);
        assert!(cosine_similarity(&a, &b).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vectors() {
        let z = t(&[0.0, 0.0]);
        let a = t(&[1.0, 1.0]);
        assert_eq!(cosine_similarity(&z, &z), 1.0);
        assert_eq!(cosine_similarity(&z, &a), 0.0);
    }

    #[test]
    fn mse_basic() {
        let a = t(&[0.0, 0.0]);
        let b = t(&[3.0, 4.0]);
        assert!((mse(&a, &b) - 12.5).abs() < 1e-6);
        assert_eq!(mse(&a, &a), 0.0);
    }

    #[test]
    fn max_abs_diff_basic() {
        let a = t(&[1.0, -5.0, 2.0]);
        let b = t(&[1.5, -2.0, 2.0]);
        assert_eq!(max_abs_diff(&a, &b), 3.0);
    }

    #[test]
    fn allclose_tolerances() {
        let a = t(&[100.0, 1.0]);
        let b = t(&[100.01, 1.0]);
        assert!(allclose(&a, &b, 1e-3, 0.0));
        assert!(!allclose(&a, &b, 1e-6, 0.0));
        assert!(allclose(&a, &b, 0.0, 0.02));
    }

    #[test]
    fn allclose_shape_and_nan() {
        let a = t(&[1.0]);
        let b = Tensor::zeros(&[1, 1]);
        assert!(!allclose(&a, &b, 1.0, 1.0));
        let n = t(&[f32::NAN]);
        assert!(!allclose(&n, &n, 1.0, 1.0));
    }

    #[test]
    fn metric_check_dispatch() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[1.0, 2.0001]);
        assert!(Metric::Cosine { min_similarity: 0.999 }.check(&a, &b));
        assert!(Metric::Mse { max_mse: 1e-6 }.check(&a, &b));
        assert!(Metric::MaxAbsDiff { max_diff: 1e-3 }.check(&a, &b));
        assert!(Metric::relaxed().check(&a, &b));
        assert!(!Metric::strict().check(&a, &t(&[1.0, 3.0])));
    }

    #[test]
    fn exact_metric_rejects_any_difference() {
        let a = t(&[1.0, 2.0]);
        assert!(Metric::exact().check(&a, &a));
        // A one-ulp perturbation — far below the strict atol, and the
        // smallest representable difference at 2.0 — must still register.
        // (An additive literal like `2.0 + 1e-7` is below half an ulp and
        // rounds back to exactly 2.0, making the check vacuous.)
        let b = t(&[1.0, f32::from_bits(2.0f32.to_bits() + 1)]);
        assert!(Metric::strict().check(&a, &b));
        assert!(!Metric::exact().check(&a, &b));
    }

    #[test]
    fn metric_rejects_nan_outputs() {
        let a = t(&[f32::NAN, 1.0]);
        // A NaN output (e.g. an FPE-class CVE) must always register as
        // divergence, whatever the metric.
        assert!(!Metric::Cosine { min_similarity: 0.0 }.check(&a, &a));
        assert!(!Metric::Mse { max_mse: f32::INFINITY }.check(&a, &a));
    }

    #[test]
    fn report_mismatched_shapes() {
        let a = t(&[1.0, 2.0]);
        let b = Tensor::zeros(&[3]);
        let r = ConsistencyReport::compute(&a, &b);
        assert!(!r.shapes_match);
        assert_eq!(r.mse, f32::INFINITY);
    }

    #[test]
    fn report_identical() {
        let a = t(&[1.0, 2.0]);
        let r = ConsistencyReport::compute(&a, &a);
        assert!(r.shapes_match);
        assert_eq!(r.max_abs_diff, 0.0);
        assert!((r.cosine - 1.0).abs() < 1e-6);
    }
}
