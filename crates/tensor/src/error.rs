use std::fmt;

/// Errors produced by tensor construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The element count implied by the shape does not match the data length.
    ShapeDataMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// Two shapes that were required to match do not.
    ShapeMismatch {
        /// Left-hand shape (as dims).
        left: Vec<usize>,
        /// Right-hand shape (as dims).
        right: Vec<usize>,
    },
    /// The tensor does not have the required rank.
    RankMismatch {
        /// Required rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// An index was out of bounds for the given dimension.
    IndexOutOfBounds {
        /// Offending axis.
        axis: usize,
        /// Offending index.
        index: usize,
        /// Size of the axis.
        size: usize,
    },
    /// The requested axis does not exist.
    InvalidAxis {
        /// Offending axis.
        axis: usize,
        /// Rank of the tensor.
        rank: usize,
    },
    /// A reshape target has a different element count than the source.
    ReshapeMismatch {
        /// Source element count.
        from: usize,
        /// Target element count.
        to: usize,
    },
    /// Broadcasting two shapes failed.
    BroadcastError {
        /// Left-hand shape (as dims).
        left: Vec<usize>,
        /// Right-hand shape (as dims).
        right: Vec<usize>,
    },
    /// A dimension of size zero was encountered where it is not allowed.
    EmptyTensor,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, actual } => write!(
                f,
                "shape implies {expected} elements but {actual} were supplied"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "rank mismatch: expected {expected}, got {actual}")
            }
            TensorError::IndexOutOfBounds { axis, index, size } => {
                write!(f, "index {index} out of bounds for axis {axis} of size {size}")
            }
            TensorError::InvalidAxis { axis, rank } => {
                write!(f, "axis {axis} is invalid for tensor of rank {rank}")
            }
            TensorError::ReshapeMismatch { from, to } => {
                write!(f, "cannot reshape {from} elements into {to} elements")
            }
            TensorError::BroadcastError { left, right } => {
                write!(f, "cannot broadcast shapes {left:?} and {right:?}")
            }
            TensorError::EmptyTensor => write!(f, "tensor must not be empty"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            TensorError::ShapeDataMismatch { expected: 4, actual: 3 },
            TensorError::ShapeMismatch { left: vec![1], right: vec![2] },
            TensorError::RankMismatch { expected: 4, actual: 2 },
            TensorError::IndexOutOfBounds { axis: 0, index: 5, size: 3 },
            TensorError::InvalidAxis { axis: 7, rank: 2 },
            TensorError::ReshapeMismatch { from: 6, to: 8 },
            TensorError::BroadcastError { left: vec![2], right: vec![3] },
            TensorError::EmptyTensor,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
