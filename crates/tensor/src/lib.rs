//! N-dimensional `f32` tensors for the MVTEE reproduction.
//!
//! This crate is the numeric foundation of the whole stack: the graph IR
//! (`mvtee-graph`), the diversified executors (`mvtee-runtime`) and the
//! MVX monitor's checkpoint consistency checks all operate on [`Tensor`]
//! values.
//!
//! The design follows the needs of the paper rather than those of a general
//! array library:
//!
//! * dense, contiguous `f32` storage (the paper evaluates FP32 inference),
//! * explicit [`Shape`] / stride handling with [`Layout`] conversion between
//!   `NCHW` and `NHWC` (the ORT-like and TVM-like executors disagree on
//!   layout, which is one source of benign variant divergence),
//! * the checkpoint **consistency metrics** of §5.2 of the paper
//!   (cosine similarity, MSE, max absolute difference, `allclose`) in
//!   [`metrics`].
//!
//! # Example
//!
//! ```
//! use mvtee_tensor::{Tensor, metrics};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
//! let b = Tensor::from_vec(vec![1.0, 2.0, 3.0 + 1e-7], &[3]).unwrap();
//! assert!(metrics::allclose(&a, &b, 1e-5, 1e-6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod metrics;
mod shape;
mod tensor;

pub use error::TensorError;
pub use shape::{Layout, Shape};
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
