use crate::{Layout, Result, Shape, TensorError};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major, `f32` n-dimensional array.
///
/// `Tensor` is the value type flowing along graph edges, across checkpoint
/// boundaries and through the monitor's consistency checks. Storage is always
/// contiguous in C order for the canonical `NCHW` interpretation; executors
/// that prefer other layouts convert explicitly via [`Tensor::to_nhwc`] /
/// [`Tensor::from_nhwc`].
#[derive(Clone, PartialEq, Serialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

/// Deserialization enforces the same invariant as [`Tensor::from_vec`]
/// (`shape.num_elements() == data.len()`): a peer with valid channel keys
/// must still not be able to smuggle a malformed tensor into the monitor's
/// kernels or metrics.
impl<'de> Deserialize<'de> for Tensor {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> std::result::Result<Self, D::Error> {
        #[derive(Deserialize)]
        struct Raw {
            shape: Shape,
            data: Vec<f32>,
        }
        let raw = Raw::deserialize(deserializer)?;
        if raw.shape.num_elements() != raw.data.len() {
            return Err(serde::de::Error::custom(format!(
                "tensor shape {} implies {} elements but {} were supplied",
                raw.shape,
                raw.shape.num_elements(),
                raw.data.len()
            )));
        }
        Ok(Tensor { shape: raw.shape, data: raw.data })
    }
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when `data.len()` differs
    /// from the element count implied by `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.num_elements() != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.num_elements(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        Tensor { shape, data: vec![0.0; n] }
    }

    /// Creates a one-filled tensor.
    pub fn ones(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        Tensor { shape, data: vec![1.0; n] }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        Tensor { shape, data: vec![value; n] }
    }

    /// Creates a scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: Shape::scalar(), data: vec![value] }
    }

    /// Creates a tensor with elements drawn uniformly from `[-scale, scale]`.
    ///
    /// Used by the model zoo to initialise weights deterministically from a
    /// seeded RNG so that every variant of a model shares identical
    /// parameters.
    pub fn random_uniform<R: Rng>(rng: &mut R, dims: &[usize], scale: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        let data = (0..n).map(|_| rng.gen_range(-scale..=scale)).collect();
        Tensor { shape, data }
    }

    /// Kaiming-style initialisation for a conv/linear weight: uniform in
    /// `±sqrt(2 / fan_in)`.
    pub fn kaiming<R: Rng>(rng: &mut R, dims: &[usize], fan_in: usize) -> Self {
        let scale = (2.0 / fan_in.max(1) as f32).sqrt();
        Self::random_uniform(rng, dims, scale)
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor's dims as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Rank of the tensor.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access by multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates index validation errors from [`Shape::offset`].
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Element assignment by multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates index validation errors from [`Shape::offset`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a reshaped copy sharing the same element order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let target = Shape::new(dims);
        if target.num_elements() != self.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.len(),
                to: target.num_elements(),
            });
        }
        Ok(Tensor { shape: target, data: self.data.clone() })
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn zip_with<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        let data =
            self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect();
        Ok(Tensor { shape: self.shape.clone(), data })
    }

    /// Broadcasting element-wise combination following ONNX semantics.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BroadcastError`] if the shapes are not
    /// broadcast-compatible.
    pub fn broadcast_with<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Result<Tensor> {
        if self.shape == other.shape {
            return self.zip_with(other, f);
        }
        let out_shape = self.shape.broadcast(other.shape())?;
        let rank = out_shape.rank();
        let out_dims = out_shape.dims().to_vec();
        let pad = |s: &Shape| -> Vec<usize> {
            let mut v = vec![1usize; rank - s.rank()];
            v.extend_from_slice(s.dims());
            v
        };
        let a_dims = pad(&self.shape);
        let b_dims = pad(other.shape());
        let a_strides = Shape::new(&a_dims).strides();
        let b_strides = Shape::new(&b_dims).strides();
        let n = out_shape.num_elements();
        let mut data = Vec::with_capacity(n);
        let mut idx = vec![0usize; rank];
        for _ in 0..n {
            let mut ao = 0usize;
            let mut bo = 0usize;
            for d in 0..rank {
                let ai = if a_dims[d] == 1 { 0 } else { idx[d] };
                let bi = if b_dims[d] == 1 { 0 } else { idx[d] };
                ao += ai * a_strides[d];
                bo += bi * b_strides[d];
            }
            data.push(f(self.data[ao], other.data[bo]));
            // increment the multi-index
            for d in (0..rank).rev() {
                idx[d] += 1;
                if idx[d] < out_dims[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        Ok(Tensor { shape: out_shape, data })
    }

    /// Sum of all elements (sequential left-to-right accumulation).
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum element. Returns `f32::NEG_INFINITY` for empty tensors.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element. Returns `f32::INFINITY` for empty tensors.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element in flattened order (`None` when empty).
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// L2 norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt() as f32
    }

    /// Converts a rank-4 `NCHW` tensor to `NHWC` element order.
    ///
    /// The returned tensor's logical shape stays `[n, h, w, c]` (the
    /// physical dims of the new order).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-4 tensors.
    pub fn to_nhwc(&self) -> Result<Tensor> {
        let (n, c, h, w) = self.shape.as_nchw()?;
        let mut out = vec![0.0f32; self.len()];
        for in_ in 0..n {
            for ic in 0..c {
                for ih in 0..h {
                    for iw in 0..w {
                        let src = ((in_ * c + ic) * h + ih) * w + iw;
                        let dst = ((in_ * h + ih) * w + iw) * c + ic;
                        out[dst] = self.data[src];
                    }
                }
            }
        }
        Tensor::from_vec(out, &[n, h, w, c])
    }

    /// Converts a rank-4 `NHWC` tensor (shape `[n, h, w, c]`) back to
    /// canonical `NCHW`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-4 tensors.
    pub fn from_nhwc(&self) -> Result<Tensor> {
        if self.rank() != 4 {
            return Err(TensorError::RankMismatch { expected: 4, actual: self.rank() });
        }
        let d = self.dims();
        let (n, h, w, c) = (d[0], d[1], d[2], d[3]);
        let mut out = vec![0.0f32; self.len()];
        for in_ in 0..n {
            for ih in 0..h {
                for iw in 0..w {
                    for ic in 0..c {
                        let src = ((in_ * h + ih) * w + iw) * c + ic;
                        let dst = ((in_ * c + ic) * h + ih) * w + iw;
                        out[dst] = self.data[src];
                    }
                }
            }
        }
        Tensor::from_vec(out, &[n, c, h, w])
    }

    /// Returns the layout-converted copy of a rank-4 tensor, or a clone if
    /// `layout` is already the canonical `NCHW`.
    ///
    /// # Errors
    ///
    /// Propagates rank errors from the conversion.
    pub fn to_layout(&self, layout: Layout) -> Result<Tensor> {
        match layout {
            Layout::Nchw => Ok(self.clone()),
            Layout::Nhwc => self.to_nhwc(),
        }
    }

    /// Serializes the tensor into a compact little-endian byte buffer
    /// (`rank:u32, dims:u64..., data:f32le...`) — a standalone convenience
    /// for storage/interop; the checkpoint transport serializes whole
    /// protocol messages through `mvtee-codec` instead.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 8 * self.rank() + 4 * self.len());
        out.extend_from_slice(&(self.rank() as u32).to_le_bytes());
        for &d in self.dims() {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for &v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserializes a tensor produced by [`Tensor::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] on truncated or malformed
    /// input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Tensor> {
        let fail = || TensorError::ShapeDataMismatch { expected: 0, actual: bytes.len() };
        if bytes.len() < 4 {
            return Err(fail());
        }
        let rank = u32::from_le_bytes(bytes[0..4].try_into().expect("sliced")) as usize;
        let mut off = 4usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            if off + 8 > bytes.len() {
                return Err(fail());
            }
            dims.push(u64::from_le_bytes(bytes[off..off + 8].try_into().expect("sliced")) as usize);
            off += 8;
        }
        let n: usize = dims.iter().product();
        if bytes.len() != off + 4 * n {
            return Err(TensorError::ShapeDataMismatch { expected: off + 4 * n, actual: bytes.len() });
        }
        let mut data = Vec::with_capacity(n);
        for i in 0..n {
            let s = off + 4 * i;
            data.push(f32::from_le_bytes(bytes[s..s + 4].try_into().expect("sliced")));
        }
        Tensor::from_vec(data, &dims)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} {{ ", self.shape)?;
        const PREVIEW: usize = 8;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.len() > PREVIEW {
            write!(f, ", … ({} total)", self.len())?;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_checks_len() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(matches!(
            Tensor::from_vec(vec![1.0; 5], &[2, 3]),
            Err(TensorError::ShapeDataMismatch { expected: 6, actual: 5 })
        ));
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 7.5).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 7.5);
        assert_eq!(t.get(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn reshape_preserves_order() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap();
        let relu = a.map(|x| x.max(0.0));
        assert_eq!(relu.data(), &[1.0, 0.0]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        let sum = a.zip_with(&b, |x, y| x + y).unwrap();
        assert_eq!(sum.data(), &[4.0, 2.0]);
        assert!(a.zip_with(&Tensor::zeros(&[3]), |x, _| x).is_err());
    }

    #[test]
    fn broadcast_add_bias() {
        // [1,2,2,2] + [2] broadcast over last axis? ONNX-style requires
        // trailing alignment: [1,2,2,2] + [1,2,1,1]-style channel bias.
        let x = Tensor::ones(&[1, 2, 2, 2]);
        let bias = Tensor::from_vec(vec![10.0, 20.0], &[2, 1, 1]).unwrap();
        let y = x.broadcast_with(&bias, |a, b| a + b).unwrap();
        assert_eq!(y.dims(), &[1, 2, 2, 2]);
        assert_eq!(y.get(&[0, 0, 1, 1]).unwrap(), 11.0);
        assert_eq!(y.get(&[0, 1, 0, 0]).unwrap(), 21.0);
    }

    #[test]
    fn broadcast_scalar() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let s = Tensor::scalar(2.0);
        let y = x.broadcast_with(&s, |a, b| a * b).unwrap();
        assert_eq!(y.data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, 5.0, -3.0], &[3]).unwrap();
        assert_eq!(t.sum(), 3.0);
        assert_eq!(t.max(), 5.0);
        assert_eq!(t.min(), -3.0);
        assert_eq!(t.argmax(), Some(1));
        assert!(Tensor::from_vec(vec![], &[0]).unwrap().argmax().is_none());
    }

    #[test]
    fn nhwc_round_trip() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::random_uniform(&mut rng, &[2, 3, 4, 5], 1.0);
        let nhwc = t.to_nhwc().unwrap();
        assert_eq!(nhwc.dims(), &[2, 4, 5, 3]);
        let back = nhwc.from_nhwc().unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn nhwc_rejects_wrong_rank() {
        assert!(Tensor::zeros(&[2, 2]).to_nhwc().is_err());
        assert!(Tensor::zeros(&[2, 2]).from_nhwc().is_err());
    }

    #[test]
    fn bytes_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::random_uniform(&mut rng, &[3, 7], 2.0);
        let bytes = t.to_bytes();
        let back = Tensor::from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn bytes_rejects_truncation() {
        let t = Tensor::ones(&[4]);
        let mut bytes = t.to_bytes();
        bytes.pop();
        assert!(Tensor::from_bytes(&bytes).is_err());
        assert!(Tensor::from_bytes(&[1, 2]).is_err());
    }

    #[test]
    fn scalar_round_trips_through_bytes() {
        let t = Tensor::scalar(3.5);
        assert_eq!(Tensor::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn deterministic_random_init() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let ta = Tensor::random_uniform(&mut a, &[10], 1.0);
        let tb = Tensor::random_uniform(&mut b, &[10], 1.0);
        assert_eq!(ta, tb);
    }

    #[test]
    fn debug_is_nonempty() {
        let t = Tensor::zeros(&[100]);
        let s = format!("{t:?}");
        assert!(s.contains("total"));
        assert!(!format!("{:?}", Tensor::scalar(0.0)).is_empty());
    }
}
