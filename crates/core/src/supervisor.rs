//! Worker heartbeat supervision: turning a *silent* stall into a
//! diagnosable, recoverable fault.
//!
//! Out-of-process workers keepalive-ping their heartbeat lane
//! ([`mvtee_crypto::mux::LANE_HEARTBEAT`]). The monitor watches each
//! lane with a receive deadline: a healthy worker resets the miss
//! counter every ping; a wedged or partitioned one accumulates
//! [`HeartbeatMissed`] events until the policy's miss budget is
//! exhausted, at which point the supervisor records [`WorkerStalled`]
//! and **closes the worker's connection**. That escalation is the whole
//! trick — the data-plane receive thread observes the loss exactly as
//! it would a crash, quarantines the variant and hands it to the
//! recovery manager, so stalls heal through the same audited path as
//! deaths instead of hanging the panel forever.
//!
//! [`HeartbeatMissed`]: crate::events::MonitorEvent::HeartbeatMissed
//! [`WorkerStalled`]: crate::events::MonitorEvent::WorkerStalled

use crate::config::SupervisionPolicy;
use crate::events::{EventLog, MonitorEvent};
use mvtee_crypto::channel::FrameTransport;
use mvtee_crypto::mux::MuxLane;
use mvtee_crypto::CryptoError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

struct Inner {
    stop: AtomicBool,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

/// Owns one watcher thread per supervised worker connection.
///
/// Cloneable (`Arc`-shared) so the deployment and the recovery manager
/// register watchers on the same monitor: respawned and reconnected
/// workers get supervised exactly like first-launch ones.
#[derive(Clone)]
pub struct HeartbeatMonitor {
    inner: Arc<Inner>,
}

impl Default for HeartbeatMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl HeartbeatMonitor {
    /// Creates a monitor with no watchers.
    pub fn new() -> Self {
        HeartbeatMonitor {
            inner: Arc::new(Inner {
                stop: AtomicBool::new(false),
                threads: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Spawns a watcher over one worker's heartbeat lane.
    ///
    /// The watcher exits on its own when the connection dies (the data
    /// plane owns connection-loss handling), when it escalates a stall,
    /// or when [`HeartbeatMonitor::shutdown`] is called.
    pub fn watch(
        &self,
        partition: usize,
        variant: usize,
        lane: MuxLane,
        policy: &SupervisionPolicy,
        events: EventLog,
    ) {
        let interval = policy.heartbeat_interval();
        let miss_budget = policy.miss_budget.max(1);
        let inner = Arc::clone(&self.inner);
        let thread = std::thread::Builder::new()
            .name(format!("hb-watch-p{partition}v{variant}"))
            .spawn(move || {
                let mut missed = 0u32;
                loop {
                    if inner.stop.load(Ordering::Acquire) {
                        break;
                    }
                    match lane.recv_frame_deadline(interval) {
                        Ok(_) => missed = 0,
                        Err(CryptoError::RecvTimeout) => {
                            missed += 1;
                            events.record(MonitorEvent::HeartbeatMissed {
                                partition,
                                variant,
                                missed,
                            });
                            if missed >= miss_budget {
                                events.record(MonitorEvent::WorkerStalled {
                                    partition,
                                    variant,
                                    missed,
                                });
                                // Escalate: closing the shared mux
                                // transport makes the data-plane rx
                                // thread see a disconnect, quarantine
                                // the variant and request recovery —
                                // the stall heals like a crash.
                                lane.close();
                                break;
                            }
                        }
                        // Connection closed or violated: the data plane
                        // already observes and handles that.
                        Err(_) => break,
                    }
                }
            })
            .expect("thread spawn cannot fail");
        self.inner.threads.lock().expect("heartbeat monitor poisoned").push(thread);
    }

    /// Stops every watcher and joins its thread. Each watcher notices
    /// within one heartbeat interval (its receive deadline).
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::Release);
        let threads: Vec<_> =
            self.inner.threads.lock().expect("heartbeat monitor poisoned").drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtee_crypto::channel::memory_pair;
    use mvtee_crypto::mux::{self, LANE_HEARTBEAT};
    use mvtee_crypto::tcp::{bind_loopback, TcpTransport};
    use std::time::Duration;

    fn policy(interval_ms: u64, budget: u32) -> SupervisionPolicy {
        SupervisionPolicy {
            heartbeat_interval_ms: interval_ms,
            miss_budget: budget,
            ..SupervisionPolicy::enabled()
        }
    }

    #[test]
    fn silent_peer_escalates_to_stall_and_closes_the_connection() {
        let (listener, port) = bind_loopback().unwrap();
        let dial = std::thread::spawn(move || {
            TcpTransport::connect(&format!("127.0.0.1:{port}")).unwrap()
        });
        let (stream, _) = listener.accept().unwrap();
        let monitor_side = TcpTransport::new(stream).unwrap();
        let worker_side = dial.join().unwrap();

        let mut lanes = mux::split(monitor_side, &[LANE_HEARTBEAT]);
        let hb = lanes.pop().unwrap();
        let events = EventLog::new();
        let monitor = HeartbeatMonitor::new();
        monitor.watch(0, 1, hb, &policy(10, 3), events.clone());
        // The worker never pings: three missed windows escalate.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while events.stalls().is_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(events.stalls(), vec![(0, 1)]);
        // Escalation closed the connection: the worker side observes it.
        assert!(worker_side.recv_frame().is_err());
        monitor.shutdown();
    }

    #[test]
    fn pinging_peer_never_trips_the_budget() {
        let (monitor_side, worker_side) = memory_pair();
        let mut lanes = mux::split(monitor_side, &[LANE_HEARTBEAT]);
        let hb = lanes.pop().unwrap();
        let worker_lanes = mux::split(worker_side, &[LANE_HEARTBEAT]);
        let keepalive = mux::spawn_keepalive(
            worker_lanes.into_iter().next().unwrap(),
            Duration::from_millis(5),
        );
        let events = EventLog::new();
        let monitor = HeartbeatMonitor::new();
        monitor.watch(2, 0, hb, &policy(50, 2), events.clone());
        std::thread::sleep(Duration::from_millis(200));
        assert!(events.stalls().is_empty(), "live worker must not be escalated");
        keepalive.stop();
        monitor.shutdown();
    }
}
