//! Cross-process checkpoint voting (§4.3).
//!
//! At a slow-path checkpoint the monitor evaluates the variant outputs
//! pairwise under the partition's consistency metric and applies the
//! voting policy. "Different voting mechanisms imply varying levels of
//! agreement"; MVTEE defaults to unanimous consent.

use crate::config::VotingPolicy;
use mvtee_tensor::metrics::Metric;
use mvtee_tensor::Tensor;

/// One variant's contribution to a checkpoint.
#[derive(Debug, Clone)]
pub enum VariantOutput {
    /// The variant produced output tensors.
    Ok(Vec<Tensor>),
    /// The variant crashed (or its channel died).
    Crashed(String),
}

/// The verdict for one checkpoint evaluation.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Consensus reached; the selected (replicable) output.
    Agree {
        /// The output the monitor replicates to the next stage.
        selected: Vec<Tensor>,
        /// Indices of variants that agreed.
        agreeing: Vec<usize>,
    },
    /// Divergence detected.
    Diverged {
        /// The largest consistent cluster's output, if any (used by the
        /// continue-with-majority response).
        majority: Option<Vec<Tensor>>,
        /// Variant indices outside the majority cluster (dissenters and
        /// crashed variants).
        dissenting: Vec<usize>,
        /// Human-readable detail.
        detail: String,
    },
}

impl Verdict {
    /// `true` for [`Verdict::Agree`].
    pub fn is_agreement(&self) -> bool {
        matches!(self, Verdict::Agree { .. })
    }
}

/// Groups outputs into consistency clusters under `metric` (transitive
/// closure of pairwise consistency — fine for the tight thresholds MVTEE
/// uses) and applies `policy`.
///
/// Crashed variants never join a cluster. With a single healthy output the
/// verdict is agreement iff it is the only variant and it did not crash
/// (the degenerate slow-path-with-one-variant case still checks for NaNs
/// via the metric's self-check).
pub fn evaluate(outputs: &[VariantOutput], metric: Metric, policy: VotingPolicy) -> Verdict {
    let n = outputs.len();
    let healthy: Vec<(usize, &Vec<Tensor>)> = outputs
        .iter()
        .enumerate()
        .filter_map(|(i, o)| match o {
            VariantOutput::Ok(t) => Some((i, t)),
            VariantOutput::Crashed(_) => None,
        })
        .collect();
    let crashed: Vec<usize> = outputs
        .iter()
        .enumerate()
        .filter(|(_, o)| matches!(o, VariantOutput::Crashed(_)))
        .map(|(i, _)| i)
        .collect();

    if healthy.is_empty() {
        return Verdict::Diverged {
            majority: None,
            dissenting: (0..n).collect(),
            detail: "all variants crashed".into(),
        };
    }

    // Self-validity: a single output must pass the metric against itself
    // (rejects NaN outputs even without a peer).
    let self_valid = |t: &Vec<Tensor>| t.iter().all(|x| metric.check(x, x));

    // Union-find style clustering on pairwise consistency.
    let k = healthy.len();
    let mut cluster: Vec<usize> = (0..k).collect();
    for i in 0..k {
        for j in (i + 1)..k {
            let consistent = healthy[i].1.len() == healthy[j].1.len()
                && healthy[i]
                    .1
                    .iter()
                    .zip(healthy[j].1.iter())
                    .all(|(a, b)| metric.check(a, b));
            if consistent {
                let (ci, cj) = (cluster[i], cluster[j]);
                if ci != cj {
                    for c in cluster.iter_mut() {
                        if *c == cj {
                            *c = ci;
                        }
                    }
                }
            }
        }
    }
    // Invalid singletons (NaN) drop out of their own cluster.
    let mut best_cluster: Option<(usize, Vec<usize>)> = None; // (root, members)
    let mut roots: Vec<usize> = cluster.clone();
    roots.sort_unstable();
    roots.dedup();
    for root in roots {
        let members: Vec<usize> = (0..k)
            .filter(|&i| cluster[i] == root && self_valid(healthy[i].1))
            .collect();
        if members.is_empty() {
            continue;
        }
        let better = best_cluster.as_ref().map(|(_, m)| members.len() > m.len()).unwrap_or(true);
        if better {
            best_cluster = Some((root, members));
        }
    }
    let Some((_, members)) = best_cluster else {
        return Verdict::Diverged {
            majority: None,
            dissenting: (0..n).collect(),
            detail: "no self-consistent output".into(),
        };
    };
    let agreeing: Vec<usize> = members.iter().map(|&i| healthy[i].0).collect();
    let selected = healthy[members[0]].1.clone();

    let consensus = match policy {
        VotingPolicy::Unanimous => agreeing.len() == n,
        VotingPolicy::Majority => agreeing.len() * 2 > n,
    };
    if consensus && crashed.is_empty() && agreeing.len() == healthy.len() {
        Verdict::Agree { selected, agreeing }
    } else if consensus {
        // Majority policy with minority dissent / crashes.
        let dissenting: Vec<usize> =
            (0..n).filter(|i| !agreeing.contains(i)).collect();
        match policy {
            VotingPolicy::Majority => Verdict::Diverged {
                majority: Some(selected),
                dissenting: dissenting.clone(),
                detail: format!("majority of {} with {} dissenting", agreeing.len(), dissenting.len()),
            },
            VotingPolicy::Unanimous => Verdict::Diverged {
                majority: Some(selected),
                dissenting: dissenting.clone(),
                detail: format!("unanimity broken by {} variants", dissenting.len()),
            },
        }
    } else {
        let dissenting: Vec<usize> = (0..n).filter(|i| !agreeing.contains(i)).collect();
        Verdict::Diverged {
            majority: if agreeing.len() * 2 > n { Some(selected) } else { None },
            dissenting,
            detail: format!(
                "largest consistent cluster has {} of {} variants",
                agreeing.len(),
                n
            ),
        }
    }
}

/// Quorum check used by asynchronous cross-validation: do the `arrived`
/// outputs already contain a cluster that is a strict majority of the
/// *full* panel of `total` variants? Returns the cluster's output if so.
pub fn has_quorum(arrived: &[VariantOutput], total: usize, metric: Metric) -> Option<Vec<Tensor>> {
    match evaluate(arrived, metric, VotingPolicy::Majority) {
        Verdict::Agree { selected, agreeing } => {
            (agreeing.len() * 2 > total).then_some(selected)
        }
        Verdict::Diverged { majority: Some(selected), dissenting, .. } => {
            let cluster = arrived.len() - dissenting.len();
            (cluster * 2 > total).then_some(selected)
        }
        Verdict::Diverged { .. } => None,
    }
}

#[cfg(test)]
mod quorum_tests {
    use super::*;

    fn ok(v: &[f32]) -> VariantOutput {
        VariantOutput::Ok(vec![Tensor::from_vec(v.to_vec(), &[v.len()]).unwrap()])
    }

    #[test]
    fn quorum_reached_with_two_of_three() {
        let arrived = [ok(&[1.0]), ok(&[1.0])];
        assert!(has_quorum(&arrived, 3, Metric::strict()).is_some());
    }

    #[test]
    fn no_quorum_with_one_of_three() {
        let arrived = [ok(&[1.0])];
        assert!(has_quorum(&arrived, 3, Metric::strict()).is_none());
    }

    #[test]
    fn no_quorum_on_split() {
        let arrived = [ok(&[1.0]), ok(&[9.0])];
        assert!(has_quorum(&arrived, 3, Metric::strict()).is_none());
    }

    #[test]
    fn quorum_despite_one_dissenter_in_five() {
        let arrived = [ok(&[1.0]), ok(&[1.0]), ok(&[1.0]), ok(&[7.0])];
        let q = has_quorum(&arrived, 5, Metric::strict());
        assert!(q.is_some());
        assert_eq!(q.unwrap()[0].data(), &[1.0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Vec<Tensor> {
        vec![Tensor::from_vec(v.to_vec(), &[v.len()]).unwrap()]
    }

    fn ok(v: &[f32]) -> VariantOutput {
        VariantOutput::Ok(t(v))
    }

    #[test]
    fn unanimous_agreement() {
        let outs = [ok(&[1.0, 2.0]), ok(&[1.0, 2.0]), ok(&[1.0, 2.0])];
        let v = evaluate(&outs, Metric::strict(), VotingPolicy::Unanimous);
        match v {
            Verdict::Agree { agreeing, .. } => assert_eq!(agreeing, vec![0, 1, 2]),
            other => panic!("expected agreement, got {other:?}"),
        }
    }

    #[test]
    fn single_dissenter_detected() {
        let outs = [ok(&[1.0, 2.0]), ok(&[1.0, 2.0]), ok(&[9.0, 9.0])];
        let v = evaluate(&outs, Metric::strict(), VotingPolicy::Unanimous);
        match v {
            Verdict::Diverged { majority, dissenting, .. } => {
                assert_eq!(dissenting, vec![2]);
                assert!(majority.is_some());
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn majority_policy_tolerates_minority() {
        let outs = [ok(&[1.0]), ok(&[1.0]), ok(&[5.0])];
        // Majority policy still reports the dissent (as Diverged with a
        // majority output) so the monitor can respond.
        let v = evaluate(&outs, Metric::strict(), VotingPolicy::Majority);
        match v {
            Verdict::Diverged { majority: Some(sel), dissenting, .. } => {
                assert_eq!(sel[0].data(), &[1.0]);
                assert_eq!(dissenting, vec![2]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn crash_breaks_unanimity() {
        let outs = [ok(&[1.0]), VariantOutput::Crashed("sigsegv".into()), ok(&[1.0])];
        let v = evaluate(&outs, Metric::strict(), VotingPolicy::Unanimous);
        match v {
            Verdict::Diverged { majority: Some(_), dissenting, .. } => {
                assert_eq!(dissenting, vec![1]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn all_crashed() {
        let outs = [
            VariantOutput::Crashed("a".into()),
            VariantOutput::Crashed("b".into()),
        ];
        let v = evaluate(&outs, Metric::strict(), VotingPolicy::Majority);
        match v {
            Verdict::Diverged { majority, dissenting, .. } => {
                assert!(majority.is_none());
                assert_eq!(dissenting, vec![0, 1]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nan_output_is_not_self_valid() {
        let outs = [ok(&[f32::NAN])];
        let v = evaluate(&outs, Metric::strict(), VotingPolicy::Unanimous);
        assert!(!v.is_agreement());
    }

    #[test]
    fn single_healthy_variant_agrees() {
        let outs = [ok(&[3.0, 4.0])];
        let v = evaluate(&outs, Metric::strict(), VotingPolicy::Unanimous);
        assert!(v.is_agreement());
    }

    #[test]
    fn relaxed_metric_tolerates_benign_noise() {
        let outs = [ok(&[1.0, 2.0]), ok(&[1.00001, 2.00002])];
        let strict = evaluate(&outs, Metric::strict(), VotingPolicy::Unanimous);
        let relaxed = evaluate(&outs, Metric::relaxed(), VotingPolicy::Unanimous);
        assert!(!strict.is_agreement() || strict.is_agreement()); // metric-dependent
        assert!(relaxed.is_agreement());
    }

    #[test]
    fn two_way_split_has_no_majority() {
        let outs = [ok(&[1.0]), ok(&[5.0])];
        let v = evaluate(&outs, Metric::strict(), VotingPolicy::Majority);
        match v {
            Verdict::Diverged { majority, .. } => assert!(majority.is_none()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shape_mismatch_is_divergence() {
        let a = VariantOutput::Ok(vec![Tensor::ones(&[2])]);
        let b = VariantOutput::Ok(vec![Tensor::ones(&[3])]);
        let v = evaluate(&[a, b], Metric::relaxed(), VotingPolicy::Unanimous);
        assert!(!v.is_agreement());
    }

    #[test]
    fn arity_mismatch_is_divergence() {
        let a = VariantOutput::Ok(vec![Tensor::ones(&[2]), Tensor::ones(&[2])]);
        let b = VariantOutput::Ok(vec![Tensor::ones(&[2])]);
        let v = evaluate(&[a, b], Metric::relaxed(), VotingPolicy::Unanimous);
        assert!(!v.is_agreement());
    }
}
