//! The variant TEE host: one thread per (partition, variant) simulating a
//! separate enclave process.
//!
//! The host runs the variant side of the two-stage bootstrap (Fig 5/6):
//!
//! 1. launch with only the public *init-variant* (code + first-stage
//!    manifest) — the untrusted orchestrator knows nothing else,
//! 2. answer the monitor's challenge with an attestation report binding
//!    the nonce and the ephemeral DH public keys,
//! 3. receive the sealed key release; install the variant key into the
//!    TEE OS,
//! 4. read and decrypt the sealed variant payload from host storage,
//!    install the one-time second-stage manifest, `exec()`,
//! 5. prepare the inference engine from the decrypted bundle and send
//!    sealed install evidence,
//! 6. serve encrypted checkpoint batches until shutdown or crash.
//!
//! Simulated platform-level attacks (CVE exploits, FrameFlip) are injected
//! here because that is where they live in reality: inside the variant's
//! own software stack, invisible to the monitor except through outputs.

use crate::link::DataLink;
use crate::messages::{
    bootstrap_session_secret, bootstrap_transcript_hash, decode, encode, BootstrapRequest,
    BootstrapResponse, InstallEvidence, KeyRelease, StageRequest, StageResponse,
};
use crate::{MvxError, Result};
use mvtee_crypto::channel::{FrameTransport, Role};
use mvtee_crypto::gcm::AesGcm;
use mvtee_crypto::x25519::EphemeralKeypair;
use mvtee_diversify::VariantBundle;
use mvtee_faults::{Attack, FrameFlip, LivenessFault};
use mvtee_runtime::{Engine, PreparedModel, RuntimeError};
use mvtee_tee::{CodeIdentity, Enclave, Manifest, Platform, Syscall, TeeKind};
use serde::{Deserialize, Serialize};
use std::thread::JoinHandle;

/// The sealed payload the offline tool places (encrypted) on the variant's
/// host storage: the second-stage manifest plus the variant bundle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SealedVariantPayload {
    /// The second-stage manifest the init-variant must install.
    pub manifest: Manifest,
    /// Encoded [`VariantBundle`] bytes.
    pub bundle: Vec<u8>,
}

/// Everything the *untrusted orchestrator* needs to place one variant TEE.
///
/// Note what is absent: the variant spec, the transformed subgraph, the
/// second-stage manifest — all sealed inside `sealed_blob`.
pub struct VariantLaunch {
    /// Partition index (public placement information).
    pub partition: usize,
    /// Variant index within the partition.
    pub variant_index: usize,
    /// TEE flavour to launch.
    pub tee_kind: TeeKind,
    /// Platform handle.
    pub platform: Platform,
    /// Public init-variant code bytes.
    pub init_code: Vec<u8>,
    /// Public first-stage manifest.
    pub init_manifest: Manifest,
    /// Host-storage path of the sealed payload.
    pub bundle_path: String,
    /// The sealed payload `(salt, blob)` as exported by the offline tool.
    pub sealed_blob: ([u8; 16], Vec<u8>),
    /// Whether data-plane traffic is encrypted.
    pub encrypt: bool,
    /// Simulated CVE attack present on this host (instrumentation applies
    /// only if the variant is susceptible).
    pub attack: Option<Attack>,
    /// Simulated platform-wide FrameFlip (corrupts matching BLAS).
    pub frameflip: Option<FrameFlip>,
    /// Simulated liveness fault (stall/hang or lossy response channel) in
    /// this host's scheduling/transport stack. Transient: replacements
    /// provisioned by the recovery manager do not inherit it.
    pub liveness: Option<LivenessFault>,
    /// Bootstrap transport (plaintext; protected by the attested DH
    /// handshake). In-memory for a variant thread, a mux lane of the
    /// worker's TCP connection for a variant process.
    pub bootstrap: Box<dyn FrameTransport>,
    /// Transport for stage requests (monitor → variant).
    pub request: Box<dyn FrameTransport>,
    /// Transport for stage responses (variant → monitor).
    pub response: Box<dyn FrameTransport>,
}

/// What actually runs the variant: a thread in this process or a
/// `mvtee-variantd` worker process.
#[derive(Debug)]
enum HostKind {
    Thread(JoinHandle<()>),
    Process(std::process::Child),
}

/// Handle to a running variant TEE host (thread or OS process).
#[derive(Debug)]
pub struct VariantHandle {
    /// Partition index.
    pub partition: usize,
    /// Variant index.
    pub variant_index: usize,
    host: Option<HostKind>,
}

impl VariantHandle {
    /// Wraps a spawned `mvtee-variantd` worker process.
    pub fn from_process(partition: usize, variant_index: usize, child: std::process::Child) -> Self {
        VariantHandle { partition, variant_index, host: Some(HostKind::Process(child)) }
    }

    /// A handle with no underlying host to own: used when an *existing*
    /// worker process reconnects after a dropped socket — the original
    /// handle (and its `Child`) still belongs to the first placement, so
    /// the resumed placement tracks the variant without double-owning
    /// the process.
    pub fn detached(partition: usize, variant_index: usize) -> Self {
        VariantHandle { partition, variant_index, host: None }
    }

    /// Whether this variant runs as a separate OS process.
    pub fn is_process(&self) -> bool {
        matches!(self.host, Some(HostKind::Process(_)))
    }

    /// The worker process id, when out-of-process.
    pub fn pid(&self) -> Option<u32> {
        match &self.host {
            Some(HostKind::Process(child)) => Some(child.id()),
            _ => None,
        }
    }

    /// Kills an out-of-process variant host and reaps it — the fault
    /// injection a distributed deployment must heal from. Returns `false`
    /// for in-process variants (a thread cannot be killed from outside;
    /// use liveness faults to simulate a wedged thread instead).
    pub fn kill(&mut self) -> bool {
        match self.host.take() {
            Some(HostKind::Process(mut child)) => {
                let _ = child.kill();
                let _ = child.wait();
                true
            }
            other => {
                self.host = other;
                false
            }
        }
    }

    /// Waits for the variant host to exit.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        match self.host.take() {
            Some(HostKind::Thread(j)) => {
                let _ = j.join();
            }
            Some(HostKind::Process(mut child)) => {
                let _ = child.wait();
            }
            None => {}
        }
    }
}

impl Drop for VariantHandle {
    fn drop(&mut self) {
        self.join_inner();
    }
}

/// Spawns the variant TEE thread.
pub fn spawn_variant(launch: VariantLaunch) -> VariantHandle {
    let partition = launch.partition;
    let variant_index = launch.variant_index;
    let join = std::thread::Builder::new()
        .name(format!("variant-p{partition}-v{variant_index}"))
        .spawn(move || {
            // Failures during bootstrap are reported to the monitor when
            // possible; afterwards the thread simply exits (the "process"
            // died).
            if let Err(e) = variant_main(launch) {
                // Best effort: nothing to report to if channels are gone.
                let _ = e;
            }
        })
        .expect("thread spawn cannot fail");
    VariantHandle { partition, variant_index, host: Some(HostKind::Thread(join)) }
}

/// The variant TEE host's main loop: bootstrap, engine preparation, then
/// the data-plane serve loop. Shared verbatim between the in-process
/// thread host ([`spawn_variant`]) and the `mvtee-variantd` worker
/// process, so the two placements are behaviourally indistinguishable to
/// the monitor.
pub(crate) fn variant_main(launch: VariantLaunch) -> Result<()> {
    // Stage 0: enclave launch with the public init-variant.
    let identity = CodeIdentity::from_content("mvtee-init-variant", "1.0", &launch.init_code);
    let mut enclave = Enclave::launch(
        launch.tee_kind,
        identity,
        launch.init_manifest,
        launch.platform.clone(),
    );

    // Bootstrap step ②-⑤: challenge-response attestation with DH binding.
    enclave.os().syscall(Syscall::Connect)?;
    let challenge_bytes = launch
        .bootstrap
        .recv_frame()
        .map_err(|e| MvxError::Transport(e.to_string()))?;
    let BootstrapRequest::Challenge { nonce, monitor_dh_public } =
        decode::<BootstrapRequest>(&challenge_bytes)?
    else {
        return Err(MvxError::BadState("expected challenge".into()));
    };
    let keypair = EphemeralKeypair::generate();
    let shared = keypair.diffie_hellman(&monitor_dh_public);
    let transcript_hash = bootstrap_transcript_hash(&monitor_dh_public, &keypair.public);
    let session_secret = bootstrap_session_secret(&shared, &nonce);

    let report = enclave.report_for_channel(&nonce, &transcript_hash);
    let evidence =
        BootstrapResponse::Evidence { report, variant_dh_public: keypair.public };
    launch
        .bootstrap
        .send_frame(encode(&evidence)?)
        .map_err(|e| MvxError::Transport(e.to_string()))?;

    // Step ⑤ continued: sealed key release.
    let release_bytes = launch
        .bootstrap
        .recv_frame()
        .map_err(|e| MvxError::Transport(e.to_string()))?;
    let BootstrapRequest::SealedKeyRelease { payload } =
        decode::<BootstrapRequest>(&release_bytes)?
    else {
        return Err(MvxError::BadState("expected key release".into()));
    };
    let session_cipher = AesGcm::new_256(&session_secret);
    let release_plain = session_cipher
        .open(&[0u8; 12], &payload, b"key-release")
        .map_err(MvxError::from)?;
    let release: KeyRelease = decode(&release_plain)?;

    // Install the variant key and decrypt the sealed payload.
    enclave.os().install_key(release.variant_key)?;
    enclave
        .os()
        .fs_mut()
        .import(&release.bundle_path, launch.sealed_blob.0, launch.sealed_blob.1);
    let payload_bytes = enclave.os().read_encrypted(&release.bundle_path)?;
    let payload: SealedVariantPayload =
        decode(&payload_bytes).map_err(|e| MvxError::Codec(e.to_string()))?;

    // One-time second-stage manifest + exec.
    enclave.os().install_second_stage(payload.manifest)?;
    enclave.os().exec()?;

    // Prepare the engine from the decrypted bundle, applying any simulated
    // platform-level compromises.
    let bundle = VariantBundle::from_bytes(&payload.bundle)
        .map_err(|e| MvxError::Diversify(e.to_string()))?;
    // Clean engines prepare through the session-wide cache (weight
    // pre-packing amortised across relaunches of the same spec + graph);
    // FrameFlip'd engines carry per-launch fault state and bypass it.
    let mut prepared: Box<dyn PreparedModel> = match &launch.frameflip {
        Some(ff) => {
            let engine = Engine::with_custom_blas(
                bundle.spec.engine.clone(),
                ff.resolve(bundle.spec.engine.blas),
            );
            engine.prepare(&bundle.graph)?
        }
        None => {
            let engine = Engine::new(bundle.spec.engine.clone());
            Box::new(mvtee_runtime::SharedModel(
                mvtee_runtime::session_cache().prepare(&engine, &bundle.graph)?,
            ))
        }
    };
    if let Some(attack) = &launch.attack {
        prepared = attack.instrument(prepared, &bundle.spec);
    }

    // Step ⑥: sealed install evidence.
    let evidence = InstallEvidence {
        variant_id: release.variant_id,
        manifest_hash: enclave.os_ref().manifest_hash(),
        measurement: enclave.measurement(),
    };
    let sealed = session_cipher.seal(&[1u8; 12], &encode(&evidence)?, b"install-evidence");
    launch
        .bootstrap
        .send_frame(encode(&BootstrapResponse::SealedInstallEvidence { payload: sealed })?)
        .map_err(|e| MvxError::Transport(e.to_string()))?;

    // Data plane: serve checkpoint batches.
    let mut rx = DataLink::from_transport(
        launch.request,
        launch.encrypt,
        &session_secret,
        Role::Responder,
        0,
    );
    let mut tx = DataLink::from_transport(
        launch.response,
        launch.encrypt,
        &session_secret,
        Role::Responder,
        1,
    );
    // (recv errors mean the monitor is gone: stop serving.)
    let batches_served = mvtee_telemetry::counter("core.variant_host.batches_served");
    let tracer = mvtee_telemetry::trace::recorder();
    let run_span_name =
        format!("core.p{}v{}.variant_run", launch.partition, launch.variant_index);
    let run_track = format!("p{}v{}", launch.partition, launch.variant_index);
    loop {
        // Every data-plane read/write passes the TEE OS syscall policy —
        // a main-variant manifest that forbids reads would stop serving.
        enclave.os().syscall(Syscall::Read)?;
        let Ok(frame) = rx.recv() else { break };
        match decode::<StageRequest>(&frame)? {
            StageRequest::Shutdown => break,
            StageRequest::Input { batch, trace, tensors } => {
                // The coordinator's checkpoint span arrives on the wire;
                // runtime op spans and channel instants on this thread
                // parent under the variant-run span.
                let ctx = mvtee_telemetry::trace::TraceCtx::from_pair(trace);
                let run_span = tracer
                    .span(ctx, &run_span_name, &run_track)
                    .arg("batch", batch)
                    .arg("variant_id", release.variant_id);
                mvtee_telemetry::trace::set_current(run_span.ctx());
                if let Some(fault) = &launch.liveness {
                    // A hung variant's "process" is alive and its channel
                    // open — it keeps consuming requests but never
                    // answers, the worst case for a deadline-less
                    // monitor.
                    if fault.hangs_on(batch) {
                        continue;
                    }
                    let delay = fault.delay_for(batch);
                    if delay > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(delay));
                    }
                }
                match prepared.run(&tensors) {
                    Ok(outputs) => {
                        batches_served.inc();
                        enclave.os().syscall(Syscall::Write)?;
                        let resp = StageResponse::Output { batch, tensors: outputs };
                        if let Some(fault) = &launch.liveness {
                            if fault.drops_on(batch) {
                                continue; // frame silently lost in transit
                            }
                            if fault.truncates_on(batch) {
                                let bytes = encode(&resp)?;
                                let _ = tx.send(&bytes[..bytes.len() / 2]);
                                continue;
                            }
                        }
                        if tx.send(&encode(&resp)?).is_err() {
                            break;
                        }
                    }
                    Err(RuntimeError::Crashed { reason }) => {
                        // The "process" dies: report (the monitor would
                        // observe the exit) and stop serving.
                        let resp = StageResponse::Crashed { batch, reason };
                        let _ = tx.send(&encode(&resp)?);
                        break;
                    }
                    Err(other) => {
                        let resp =
                            StageResponse::Crashed { batch, reason: other.to_string() };
                        let _ = tx.send(&encode(&resp)?);
                        break;
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sealed_payload_round_trips() {
        let payload = SealedVariantPayload {
            manifest: Manifest::main_variant("m"),
            bundle: vec![1, 2, 3],
        };
        let bytes = encode(&payload).unwrap();
        let back: SealedVariantPayload = decode(&bytes).unwrap();
        assert_eq!(back.manifest, payload.manifest);
        assert_eq!(back.bundle, payload.bundle);
    }
}
