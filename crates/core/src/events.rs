//! The monitor's audit event log.
//!
//! Every security-relevant observation — checkpoint divergences, crashes,
//! late dissent in async mode, responses taken, binding updates — is
//! appended here. The update log is append-only "for auditing purposes"
//! (§4.3); experiments and tests assert detection through this log.

use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// A security- or lifecycle-relevant monitor observation.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorEvent {
    /// A variant TEE completed attested bootstrap and was bound.
    VariantBound {
        /// Partition index.
        partition: usize,
        /// Variant index within the partition.
        variant: usize,
        /// Post-exec measurement.
        measurement: [u8; 32],
    },
    /// A slow-path checkpoint evaluated the panel and every live variant
    /// agreed — the per-checkpoint "all clear" verdict. Recorded so
    /// campaign/invariant checkers can prove a checkpoint actually ran
    /// (absence of an alarm alone cannot distinguish "checked and passed"
    /// from "never checked").
    CheckpointPassed {
        /// Partition whose checkpoint evaluated.
        partition: usize,
        /// Batch id.
        batch: u64,
        /// Number of agreeing variants.
        agreeing: usize,
    },
    /// Checkpoint divergence detected by the slow path.
    DivergenceDetected {
        /// Partition whose checkpoint fired.
        partition: usize,
        /// Batch id.
        batch: u64,
        /// Dissenting variant indices.
        dissenting: Vec<usize>,
        /// Detail string from the voting verdict.
        detail: String,
    },
    /// A variant crashed (DoS-class exploit, fault, or channel loss).
    VariantCrashed {
        /// Partition index.
        partition: usize,
        /// Variant index.
        variant: usize,
        /// Batch id being processed.
        batch: u64,
        /// Reason.
        reason: String,
    },
    /// A straggler's late output dissented in async cross-validation
    /// mode; the reaction happens at the next checkpoint.
    LateDissent {
        /// Partition index.
        partition: usize,
        /// Batch id the late output belonged to.
        batch: u64,
        /// The late variant index.
        variant: usize,
    },
    /// A response action was taken.
    ResponseTaken {
        /// Partition index.
        partition: usize,
        /// Action description (halt, continue-with-majority, drop).
        action: String,
    },
    /// A partial or full variant update was applied (append-only).
    BindingUpdated {
        /// Partition index.
        partition: usize,
        /// Description of the update.
        description: String,
    },
    /// A variant was quarantined after a detection (divergence, crash,
    /// or watchdog escalation): its channel is abandoned and stale frames
    /// from its pre-quarantine epoch are discarded.
    Quarantined {
        /// Partition index.
        partition: usize,
        /// Variant index.
        variant: usize,
        /// Batch id being processed when the quarantine fired.
        batch: u64,
        /// Why the variant was quarantined.
        reason: String,
    },
    /// The recovery manager began re-provisioning a quarantined variant
    /// (fresh enclave, re-attestation, re-keying, re-sealed bundle).
    RecoveryStarted {
        /// Partition index.
        partition: usize,
        /// Variant index.
        variant: usize,
        /// Zero-based attempt number within the retry budget.
        attempt: u32,
    },
    /// A quarantined variant passed probation against the last verified
    /// checkpoint payload and rejoined its panel.
    Recovered {
        /// Partition index.
        partition: usize,
        /// Variant index.
        variant: usize,
    },
    /// The retry budget was exhausted without a successful rejoin; the
    /// panel stays below strength under the degradation policy.
    RecoveryFailed {
        /// Partition index.
        partition: usize,
        /// Variant index.
        variant: usize,
        /// Attempts made (initial try + retries).
        attempts: u32,
        /// Last failure reason.
        reason: String,
    },
    /// A supervised worker missed a heartbeat deadline (not yet fatal).
    HeartbeatMissed {
        /// Partition index.
        partition: usize,
        /// Variant index.
        variant: usize,
        /// Consecutive misses so far (1-based).
        missed: u32,
    },
    /// A supervised worker exhausted its heartbeat miss budget and was
    /// declared stalled; its connection is severed so the ordinary
    /// quarantine → recovery machinery takes over.
    WorkerStalled {
        /// Partition index.
        partition: usize,
        /// Variant index.
        variant: usize,
        /// Consecutive misses at escalation.
        missed: u32,
    },
    /// A live worker whose socket dropped redialed, re-attested and
    /// resumed from the last verified checkpoint — no respawn needed.
    WorkerReconnected {
        /// Partition index.
        partition: usize,
        /// Variant index.
        variant: usize,
    },
}

impl fmt::Display for MonitorEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorEvent::VariantBound { partition, variant, .. } => {
                write!(f, "bound variant {variant} of partition {partition}")
            }
            MonitorEvent::CheckpointPassed { partition, batch, agreeing } => write!(
                f,
                "checkpoint passed at partition {partition} batch {batch}: {agreeing} agreeing"
            ),
            MonitorEvent::DivergenceDetected { partition, batch, dissenting, .. } => write!(
                f,
                "divergence at partition {partition} batch {batch}: dissenting {dissenting:?}"
            ),
            MonitorEvent::VariantCrashed { partition, variant, batch, reason } => write!(
                f,
                "variant {variant} of partition {partition} crashed at batch {batch}: {reason}"
            ),
            MonitorEvent::LateDissent { partition, batch, variant } => write!(
                f,
                "late dissent from variant {variant} of partition {partition} at batch {batch}"
            ),
            MonitorEvent::ResponseTaken { partition, action } => {
                write!(f, "response at partition {partition}: {action}")
            }
            MonitorEvent::BindingUpdated { partition, description } => {
                write!(f, "binding update at partition {partition}: {description}")
            }
            MonitorEvent::Quarantined { partition, variant, batch, reason } => write!(
                f,
                "quarantined variant {variant} of partition {partition} at batch {batch}: {reason}"
            ),
            MonitorEvent::RecoveryStarted { partition, variant, attempt } => write!(
                f,
                "recovery attempt {attempt} for variant {variant} of partition {partition}"
            ),
            MonitorEvent::Recovered { partition, variant } => {
                write!(f, "variant {variant} of partition {partition} recovered and rejoined")
            }
            MonitorEvent::RecoveryFailed { partition, variant, attempts, reason } => write!(
                f,
                "recovery failed for variant {variant} of partition {partition} after {attempts} attempts: {reason}"
            ),
            MonitorEvent::HeartbeatMissed { partition, variant, missed } => write!(
                f,
                "variant {variant} of partition {partition} missed heartbeat deadline ({missed} consecutive)"
            ),
            MonitorEvent::WorkerStalled { partition, variant, missed } => write!(
                f,
                "worker for variant {variant} of partition {partition} stalled after {missed} missed heartbeats"
            ),
            MonitorEvent::WorkerReconnected { partition, variant } => write!(
                f,
                "worker for variant {variant} of partition {partition} reconnected and resumed"
            ),
        }
    }
}

/// One log entry: an event plus the wall-clock offset (seconds since the
/// monitor's epoch) at which it was recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Seconds elapsed since [`EventLog::new`] when the event fired.
    pub elapsed_secs: f64,
    /// The event itself.
    pub event: MonitorEvent,
}

impl fmt::Display for TimedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[+{:>9.3}s] {}", self.elapsed_secs, self.event)
    }
}

/// Thread-safe, append-only event log shared between the monitor's stage
/// coordinators.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    inner: Arc<Mutex<Vec<(f64, MonitorEvent)>>>,
    start: Option<Instant>,
}

impl EventLog {
    /// Creates an empty log with a fresh epoch.
    pub fn new() -> Self {
        EventLog { inner: Arc::new(Mutex::new(Vec::new())), start: Some(Instant::now()) }
    }

    /// Appends an event, stamped with the offset from the log's epoch.
    /// Divergence-class events are mirrored onto the global telemetry
    /// counters (`core.events.{divergence,crash,late_dissent}`), emitted
    /// as trace instants under the recording thread's ambient context,
    /// and — for divergences, crashes and recovery outcomes — trigger a
    /// flight-recorder dump so the causal chain into the incident is
    /// preserved.
    pub fn record(&self, event: MonitorEvent) {
        let mut trace_name: Option<&'static str> = None;
        let mut dump = false;
        match &event {
            MonitorEvent::CheckpointPassed { .. } => {
                mvtee_telemetry::counter("core.events.checkpoint_pass").inc();
                trace_name = Some("core.event.checkpoint_pass");
            }
            MonitorEvent::DivergenceDetected { .. } => {
                mvtee_telemetry::counter("core.events.divergence").inc();
                trace_name = Some("core.event.divergence");
                dump = true;
            }
            MonitorEvent::VariantCrashed { .. } => {
                mvtee_telemetry::counter("core.events.crash").inc();
                trace_name = Some("core.event.crash");
                dump = true;
            }
            MonitorEvent::LateDissent { .. } => {
                mvtee_telemetry::counter("core.events.late_dissent").inc();
                trace_name = Some("core.event.late_dissent");
                dump = true;
            }
            MonitorEvent::Quarantined { .. } => {
                mvtee_telemetry::counter("core.recovery.quarantined").inc();
                trace_name = Some("core.event.quarantined");
            }
            MonitorEvent::RecoveryStarted { .. } => {
                mvtee_telemetry::counter("core.recovery.started").inc();
                trace_name = Some("core.event.recovery_started");
            }
            MonitorEvent::Recovered { .. } => {
                mvtee_telemetry::counter("core.recovery.recovered").inc();
                trace_name = Some("core.event.recovered");
                dump = true;
            }
            MonitorEvent::RecoveryFailed { .. } => {
                mvtee_telemetry::counter("core.recovery.failed").inc();
                trace_name = Some("core.event.recovery_failed");
                dump = true;
            }
            MonitorEvent::HeartbeatMissed { .. } => {
                mvtee_telemetry::counter("core.supervisor.heartbeat_missed").inc();
            }
            MonitorEvent::WorkerStalled { .. } => {
                mvtee_telemetry::counter("core.supervisor.stalled").inc();
                trace_name = Some("core.event.worker_stalled");
                dump = true;
            }
            MonitorEvent::WorkerReconnected { .. } => {
                mvtee_telemetry::counter("core.worker.reconnected").inc();
                trace_name = Some("core.event.worker_reconnected");
            }
            _ => {}
        }
        let tracer = mvtee_telemetry::trace::recorder();
        if tracer.is_enabled() {
            if let Some(name) = trace_name {
                // The instant must land in the ring before a triggered
                // dump snapshots it.
                drop(
                    tracer
                        .instant(mvtee_telemetry::trace::current(), name, "events")
                        .arg("detail", &event),
                );
            }
            if dump {
                tracer.dump(&format!("monitor event: {event}"));
            }
        }
        let t = self.start.map(|s| s.elapsed().as_secs_f64()).unwrap_or(0.0);
        self.inner.lock().push((t, event));
    }

    /// Snapshot of all events (timestamp seconds, event).
    pub fn snapshot(&self) -> Vec<(f64, MonitorEvent)> {
        self.inner.lock().clone()
    }

    /// All entries as [`TimedEvent`]s, in recording order.
    pub fn entries(&self) -> Vec<TimedEvent> {
        self.inner
            .lock()
            .iter()
            .map(|(t, e)| TimedEvent { elapsed_secs: *t, event: e.clone() })
            .collect()
    }

    /// Renders the log as one `[+N.NNNs] message` line per entry.
    pub fn render(&self) -> String {
        self.entries().iter().map(|e| format!("{e}\n")).collect()
    }

    /// All events without timestamps.
    pub fn events(&self) -> Vec<MonitorEvent> {
        self.inner.lock().iter().map(|(_, e)| e.clone()).collect()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Checkpoint verdicts that passed: `(partition, batch, agreeing)`
    /// per slow-path checkpoint whose panel agreed.
    pub fn checkpoint_passes(&self) -> Vec<(usize, u64, usize)> {
        self.inner
            .lock()
            .iter()
            .filter_map(|(_, e)| match e {
                MonitorEvent::CheckpointPassed { partition, batch, agreeing } => {
                    Some((*partition, *batch, *agreeing))
                }
                _ => None,
            })
            .collect()
    }

    /// Divergence detections: `(partition, batch, dissenting variants)`.
    /// Late dissent counts as a divergence at its partition.
    pub fn divergences(&self) -> Vec<(usize, u64, Vec<usize>)> {
        self.inner
            .lock()
            .iter()
            .filter_map(|(_, e)| match e {
                MonitorEvent::DivergenceDetected { partition, batch, dissenting, .. } => {
                    Some((*partition, *batch, dissenting.clone()))
                }
                MonitorEvent::LateDissent { partition, batch, variant } => {
                    Some((*partition, *batch, vec![*variant]))
                }
                _ => None,
            })
            .collect()
    }

    /// Recorded variant crashes: `(partition, variant, batch)`.
    pub fn crashes(&self) -> Vec<(usize, usize, u64)> {
        self.inner
            .lock()
            .iter()
            .filter_map(|(_, e)| match e {
                MonitorEvent::VariantCrashed { partition, variant, batch, .. } => {
                    Some((*partition, *variant, *batch))
                }
                _ => None,
            })
            .collect()
    }

    /// Reconnect-and-resume events: `(partition, variant)`.
    pub fn reconnections(&self) -> Vec<(usize, usize)> {
        self.inner
            .lock()
            .iter()
            .filter_map(|(_, e)| match e {
                MonitorEvent::WorkerReconnected { partition, variant } => {
                    Some((*partition, *variant))
                }
                _ => None,
            })
            .collect()
    }

    /// Worker-stall escalations: `(partition, variant)`.
    pub fn stalls(&self) -> Vec<(usize, usize)> {
        self.inner
            .lock()
            .iter()
            .filter_map(|(_, e)| match e {
                MonitorEvent::WorkerStalled { partition, variant, .. } => {
                    Some((*partition, *variant))
                }
                _ => None,
            })
            .collect()
    }

    /// Quarantine events: `(partition, variant, batch)`.
    pub fn quarantines(&self) -> Vec<(usize, usize, u64)> {
        self.inner
            .lock()
            .iter()
            .filter_map(|(_, e)| match e {
                MonitorEvent::Quarantined { partition, variant, batch, .. } => {
                    Some((*partition, *variant, *batch))
                }
                _ => None,
            })
            .collect()
    }

    /// Successful recoveries: `(partition, variant)` per rejoined variant.
    pub fn recoveries(&self) -> Vec<(usize, usize)> {
        self.inner
            .lock()
            .iter()
            .filter_map(|(_, e)| match e {
                MonitorEvent::Recovered { partition, variant } => Some((*partition, *variant)),
                _ => None,
            })
            .collect()
    }

    /// The earliest partition ≥ `partition` at which a detection-class
    /// event (divergence, crash, or late dissent) fired — the signal the
    /// campaign's detection invariant checks against the first checkpoint
    /// at-or-after the injection point.
    pub fn first_detection_at_or_after(&self, partition: usize) -> Option<usize> {
        self.inner
            .lock()
            .iter()
            .filter_map(|(_, e)| match e {
                MonitorEvent::DivergenceDetected { partition: p, .. }
                | MonitorEvent::VariantCrashed { partition: p, .. }
                | MonitorEvent::LateDissent { partition: p, .. } => Some(*p),
                _ => None,
            })
            .filter(|&p| p >= partition)
            .min()
    }

    /// Count of divergence-class events (divergences + crashes + late
    /// dissent) — the detection signal asserted by the security tests.
    pub fn detection_count(&self) -> usize {
        self.inner
            .lock()
            .iter()
            .filter(|(_, e)| {
                matches!(
                    e,
                    MonitorEvent::DivergenceDetected { .. }
                        | MonitorEvent::VariantCrashed { .. }
                        | MonitorEvent::LateDissent { .. }
                )
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_records_and_counts() {
        let log = EventLog::new();
        assert!(log.is_empty());
        log.record(MonitorEvent::ResponseTaken { partition: 0, action: "halt".into() });
        log.record(MonitorEvent::DivergenceDetected {
            partition: 1,
            batch: 3,
            dissenting: vec![2],
            detail: "x".into(),
        });
        log.record(MonitorEvent::VariantCrashed {
            partition: 1,
            variant: 2,
            batch: 3,
            reason: "oob".into(),
        });
        assert_eq!(log.len(), 3);
        assert_eq!(log.detection_count(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn log_is_shared_across_clones() {
        let log = EventLog::new();
        let clone = log.clone();
        clone.record(MonitorEvent::LateDissent { partition: 0, batch: 1, variant: 2 });
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn events_display() {
        let events = [
            MonitorEvent::VariantBound { partition: 0, variant: 1, measurement: [0; 32] },
            MonitorEvent::DivergenceDetected {
                partition: 0,
                batch: 0,
                dissenting: vec![],
                detail: "d".into(),
            },
            MonitorEvent::VariantCrashed {
                partition: 0,
                variant: 0,
                batch: 0,
                reason: "r".into(),
            },
            MonitorEvent::LateDissent { partition: 0, batch: 0, variant: 0 },
            MonitorEvent::ResponseTaken { partition: 0, action: "a".into() },
            MonitorEvent::BindingUpdated { partition: 0, description: "d".into() },
            MonitorEvent::Quarantined { partition: 0, variant: 0, batch: 0, reason: "q".into() },
            MonitorEvent::RecoveryStarted { partition: 0, variant: 0, attempt: 0 },
            MonitorEvent::Recovered { partition: 0, variant: 0 },
            MonitorEvent::RecoveryFailed {
                partition: 0,
                variant: 0,
                attempts: 4,
                reason: "probation".into(),
            },
            MonitorEvent::HeartbeatMissed { partition: 0, variant: 0, missed: 1 },
            MonitorEvent::WorkerStalled { partition: 0, variant: 0, missed: 3 },
            MonitorEvent::WorkerReconnected { partition: 0, variant: 0 },
        ];
        for e in events {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn supervisor_events_do_not_count_as_detections() {
        let log = EventLog::new();
        log.record(MonitorEvent::HeartbeatMissed { partition: 0, variant: 1, missed: 1 });
        log.record(MonitorEvent::WorkerStalled { partition: 0, variant: 1, missed: 3 });
        log.record(MonitorEvent::WorkerReconnected { partition: 0, variant: 1 });
        assert_eq!(log.detection_count(), 0);
        assert_eq!(log.stalls(), vec![(0, 1)]);
        assert_eq!(log.reconnections(), vec![(0, 1)]);
    }

    #[test]
    fn recovery_events_render_and_do_not_count_as_detections() {
        let log = EventLog::new();
        log.record(MonitorEvent::Quarantined {
            partition: 1,
            variant: 2,
            batch: 5,
            reason: "divergence".into(),
        });
        log.record(MonitorEvent::RecoveryStarted { partition: 1, variant: 2, attempt: 0 });
        log.record(MonitorEvent::Recovered { partition: 1, variant: 2 });
        log.record(MonitorEvent::RecoveryFailed {
            partition: 3,
            variant: 0,
            attempts: 4,
            reason: "probation mismatch".into(),
        });
        let rendered = log.render();
        assert!(rendered.contains("quarantined variant 2 of partition 1 at batch 5"));
        assert!(rendered.contains("recovery attempt 0 for variant 2 of partition 1"));
        assert!(rendered.contains("variant 2 of partition 1 recovered and rejoined"));
        assert!(rendered
            .contains("recovery failed for variant 0 of partition 3 after 4 attempts"));
        // Recovery lifecycle events are *reactions*, not detections:
        // `RecoveryFailed` at partition 3 must not register as a
        // detection there, and none of the four inflate the count.
        assert_eq!(log.first_detection_at_or_after(0), None);
        assert_eq!(log.first_detection_at_or_after(3), None);
        assert_eq!(log.detection_count(), 0);
        assert_eq!(log.quarantines(), vec![(1, 2, 5)]);
        assert_eq!(log.recoveries(), vec![(1, 2)]);
    }

    #[test]
    fn recovery_events_mirror_to_telemetry_counters() {
        let before = mvtee_telemetry::snapshot();
        let log = EventLog::new();
        log.record(MonitorEvent::Quarantined {
            partition: 0,
            variant: 1,
            batch: 0,
            reason: "crash".into(),
        });
        log.record(MonitorEvent::RecoveryStarted { partition: 0, variant: 1, attempt: 0 });
        log.record(MonitorEvent::RecoveryStarted { partition: 0, variant: 1, attempt: 1 });
        log.record(MonitorEvent::Recovered { partition: 0, variant: 1 });
        log.record(MonitorEvent::RecoveryFailed {
            partition: 0,
            variant: 1,
            attempts: 4,
            reason: "r".into(),
        });
        let after = mvtee_telemetry::snapshot();
        let delta = |name: &str| {
            after.counters.get(name).copied().unwrap_or(0)
                - before.counters.get(name).copied().unwrap_or(0)
        };
        assert_eq!(delta("core.recovery.quarantined"), 1);
        assert_eq!(delta("core.recovery.started"), 2);
        assert_eq!(delta("core.recovery.recovered"), 1);
        assert_eq!(delta("core.recovery.failed"), 1);
    }

    #[test]
    fn timestamps_monotone() {
        let log = EventLog::new();
        log.record(MonitorEvent::ResponseTaken { partition: 0, action: "a".into() });
        log.record(MonitorEvent::ResponseTaken { partition: 0, action: "b".into() });
        let snap = log.snapshot();
        assert!(snap[0].0 <= snap[1].0);
    }

    #[test]
    fn entries_carry_wall_clock_offsets() {
        let log = EventLog::new();
        log.record(MonitorEvent::ResponseTaken { partition: 3, action: "halt".into() });
        let entries = log.entries();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].elapsed_secs >= 0.0);
        let line = entries[0].to_string();
        assert!(line.starts_with("[+"), "missing timestamp prefix: {line}");
        assert!(line.contains("s] response at partition 3: halt"), "bad line: {line}");
    }

    #[test]
    fn render_emits_one_line_per_event() {
        let log = EventLog::new();
        log.record(MonitorEvent::ResponseTaken { partition: 0, action: "a".into() });
        log.record(MonitorEvent::BindingUpdated { partition: 1, description: "d".into() });
        let rendered = log.render();
        assert_eq!(rendered.lines().count(), 2);
        assert!(rendered.lines().all(|l| l.starts_with("[+")));
    }

    #[test]
    fn checkpoint_introspection_helpers() {
        let log = EventLog::new();
        log.record(MonitorEvent::CheckpointPassed { partition: 0, batch: 0, agreeing: 3 });
        log.record(MonitorEvent::VariantCrashed {
            partition: 1,
            variant: 2,
            batch: 0,
            reason: "boom".into(),
        });
        log.record(MonitorEvent::DivergenceDetected {
            partition: 2,
            batch: 0,
            dissenting: vec![1],
            detail: "d".into(),
        });
        log.record(MonitorEvent::LateDissent { partition: 3, batch: 1, variant: 0 });
        assert_eq!(log.checkpoint_passes(), vec![(0, 0, 3)]);
        assert_eq!(log.crashes(), vec![(1, 2, 0)]);
        assert_eq!(
            log.divergences(),
            vec![(2, 0, vec![1]), (3, 1, vec![0])]
        );
        assert_eq!(log.first_detection_at_or_after(0), Some(1));
        assert_eq!(log.first_detection_at_or_after(2), Some(2));
        assert_eq!(log.first_detection_at_or_after(4), None);
        // A passed checkpoint is not a detection.
        assert_eq!(log.detection_count(), 3);
    }

    #[test]
    fn detections_mirror_to_telemetry_counters() {
        let before = mvtee_telemetry::snapshot();
        let log = EventLog::new();
        log.record(MonitorEvent::DivergenceDetected {
            partition: 0,
            batch: 0,
            dissenting: vec![1],
            detail: "d".into(),
        });
        log.record(MonitorEvent::VariantCrashed {
            partition: 0,
            variant: 1,
            batch: 0,
            reason: "r".into(),
        });
        log.record(MonitorEvent::LateDissent { partition: 0, batch: 0, variant: 1 });
        log.record(MonitorEvent::ResponseTaken { partition: 0, action: "halt".into() });
        let after = mvtee_telemetry::snapshot();
        let delta = |name: &str| {
            after.counters.get(name).copied().unwrap_or(0)
                - before.counters.get(name).copied().unwrap_or(0)
        };
        assert_eq!(delta("core.events.divergence"), 1);
        assert_eq!(delta("core.events.crash"), 1);
        assert_eq!(delta("core.events.late_dissent"), 1);
    }
}
