//! The runtime-provisioned MVX configuration (§4.3).
//!
//! "Based on a runtime-provisioned MVX configuration that specifies the
//! partition set (number and sizes of partitions) and the variant claims
//! (type and number of variants per partition), the monitor manages the
//! attestation, key distribution, binding and fault tolerance of
//! variants."

use mvtee_tensor::metrics::Metric;
use serde::{Deserialize, Serialize};

/// How many variants an individual partition runs, and how they are
/// generated — the *variant claim* for that partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionMvx {
    /// Number of variants (1 = no MVX, fast path in hybrid mode).
    pub variants: usize,
    /// When `true`, variants are identical replicas (the fundamental-
    /// performance experiments); when `false`, diversified variants are
    /// drawn from the pool (the real-setup experiments).
    pub replicated: bool,
    /// Consistency metric for this partition's checkpoint.
    pub metric: Metric,
    /// Default intra-op thread count for every variant on this partition.
    /// The runtime pool is deterministic — chunking depends only on the
    /// problem size, never on this count — so variants configured with
    /// different counts (via per-variant [`SpecPatch`] overrides) still
    /// agree bit-exactly at checkpoints.
    ///
    /// [`SpecPatch`]: crate::deployment::SpecPatch
    pub intra_op_threads: usize,
}

impl PartitionMvx {
    /// A single-variant (fast path) claim.
    pub fn single() -> Self {
        PartitionMvx {
            variants: 1,
            replicated: true,
            metric: Metric::strict(),
            intra_op_threads: 1,
        }
    }

    /// `n` identical replicas with the zero-tolerance exact metric: the
    /// deterministic runtime makes replicas value-exact, so an agreement
    /// tolerance would only mask sub-tolerance corruption.
    pub fn replicated(n: usize) -> Self {
        PartitionMvx {
            variants: n,
            replicated: true,
            metric: Metric::exact(),
            intra_op_threads: 1,
        }
    }

    /// `n` diversified variants with the relaxed heterogeneous metric.
    pub fn diversified(n: usize) -> Self {
        PartitionMvx {
            variants: n,
            replicated: false,
            metric: Metric::relaxed(),
            intra_op_threads: 1,
        }
    }

    /// Sets the partition-wide intra-op thread count (clamped to ≥ 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.intra_op_threads = threads.max(1);
        self
    }

    /// Is MVX active here (more than one variant)?
    pub fn mvx_enabled(&self) -> bool {
        self.variants > 1
    }
}

/// Checkpoint path selection (§4.3, Fig 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PathMode {
    /// The default: slow path on MVX-enabled partitions, fast path on
    /// single-variant partitions.
    #[default]
    Hybrid,
    /// Force the slow path (checkpoint evaluation) everywhere — used to
    /// measure checkpointing overhead (Fig 10).
    ForceSlow,
    /// Force the fast path (fall-through) everywhere.
    ForceFast,
}

/// Checkpoint synchronisation mode (§4.3, Fig 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ExecMode {
    /// Wait for every variant at each checkpoint.
    #[default]
    Sync,
    /// Asynchronous cross-validation: proceed on majority consensus,
    /// validate stragglers when they arrive, react at the next checkpoint.
    AsyncCrossValidation,
}

/// Voting strategy at checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum VotingPolicy {
    /// All variants must agree (the security-first default).
    #[default]
    Unanimous,
    /// A strict majority suffices; minority dissent is flagged.
    Majority,
}

/// What the monitor does when a checkpoint detects divergence or a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ResponsePolicy {
    /// Stop the pipeline and surface an error (safety-critical default).
    #[default]
    Halt,
    /// Record the event, adopt the majority (or first consistent) output
    /// and continue (degraded service).
    ContinueWithMajority,
}

/// What voting does while a panel is *below strength* — one or more
/// variants quarantined or crashed and not yet recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DegradationPolicy {
    /// Fail the batch outright: a below-strength panel is treated as a
    /// divergence so the response policy fires (halt by default).
    Strict,
    /// Vote with the reduced quorum of survivors (the historical
    /// behaviour, so it stays the default).
    #[default]
    Degrade,
    /// Fall through the checkpoint flagged: take the first healthy
    /// output without voting and record a `ResponseTaken` marker so the
    /// degraded span is auditable.
    FastPathFallback,
}

/// Retry budget and pacing for automatic variant recovery.
///
/// Durations are stored in milliseconds so the config stays plainly
/// serialisable; accessors expose [`std::time::Duration`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Master switch: when `false` (the default) quarantined variants
    /// are dropped for the rest of the stream, matching the historical
    /// continue-with-survivors behaviour.
    pub enabled: bool,
    /// Re-provision attempts after the first (attempt 0) fails.
    pub max_retries: u32,
    /// Base of the exponential backoff between attempts, in ms: attempt
    /// `k` sleeps `backoff_base_ms * 2^k` before retrying.
    pub backoff_base_ms: u64,
    /// Crash-loop budget: if more than this many recovery requests for
    /// the *same* variant slot arrive inside [`crash_loop_window_ms`],
    /// the manager stops respawning (the death is escalated to
    /// `RecoveryFailed` and the panel serves degraded per
    /// [`DegradationPolicy`]). `0` disables crash-loop detection — the
    /// historical respawn-forever behaviour, so it stays the default.
    ///
    /// [`crash_loop_window_ms`]: RecoveryPolicy::crash_loop_window_ms
    pub crash_loop_budget: u32,
    /// Width of the crash-loop detection window, in ms.
    pub crash_loop_window_ms: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            enabled: false,
            max_retries: 3,
            backoff_base_ms: 25,
            crash_loop_budget: 0,
            crash_loop_window_ms: 10_000,
        }
    }
}

impl RecoveryPolicy {
    /// Recovery switched on with the default retry budget.
    pub fn enabled() -> Self {
        RecoveryPolicy { enabled: true, ..Self::default() }
    }

    /// Backoff before retry attempt `k` (attempt 0 waits one base unit).
    pub fn backoff(&self, attempt: u32) -> std::time::Duration {
        let factor = 1u64 << attempt.min(16);
        std::time::Duration::from_millis(self.backoff_base_ms.saturating_mul(factor))
    }

    /// The crash-loop window as a [`std::time::Duration`].
    pub fn crash_loop_window(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.crash_loop_window_ms)
    }
}

/// Heartbeat-driven worker supervision and socket-drop recovery.
///
/// Supervision watches each out-of-process worker's heartbeat lane: a
/// worker that misses [`miss_budget`] consecutive deadlines is declared
/// stalled, its connection is severed, and the ordinary quarantine →
/// recovery machinery heals it. With [`reconnect`] on, a worker whose
/// *socket* dropped but whose process is alive may redial and resume
/// from the last verified checkpoint instead of being fully respawned.
///
/// [`miss_budget`]: SupervisionPolicy::miss_budget
/// [`reconnect`]: SupervisionPolicy::reconnect
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisionPolicy {
    /// Master switch: when `false` (the default) no heartbeat lane is
    /// provisioned and workers are only supervised by connection loss.
    pub enabled: bool,
    /// Keepalive ping period, in ms. Also the monitor's per-ping receive
    /// deadline.
    pub heartbeat_interval_ms: u64,
    /// Consecutive missed deadlines before the worker is declared
    /// stalled.
    pub miss_budget: u32,
    /// Allow a disconnected-but-alive worker to redial, re-attest and
    /// resume (reconnect-and-resume) before falling back to a respawn.
    pub reconnect: bool,
    /// How long the monitor holds the redial door open before giving up
    /// and respawning, in ms.
    pub reconnect_window_ms: u64,
}

impl Default for SupervisionPolicy {
    fn default() -> Self {
        SupervisionPolicy {
            enabled: false,
            heartbeat_interval_ms: 100,
            miss_budget: 3,
            reconnect: false,
            reconnect_window_ms: 1_000,
        }
    }
}

impl SupervisionPolicy {
    /// Supervision switched on with the default cadence.
    pub fn enabled() -> Self {
        SupervisionPolicy { enabled: true, ..Self::default() }
    }

    /// Supervision with reconnect-and-resume also enabled.
    pub fn with_reconnect() -> Self {
        SupervisionPolicy { enabled: true, reconnect: true, ..Self::default() }
    }

    /// The heartbeat interval as a [`std::time::Duration`].
    pub fn heartbeat_interval(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.heartbeat_interval_ms)
    }

    /// The reconnect window as a [`std::time::Duration`].
    pub fn reconnect_window(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.reconnect_window_ms)
    }
}

/// The complete MVX configuration provisioned by the model owner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MvxConfig {
    /// Number of partitions (checkpoints = partitions − 1).
    pub partitions: usize,
    /// Seed for partition-set selection from the pool.
    pub partition_seed: u64,
    /// Per-partition variant claims; length must equal `partitions`.
    pub claims: Vec<PartitionMvx>,
    /// Path mode.
    pub path: PathMode,
    /// Synchronisation mode.
    pub exec: ExecMode,
    /// Voting policy on slow-path checkpoints.
    pub voting: VotingPolicy,
    /// Response to detected inconsistencies.
    pub response: ResponsePolicy,
    /// Whether inter-TEE traffic is encrypted (disabled only by the
    /// overhead-measurement baseline of Fig 10).
    pub encrypt: bool,
    /// Per-partition checkpoint deadline in ms: how long a stage
    /// coordinator waits for panel outputs before the straggler watchdog
    /// escalates (timeout → late dissent → quarantine). Replaces the old
    /// hardcoded 30 s `RESPONSE_TIMEOUT`.
    pub checkpoint_deadline_ms: u64,
    /// Total window in ms spent draining straggler responses after a
    /// quorum was forwarded in async cross-validation mode.
    pub drain_window_ms: u64,
    /// Poll interval in ms within the drain window.
    pub drain_poll_ms: u64,
    /// Bound of each stage coordinator's inbound job queue. Submission
    /// blocks when a stage is this many batches behind — the pipeline's
    /// backpressure valve under sustained concurrent load. Replaces the
    /// old hardcoded 1024-slot queue.
    pub stage_queue_depth: usize,
    /// Maximum number of batches whose async late-validation state is
    /// retained while stragglers are outstanding; the oldest entry is
    /// dropped (and audited) beyond this. Replaces the old hardcoded
    /// 256-entry window.
    pub late_validation_window: usize,
    /// How long in ms a caller waits on the pipeline's result channel
    /// before declaring the deployment wedged. Replaces the old
    /// hardcoded 120 s collection timeout.
    pub result_timeout_ms: u64,
    /// Voting behaviour while a panel is below strength.
    pub degradation: DegradationPolicy,
    /// Automatic quarantine-and-recover policy.
    pub recovery: RecoveryPolicy,
    /// Heartbeat supervision of out-of-process workers.
    pub supervision: SupervisionPolicy,
}

impl MvxConfig {
    /// A full fast-path configuration: every partition single-variant.
    pub fn fast_path(partitions: usize) -> Self {
        MvxConfig {
            partitions,
            partition_seed: 0x5eed,
            claims: vec![PartitionMvx::single(); partitions],
            path: PathMode::Hybrid,
            exec: ExecMode::Sync,
            voting: VotingPolicy::Unanimous,
            response: ResponsePolicy::Halt,
            encrypt: true,
            checkpoint_deadline_ms: 30_000,
            drain_window_ms: 500,
            drain_poll_ms: 50,
            stage_queue_depth: 1024,
            late_validation_window: 256,
            result_timeout_ms: 120_000,
            degradation: DegradationPolicy::default(),
            recovery: RecoveryPolicy::default(),
            supervision: SupervisionPolicy::default(),
        }
    }

    /// The checkpoint deadline as a [`std::time::Duration`].
    pub fn checkpoint_deadline(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.checkpoint_deadline_ms)
    }

    /// The async straggler drain window as a [`std::time::Duration`].
    pub fn drain_window(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.drain_window_ms)
    }

    /// The drain poll interval as a [`std::time::Duration`].
    pub fn drain_poll(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.drain_poll_ms)
    }

    /// The result-collection timeout as a [`std::time::Duration`].
    pub fn result_timeout(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.result_timeout_ms)
    }

    /// Selective MVX: `variants` replicas on the partitions listed in
    /// `mvx_partitions`, single variants elsewhere.
    pub fn selective(partitions: usize, mvx_partitions: &[usize], variants: usize) -> Self {
        let mut cfg = Self::fast_path(partitions);
        for &p in mvx_partitions {
            if p < partitions {
                cfg.claims[p] = PartitionMvx::replicated(variants);
            }
        }
        cfg
    }

    /// Selective MVX with diversified variants (the real-setup experiments).
    pub fn selective_diversified(
        partitions: usize,
        mvx_partitions: &[usize],
        variants: usize,
    ) -> Self {
        let mut cfg = Self::selective(partitions, mvx_partitions, variants);
        for &p in mvx_partitions {
            if p < partitions {
                cfg.claims[p] = PartitionMvx::diversified(variants);
            }
        }
        cfg
    }

    /// Does partition `p` take the slow path under this configuration?
    pub fn slow_path(&self, p: usize) -> bool {
        match self.path {
            PathMode::ForceSlow => true,
            PathMode::ForceFast => false,
            PathMode::Hybrid => self.claims.get(p).map(PartitionMvx::mvx_enabled).unwrap_or(false),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MvxError::InvalidConfig`] with the violation.
    pub fn validate(&self) -> crate::Result<()> {
        if self.partitions == 0 {
            return Err(crate::MvxError::InvalidConfig("zero partitions".into()));
        }
        if self.claims.len() != self.partitions {
            return Err(crate::MvxError::InvalidConfig(format!(
                "{} claims for {} partitions",
                self.claims.len(),
                self.partitions
            )));
        }
        if self.claims.iter().any(|c| c.variants == 0) {
            return Err(crate::MvxError::InvalidConfig("a partition claims zero variants".into()));
        }
        if self.checkpoint_deadline_ms == 0 {
            return Err(crate::MvxError::InvalidConfig("zero checkpoint deadline".into()));
        }
        if self.drain_poll_ms == 0 || self.drain_poll_ms > self.drain_window_ms {
            return Err(crate::MvxError::InvalidConfig(
                "drain poll must be non-zero and no longer than the drain window".into(),
            ));
        }
        if self.stage_queue_depth == 0 {
            return Err(crate::MvxError::InvalidConfig("zero stage queue depth".into()));
        }
        if self.late_validation_window == 0 {
            return Err(crate::MvxError::InvalidConfig("zero late-validation window".into()));
        }
        if self.result_timeout_ms == 0 {
            return Err(crate::MvxError::InvalidConfig("zero result timeout".into()));
        }
        if self.supervision.enabled {
            if self.supervision.heartbeat_interval_ms == 0 {
                return Err(crate::MvxError::InvalidConfig("zero heartbeat interval".into()));
            }
            if self.supervision.miss_budget == 0 {
                return Err(crate::MvxError::InvalidConfig("zero heartbeat miss budget".into()));
            }
            if self.supervision.reconnect && self.supervision.reconnect_window_ms == 0 {
                return Err(crate::MvxError::InvalidConfig("zero reconnect window".into()));
            }
        }
        if self.exec == ExecMode::AsyncCrossValidation && self.partitions == 1 {
            // "This mode is inherently inapplicable for full MVX without
            // partitioning."
            return Err(crate::MvxError::InvalidConfig(
                "async cross-validation requires at least two partitions".into(),
            ));
        }
        Ok(())
    }

    /// Total number of variant TEEs this configuration spawns.
    pub fn total_variants(&self) -> usize {
        self.claims.iter().map(|c| c.variants).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_path_config() {
        let c = MvxConfig::fast_path(5);
        c.validate().unwrap();
        assert_eq!(c.total_variants(), 5);
        assert!(!c.slow_path(0));
        assert!(!c.claims[0].mvx_enabled());
    }

    #[test]
    fn selective_config() {
        let c = MvxConfig::selective(5, &[2], 3);
        c.validate().unwrap();
        assert_eq!(c.total_variants(), 7);
        assert!(c.slow_path(2));
        assert!(!c.slow_path(1));
    }

    #[test]
    fn force_paths() {
        let mut c = MvxConfig::fast_path(3);
        c.path = PathMode::ForceSlow;
        assert!(c.slow_path(0));
        c.path = PathMode::ForceFast;
        c.claims[1] = PartitionMvx::replicated(3);
        assert!(!c.slow_path(1));
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(MvxConfig::fast_path(0).validate().is_err());
        let mut c = MvxConfig::fast_path(3);
        c.claims.pop();
        assert!(c.validate().is_err());
        let mut c = MvxConfig::fast_path(3);
        c.claims[0].variants = 0;
        assert!(c.validate().is_err());
        let mut c = MvxConfig::fast_path(1);
        c.exec = ExecMode::AsyncCrossValidation;
        assert!(c.validate().is_err());
    }

    #[test]
    fn timeouts_default_to_historical_values() {
        let c = MvxConfig::fast_path(2);
        assert_eq!(c.checkpoint_deadline(), std::time::Duration::from_secs(30));
        assert_eq!(c.drain_window(), std::time::Duration::from_millis(500));
        assert_eq!(c.drain_poll(), std::time::Duration::from_millis(50));
        assert_eq!(c.result_timeout(), std::time::Duration::from_secs(120));
        assert_eq!(c.stage_queue_depth, 1024);
        assert_eq!(c.late_validation_window, 256);
        assert_eq!(c.degradation, DegradationPolicy::Degrade);
        assert!(!c.recovery.enabled);
    }

    #[test]
    fn recovery_backoff_is_exponential() {
        let p = RecoveryPolicy { max_retries: 3, backoff_base_ms: 25, ..RecoveryPolicy::enabled() };
        assert_eq!(p.backoff(0), std::time::Duration::from_millis(25));
        assert_eq!(p.backoff(1), std::time::Duration::from_millis(50));
        assert_eq!(p.backoff(2), std::time::Duration::from_millis(100));
        // Saturates rather than overflowing for absurd attempt counts.
        assert!(p.backoff(63) >= p.backoff(16));
    }

    #[test]
    fn recovery_backoff_caps_at_the_shift_limit() {
        let p = RecoveryPolicy { backoff_base_ms: 25, ..RecoveryPolicy::enabled() };
        // Every attempt beyond the cap gets the attempt-16 delay exactly:
        // the shift saturates instead of growing without bound.
        let cap = p.backoff(16);
        assert_eq!(cap, std::time::Duration::from_millis(25 << 16));
        for attempt in [17, 100, 1_000_000, u32::MAX - 1, u32::MAX] {
            assert_eq!(p.backoff(attempt), cap, "attempt {attempt} must hit the cap");
        }
    }

    #[test]
    fn recovery_backoff_saturates_on_huge_bases() {
        // A base large enough that base * 2^16 overflows u64 must
        // saturate, not panic or wrap to a tiny delay.
        let p = RecoveryPolicy { backoff_base_ms: u64::MAX / 2, ..RecoveryPolicy::enabled() };
        assert_eq!(p.backoff(u32::MAX), std::time::Duration::from_millis(u64::MAX));
        assert!(p.backoff(3) >= p.backoff(2));
    }

    #[test]
    fn recovery_backoff_is_monotone_nondecreasing() {
        for base in [1u64, 25, 1_000] {
            let p = RecoveryPolicy { backoff_base_ms: base, ..RecoveryPolicy::enabled() };
            let mut prev = p.backoff(0);
            for attempt in 1..40u32 {
                let next = p.backoff(attempt);
                assert!(next >= prev, "backoff regressed at attempt {attempt} (base {base})");
                prev = next;
            }
        }
    }

    #[test]
    fn recovery_backoff_zero_base_is_always_zero() {
        let p = RecoveryPolicy { backoff_base_ms: 0, ..RecoveryPolicy::enabled() };
        for attempt in [0, 1, 16, 17, u32::MAX] {
            assert_eq!(p.backoff(attempt), std::time::Duration::ZERO);
        }
    }

    #[test]
    fn crash_loop_detection_is_off_by_default() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.crash_loop_budget, 0);
        assert_eq!(p.crash_loop_window(), std::time::Duration::from_secs(10));
        assert_eq!(RecoveryPolicy::enabled().crash_loop_budget, 0);
    }

    #[test]
    fn supervision_defaults_and_validation() {
        let c = MvxConfig::fast_path(2);
        assert!(!c.supervision.enabled);
        let mut c = MvxConfig::fast_path(2);
        c.supervision = SupervisionPolicy::enabled();
        assert_eq!(c.supervision.heartbeat_interval(), std::time::Duration::from_millis(100));
        assert_eq!(c.supervision.miss_budget, 3);
        c.validate().unwrap();
        c.supervision.heartbeat_interval_ms = 0;
        assert!(c.validate().is_err());
        let mut c = MvxConfig::fast_path(2);
        c.supervision = SupervisionPolicy::with_reconnect();
        assert!(c.supervision.reconnect);
        c.supervision.reconnect_window_ms = 0;
        assert!(c.validate().is_err());
        let mut c = MvxConfig::fast_path(2);
        c.supervision = SupervisionPolicy::enabled();
        c.supervision.miss_budget = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_timeouts() {
        let mut c = MvxConfig::fast_path(2);
        c.checkpoint_deadline_ms = 0;
        assert!(c.validate().is_err());
        let mut c = MvxConfig::fast_path(2);
        c.drain_poll_ms = 0;
        assert!(c.validate().is_err());
        let mut c = MvxConfig::fast_path(2);
        c.drain_poll_ms = c.drain_window_ms + 1;
        assert!(c.validate().is_err());
        let mut c = MvxConfig::fast_path(2);
        c.stage_queue_depth = 0;
        assert!(c.validate().is_err());
        let mut c = MvxConfig::fast_path(2);
        c.late_validation_window = 0;
        assert!(c.validate().is_err());
        let mut c = MvxConfig::fast_path(2);
        c.result_timeout_ms = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn diversified_claims_use_relaxed_metric() {
        let c = MvxConfig::selective_diversified(5, &[2, 3], 3);
        assert!(!c.claims[2].replicated);
        assert!(c.claims[2].metric == Metric::relaxed());
        assert!(c.claims[0].replicated);
    }
}
