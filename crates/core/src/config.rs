//! The runtime-provisioned MVX configuration (§4.3).
//!
//! "Based on a runtime-provisioned MVX configuration that specifies the
//! partition set (number and sizes of partitions) and the variant claims
//! (type and number of variants per partition), the monitor manages the
//! attestation, key distribution, binding and fault tolerance of
//! variants."

use mvtee_tensor::metrics::Metric;
use serde::{Deserialize, Serialize};

/// How many variants an individual partition runs, and how they are
/// generated — the *variant claim* for that partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionMvx {
    /// Number of variants (1 = no MVX, fast path in hybrid mode).
    pub variants: usize,
    /// When `true`, variants are identical replicas (the fundamental-
    /// performance experiments); when `false`, diversified variants are
    /// drawn from the pool (the real-setup experiments).
    pub replicated: bool,
    /// Consistency metric for this partition's checkpoint.
    pub metric: Metric,
}

impl PartitionMvx {
    /// A single-variant (fast path) claim.
    pub fn single() -> Self {
        PartitionMvx { variants: 1, replicated: true, metric: Metric::strict() }
    }

    /// `n` identical replicas with a strict metric.
    pub fn replicated(n: usize) -> Self {
        PartitionMvx { variants: n, replicated: true, metric: Metric::strict() }
    }

    /// `n` diversified variants with the relaxed heterogeneous metric.
    pub fn diversified(n: usize) -> Self {
        PartitionMvx { variants: n, replicated: false, metric: Metric::relaxed() }
    }

    /// Is MVX active here (more than one variant)?
    pub fn mvx_enabled(&self) -> bool {
        self.variants > 1
    }
}

/// Checkpoint path selection (§4.3, Fig 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PathMode {
    /// The default: slow path on MVX-enabled partitions, fast path on
    /// single-variant partitions.
    #[default]
    Hybrid,
    /// Force the slow path (checkpoint evaluation) everywhere — used to
    /// measure checkpointing overhead (Fig 10).
    ForceSlow,
    /// Force the fast path (fall-through) everywhere.
    ForceFast,
}

/// Checkpoint synchronisation mode (§4.3, Fig 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ExecMode {
    /// Wait for every variant at each checkpoint.
    #[default]
    Sync,
    /// Asynchronous cross-validation: proceed on majority consensus,
    /// validate stragglers when they arrive, react at the next checkpoint.
    AsyncCrossValidation,
}

/// Voting strategy at checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum VotingPolicy {
    /// All variants must agree (the security-first default).
    #[default]
    Unanimous,
    /// A strict majority suffices; minority dissent is flagged.
    Majority,
}

/// What the monitor does when a checkpoint detects divergence or a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ResponsePolicy {
    /// Stop the pipeline and surface an error (safety-critical default).
    #[default]
    Halt,
    /// Record the event, adopt the majority (or first consistent) output
    /// and continue (degraded service).
    ContinueWithMajority,
}

/// The complete MVX configuration provisioned by the model owner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MvxConfig {
    /// Number of partitions (checkpoints = partitions − 1).
    pub partitions: usize,
    /// Seed for partition-set selection from the pool.
    pub partition_seed: u64,
    /// Per-partition variant claims; length must equal `partitions`.
    pub claims: Vec<PartitionMvx>,
    /// Path mode.
    pub path: PathMode,
    /// Synchronisation mode.
    pub exec: ExecMode,
    /// Voting policy on slow-path checkpoints.
    pub voting: VotingPolicy,
    /// Response to detected inconsistencies.
    pub response: ResponsePolicy,
    /// Whether inter-TEE traffic is encrypted (disabled only by the
    /// overhead-measurement baseline of Fig 10).
    pub encrypt: bool,
}

impl MvxConfig {
    /// A full fast-path configuration: every partition single-variant.
    pub fn fast_path(partitions: usize) -> Self {
        MvxConfig {
            partitions,
            partition_seed: 0x5eed,
            claims: vec![PartitionMvx::single(); partitions],
            path: PathMode::Hybrid,
            exec: ExecMode::Sync,
            voting: VotingPolicy::Unanimous,
            response: ResponsePolicy::Halt,
            encrypt: true,
        }
    }

    /// Selective MVX: `variants` replicas on the partitions listed in
    /// `mvx_partitions`, single variants elsewhere.
    pub fn selective(partitions: usize, mvx_partitions: &[usize], variants: usize) -> Self {
        let mut cfg = Self::fast_path(partitions);
        for &p in mvx_partitions {
            if p < partitions {
                cfg.claims[p] = PartitionMvx::replicated(variants);
            }
        }
        cfg
    }

    /// Selective MVX with diversified variants (the real-setup experiments).
    pub fn selective_diversified(
        partitions: usize,
        mvx_partitions: &[usize],
        variants: usize,
    ) -> Self {
        let mut cfg = Self::selective(partitions, mvx_partitions, variants);
        for &p in mvx_partitions {
            if p < partitions {
                cfg.claims[p] = PartitionMvx::diversified(variants);
            }
        }
        cfg
    }

    /// Does partition `p` take the slow path under this configuration?
    pub fn slow_path(&self, p: usize) -> bool {
        match self.path {
            PathMode::ForceSlow => true,
            PathMode::ForceFast => false,
            PathMode::Hybrid => self.claims.get(p).map(PartitionMvx::mvx_enabled).unwrap_or(false),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MvxError::InvalidConfig`] with the violation.
    pub fn validate(&self) -> crate::Result<()> {
        if self.partitions == 0 {
            return Err(crate::MvxError::InvalidConfig("zero partitions".into()));
        }
        if self.claims.len() != self.partitions {
            return Err(crate::MvxError::InvalidConfig(format!(
                "{} claims for {} partitions",
                self.claims.len(),
                self.partitions
            )));
        }
        if self.claims.iter().any(|c| c.variants == 0) {
            return Err(crate::MvxError::InvalidConfig("a partition claims zero variants".into()));
        }
        if self.exec == ExecMode::AsyncCrossValidation && self.partitions == 1 {
            // "This mode is inherently inapplicable for full MVX without
            // partitioning."
            return Err(crate::MvxError::InvalidConfig(
                "async cross-validation requires at least two partitions".into(),
            ));
        }
        Ok(())
    }

    /// Total number of variant TEEs this configuration spawns.
    pub fn total_variants(&self) -> usize {
        self.claims.iter().map(|c| c.variants).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_path_config() {
        let c = MvxConfig::fast_path(5);
        c.validate().unwrap();
        assert_eq!(c.total_variants(), 5);
        assert!(!c.slow_path(0));
        assert!(!c.claims[0].mvx_enabled());
    }

    #[test]
    fn selective_config() {
        let c = MvxConfig::selective(5, &[2], 3);
        c.validate().unwrap();
        assert_eq!(c.total_variants(), 7);
        assert!(c.slow_path(2));
        assert!(!c.slow_path(1));
    }

    #[test]
    fn force_paths() {
        let mut c = MvxConfig::fast_path(3);
        c.path = PathMode::ForceSlow;
        assert!(c.slow_path(0));
        c.path = PathMode::ForceFast;
        c.claims[1] = PartitionMvx::replicated(3);
        assert!(!c.slow_path(1));
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(MvxConfig::fast_path(0).validate().is_err());
        let mut c = MvxConfig::fast_path(3);
        c.claims.pop();
        assert!(c.validate().is_err());
        let mut c = MvxConfig::fast_path(3);
        c.claims[0].variants = 0;
        assert!(c.validate().is_err());
        let mut c = MvxConfig::fast_path(1);
        c.exec = ExecMode::AsyncCrossValidation;
        assert!(c.validate().is_err());
    }

    #[test]
    fn diversified_claims_use_relaxed_metric() {
        let c = MvxConfig::selective_diversified(5, &[2, 3], 3);
        assert!(!c.claims[2].replicated);
        assert!(c.claims[2].metric == Metric::relaxed());
        assert!(c.claims[0].replicated);
    }
}
