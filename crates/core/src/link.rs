//! Data links between the monitor and variant TEEs.
//!
//! A [`DataLink`] wraps a frame transport with the configured protection:
//! AES-GCM-256 with per-direction keys and strict sequence numbers (the
//! paper's default), or plaintext framing (only for the Fig 10
//! no-encryption baseline). Each link is uni-directionally *owned* — the
//! deployment creates separate request and response links per variant so
//! the stage coordinator and its receiver thread never share a cipher
//! state.
//!
//! The transport underneath is dynamic: an in-memory pair for co-located
//! variant threads, or a lane of a multiplexed TCP connection for a
//! variant running as a separate OS process. The protection layer — and
//! therefore every byte on the wire — is identical either way, which is
//! what makes in-process and out-of-process panels conformance-testable
//! against each other.

use mvtee_crypto::channel::{memory_pair, FrameTransport, Handshake, Role, SecureChannel};
use crate::Result;

/// One endpoint of a protected (or deliberately unprotected) link.
pub enum DataLink {
    /// AES-GCM-256 with sequence numbers. Boxed: the cipher state (round
    /// keys + GHASH tables) dwarfs the plaintext variant.
    Encrypted(Box<SecureChannel<Box<dyn FrameTransport>>>),
    /// Plaintext frames (overhead-measurement baseline only).
    Plain(Box<dyn FrameTransport>),
}

impl std::fmt::Debug for DataLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataLink::Encrypted(c) => {
                write!(f, "DataLink::Encrypted(id={})", c.channel_id())
            }
            DataLink::Plain(_) => write!(f, "DataLink::Plain"),
        }
    }
}

impl DataLink {
    /// Sends one message.
    ///
    /// # Errors
    ///
    /// Fails when the peer is gone or encryption fails.
    pub fn send(&mut self, payload: &[u8]) -> Result<()> {
        match self {
            DataLink::Encrypted(c) => c.send(payload).map_err(Into::into),
            DataLink::Plain(t) => t.send_frame(payload.to_vec()).map_err(Into::into),
        }
    }

    /// Receives one message, blocking.
    ///
    /// # Errors
    ///
    /// Fails on disconnect, tampering, or replay.
    pub fn recv(&mut self) -> Result<Vec<u8>> {
        match self {
            DataLink::Encrypted(c) => c.recv().map_err(Into::into),
            DataLink::Plain(t) => t.recv_frame().map_err(Into::into),
        }
    }
}

impl DataLink {
    /// Builds the encrypted link over an existing transport endpoint using
    /// a session secret agreed during bootstrap. Both endpoints must use
    /// the same `channel_id` and opposite [`Role`]s.
    pub fn encrypted_from_secret(
        transport: impl FrameTransport + 'static,
        secret: &[u8],
        role: Role,
        channel_id: u32,
    ) -> Self {
        let hs = Handshake::from_pre_shared(secret, role);
        let boxed: Box<dyn FrameTransport> = Box::new(transport);
        DataLink::Encrypted(Box::new(SecureChannel::new(boxed, &hs, channel_id)))
    }

    /// Builds a plaintext link (Fig 10 no-encryption baseline only).
    pub fn plain(transport: impl FrameTransport + 'static) -> Self {
        DataLink::Plain(Box::new(transport))
    }

    /// Builds a link per the `encrypt` flag.
    pub fn from_transport(
        transport: impl FrameTransport + 'static,
        encrypt: bool,
        secret: &[u8],
        role: Role,
        channel_id: u32,
    ) -> Self {
        if encrypt {
            Self::encrypted_from_secret(transport, secret, role, channel_id)
        } else {
            Self::plain(transport)
        }
    }
}

/// A connected pair of [`DataLink`]s sharing a session secret.
///
/// `channel_id` namespaces the AEAD nonces; each (secret, channel_id)
/// pair must be unique within a deployment — the deployment derives ids
/// from (partition, variant, direction).
pub fn link_pair(encrypt: bool, session_secret: &[u8], channel_id: u32) -> (DataLink, DataLink) {
    let (a, b) = memory_pair();
    (
        DataLink::from_transport(a, encrypt, session_secret, Role::Initiator, channel_id),
        DataLink::from_transport(b, encrypt, session_secret, Role::Responder, channel_id),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encrypted_round_trip() {
        let (mut a, mut b) = link_pair(true, b"secret", 1);
        a.send(b"checkpoint tensor").unwrap();
        assert_eq!(b.recv().unwrap(), b"checkpoint tensor");
        b.send(b"ack").unwrap();
        assert_eq!(a.recv().unwrap(), b"ack");
    }

    #[test]
    fn plain_round_trip() {
        let (mut a, mut b) = link_pair(false, b"ignored", 1);
        a.send(b"payload").unwrap();
        assert_eq!(b.recv().unwrap(), b"payload");
    }

    #[test]
    fn encrypted_links_with_different_secrets_fail() {
        let (mut a, _b) = link_pair(true, b"secret-1", 1);
        let (_c, mut d) = link_pair(true, b"secret-2", 1);
        // Cross-wire: impossible with memory pairs, so emulate by sending
        // through a's transport and... instead verify same-secret works and
        // decryption integrity is covered by the crypto crate; here just
        // check disconnect detection.
        drop(_b);
        assert!(a.send(b"x").is_err());
        drop(_c);
        assert!(d.recv().is_err());
    }

    #[test]
    fn distinct_channel_ids_isolate_nonces() {
        let (mut a1, mut b1) = link_pair(true, b"s", 1);
        let (mut a2, mut b2) = link_pair(true, b"s", 2);
        a1.send(b"one").unwrap();
        a2.send(b"two").unwrap();
        assert_eq!(b1.recv().unwrap(), b"one");
        assert_eq!(b2.recv().unwrap(), b"two");
    }

    #[test]
    fn links_over_tcp_interoperate_with_memory_links() {
        // The same session secret and channel id produce the same wire
        // protection regardless of the transport underneath.
        let (client, server) = mvtee_crypto::tcp::loopback_pair().unwrap();
        let mut a = DataLink::from_transport(client, true, b"s", Role::Initiator, 5);
        let mut b = DataLink::from_transport(server, true, b"s", Role::Responder, 5);
        a.send(b"over real sockets").unwrap();
        assert_eq!(b.recv().unwrap(), b"over real sockets");
    }
}
