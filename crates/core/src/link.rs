//! Data links between the monitor and variant TEEs.
//!
//! A [`DataLink`] wraps a frame transport with the configured protection:
//! AES-GCM-256 with per-direction keys and strict sequence numbers (the
//! paper's default), or plaintext framing (only for the Fig 10
//! no-encryption baseline). Each link is uni-directionally *owned* — the
//! deployment creates separate request and response links per variant so
//! the stage coordinator and its receiver thread never share a cipher
//! state.

use mvtee_crypto::channel::{memory_pair, FrameTransport, Handshake, MemoryTransport, Role, SecureChannel};
use crate::Result;

/// One endpoint of a protected (or deliberately unprotected) link.
pub enum DataLink {
    /// AES-GCM-256 with sequence numbers. Boxed: the cipher state (round
    /// keys + GHASH tables) dwarfs the plaintext variant.
    Encrypted(Box<SecureChannel<MemoryTransport>>),
    /// Plaintext frames (overhead-measurement baseline only).
    Plain(MemoryTransport),
}

impl std::fmt::Debug for DataLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataLink::Encrypted(c) => write!(f, "DataLink::Encrypted({c:?})"),
            DataLink::Plain(_) => write!(f, "DataLink::Plain"),
        }
    }
}

impl DataLink {
    /// Sends one message.
    ///
    /// # Errors
    ///
    /// Fails when the peer is gone or encryption fails.
    pub fn send(&mut self, payload: &[u8]) -> Result<()> {
        match self {
            DataLink::Encrypted(c) => c.send(payload).map_err(Into::into),
            DataLink::Plain(t) => t.send_frame(payload.to_vec()).map_err(Into::into),
        }
    }

    /// Receives one message, blocking.
    ///
    /// # Errors
    ///
    /// Fails on disconnect, tampering, or replay.
    pub fn recv(&mut self) -> Result<Vec<u8>> {
        match self {
            DataLink::Encrypted(c) => c.recv().map_err(Into::into),
            DataLink::Plain(t) => t.recv_frame().map_err(Into::into),
        }
    }
}

impl DataLink {
    /// Builds the encrypted link over an existing transport endpoint using
    /// a session secret agreed during bootstrap. Both endpoints must use
    /// the same `channel_id` and opposite [`Role`]s.
    pub fn encrypted_from_secret(
        transport: MemoryTransport,
        secret: &[u8],
        role: Role,
        channel_id: u32,
    ) -> Self {
        let hs = Handshake::from_pre_shared(secret, role);
        DataLink::Encrypted(Box::new(SecureChannel::new(transport, &hs, channel_id)))
    }

    /// Builds a plaintext link (Fig 10 no-encryption baseline only).
    pub fn plain(transport: MemoryTransport) -> Self {
        DataLink::Plain(transport)
    }

    /// Builds a link per the `encrypt` flag.
    pub fn from_transport(
        transport: MemoryTransport,
        encrypt: bool,
        secret: &[u8],
        role: Role,
        channel_id: u32,
    ) -> Self {
        if encrypt {
            Self::encrypted_from_secret(transport, secret, role, channel_id)
        } else {
            Self::plain(transport)
        }
    }
}

/// A connected pair of [`DataLink`]s sharing a session secret.
///
/// `channel_id` namespaces the AEAD nonces; each (secret, channel_id)
/// pair must be unique within a deployment — the deployment derives ids
/// from (partition, variant, direction).
pub fn link_pair(encrypt: bool, session_secret: &[u8], channel_id: u32) -> (DataLink, DataLink) {
    let (a, b) = memory_pair();
    if encrypt {
        let hs_a = Handshake::from_pre_shared(session_secret, Role::Initiator);
        let hs_b = Handshake::from_pre_shared(session_secret, Role::Responder);
        (
            DataLink::Encrypted(Box::new(SecureChannel::new(a, &hs_a, channel_id))),
            DataLink::Encrypted(Box::new(SecureChannel::new(b, &hs_b, channel_id))),
        )
    } else {
        (DataLink::Plain(a), DataLink::Plain(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encrypted_round_trip() {
        let (mut a, mut b) = link_pair(true, b"secret", 1);
        a.send(b"checkpoint tensor").unwrap();
        assert_eq!(b.recv().unwrap(), b"checkpoint tensor");
        b.send(b"ack").unwrap();
        assert_eq!(a.recv().unwrap(), b"ack");
    }

    #[test]
    fn plain_round_trip() {
        let (mut a, mut b) = link_pair(false, b"ignored", 1);
        a.send(b"payload").unwrap();
        assert_eq!(b.recv().unwrap(), b"payload");
    }

    #[test]
    fn encrypted_links_with_different_secrets_fail() {
        let (mut a, _b) = link_pair(true, b"secret-1", 1);
        let (_c, mut d) = link_pair(true, b"secret-2", 1);
        // Cross-wire: impossible with memory pairs, so emulate by sending
        // through a's transport and... instead verify same-secret works and
        // decryption integrity is covered by the crypto crate; here just
        // check disconnect detection.
        drop(_b);
        assert!(a.send(b"x").is_err());
        drop(_c);
        assert!(d.recv().is_err());
    }

    #[test]
    fn distinct_channel_ids_isolate_nonces() {
        let (mut a1, mut b1) = link_pair(true, b"s", 1);
        let (mut a2, mut b2) = link_pair(true, b"s", 2);
        a1.send(b"one").unwrap();
        a2.send(b"two").unwrap();
        assert_eq!(b1.recv().unwrap(), b"one");
        assert_eq!(b2.recv().unwrap(), b"two");
    }
}
