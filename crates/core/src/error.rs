use std::fmt;

/// Errors produced by the MVX system.
#[derive(Debug, Clone, PartialEq)]
pub enum MvxError {
    /// Partitioning failed.
    Partition(String),
    /// Variant generation failed.
    Diversify(String),
    /// TEE-substrate failure (attestation, manifests, sealing).
    Tee(String),
    /// Runtime failure inside a variant.
    Runtime(String),
    /// A protocol message could not be encoded or decoded.
    Codec(String),
    /// A channel/transport failed (peer gone).
    Transport(String),
    /// The MVX configuration is invalid.
    InvalidConfig(String),
    /// Divergence was detected and the response policy halted execution.
    DivergenceHalt {
        /// Partition where the divergence surfaced.
        partition: usize,
        /// Human-readable detail.
        detail: String,
    },
    /// A variant crashed and the response policy halted execution.
    VariantCrashed {
        /// Partition of the crashed variant.
        partition: usize,
        /// Variant index within the partition.
        variant: usize,
        /// Crash reason as reported.
        reason: String,
    },
    /// The deployment is not in a state to serve the request.
    BadState(String),
    /// The model registry rejected or could not serve a request
    /// (provisioning fault, evicted bundle, unknown key).
    Registry(String),
}

impl fmt::Display for MvxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MvxError::Partition(e) => write!(f, "partitioning failed: {e}"),
            MvxError::Diversify(e) => write!(f, "variant generation failed: {e}"),
            MvxError::Tee(e) => write!(f, "tee failure: {e}"),
            MvxError::Runtime(e) => write!(f, "runtime failure: {e}"),
            MvxError::Codec(e) => write!(f, "codec failure: {e}"),
            MvxError::Transport(e) => write!(f, "transport failure: {e}"),
            MvxError::InvalidConfig(e) => write!(f, "invalid mvx configuration: {e}"),
            MvxError::DivergenceHalt { partition, detail } => {
                if *partition == usize::MAX {
                    write!(f, "inference halted: {detail}")
                } else {
                    write!(f, "halted on divergence at partition {partition}: {detail}")
                }
            }
            MvxError::VariantCrashed { partition, variant, reason } => {
                write!(f, "variant {variant} of partition {partition} crashed: {reason}")
            }
            MvxError::BadState(e) => write!(f, "bad deployment state: {e}"),
            MvxError::Registry(e) => write!(f, "registry failure: {e}"),
        }
    }
}

impl std::error::Error for MvxError {}

impl From<mvtee_partition::PartitionError> for MvxError {
    fn from(e: mvtee_partition::PartitionError) -> Self {
        MvxError::Partition(e.to_string())
    }
}

impl From<mvtee_diversify::DiversifyError> for MvxError {
    fn from(e: mvtee_diversify::DiversifyError) -> Self {
        MvxError::Diversify(e.to_string())
    }
}

impl From<mvtee_tee::TeeError> for MvxError {
    fn from(e: mvtee_tee::TeeError) -> Self {
        MvxError::Tee(e.to_string())
    }
}

impl From<mvtee_runtime::RuntimeError> for MvxError {
    fn from(e: mvtee_runtime::RuntimeError) -> Self {
        MvxError::Runtime(e.to_string())
    }
}

impl From<mvtee_crypto::CryptoError> for MvxError {
    fn from(e: mvtee_crypto::CryptoError) -> Self {
        MvxError::Transport(e.to_string())
    }
}

impl From<mvtee_graph::GraphError> for MvxError {
    fn from(e: mvtee_graph::GraphError) -> Self {
        MvxError::Runtime(e.to_string())
    }
}

impl From<mvtee_registry::RegistryError> for MvxError {
    fn from(e: mvtee_registry::RegistryError) -> Self {
        MvxError::Registry(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            MvxError::Partition("p".into()),
            MvxError::Diversify("d".into()),
            MvxError::Tee("t".into()),
            MvxError::Runtime("r".into()),
            MvxError::Codec("c".into()),
            MvxError::Transport("x".into()),
            MvxError::InvalidConfig("i".into()),
            MvxError::DivergenceHalt { partition: 2, detail: "mismatch".into() },
            MvxError::VariantCrashed { partition: 1, variant: 0, reason: "oob".into() },
            MvxError::BadState("b".into()),
            MvxError::Registry("evicted".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conversions() {
        let e: MvxError = mvtee_tee::TeeError::ReplayDetected("n".into()).into();
        assert!(matches!(e, MvxError::Tee(_)));
        let e: MvxError = mvtee_crypto::CryptoError::AuthenticationFailed.into();
        assert!(matches!(e, MvxError::Transport(_)));
    }
}
