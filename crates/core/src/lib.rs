//! MVTEE: Multi-Variant Trusted Execution for secure model inference.
//!
//! This crate is the paper's primary contribution: a TEE-based model
//! inference system that runs multiple, diversified inference **variants**
//! in parallel and cross-checks their outputs at **checkpoints** created by
//! random-balanced model partitioning. A defect or exploit hits one
//! variant; the others crash differently or disagree — and the monitor
//! detects it before damage propagates.
//!
//! # Architecture (paper §3–§4)
//!
//! * **Offline phase** — [`deployment::OfflinePhase`] partitions the model
//!   ([`mvtee_partition`]), generates diversified variant bundles
//!   ([`mvtee_diversify`]) and seals them with per-variant keys
//!   ([`mvtee_tee`]).
//! * **Online phase** — [`deployment::Deployment`] spawns the monitor TEE
//!   and one variant TEE per (partition, variant) pair (cross-process
//!   user-space monitoring: each simulated TEE is its own thread with its
//!   own enclave state and encrypted channels). Variants boot through the
//!   **two-stage bootstrap** of Fig 5/6: attestation → key release →
//!   bundle decryption → one-time second-stage manifest → `exec()`.
//! * **Execution** — [`pipeline`] runs batches through the partition
//!   stages **sequentially** or **pipelined**, with the slow path
//!   (checkpoint consistency checks + [`voting`]) on MVX-enabled
//!   partitions and the fast path elsewhere (hybrid mode), in **sync** or
//!   **async cross-validation** mode.
//! * **Selective MVX** — [`config::MvxConfig`] controls vertical (which
//!   partitions) and horizontal (variants per partition) scaling.
//!
//! # Quickstart
//!
//! ```
//! use mvtee::prelude::*;
//! use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 7)?;
//! let mut deployment = Deployment::builder(model)
//!     .partitions(3)
//!     .mvx_on_partition(1, 3) // 3 variants on the 2nd partition
//!     .build()?;
//! let input = mvtee_tensor::Tensor::ones(&[1, 3, 32, 32]);
//! let output = deployment.infer(&input)?;
//! assert_eq!(output.dims()[0], 1);
//! deployment.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod deployment;
pub mod events;
pub mod link;
pub mod messages;
pub mod pipeline;
pub mod recovery;
pub mod supervisor;
pub mod transcript;
pub mod variant_host;
pub mod voting;
pub mod worker;

mod error;

pub use config::{
    DegradationPolicy, ExecMode, MvxConfig, PartitionMvx, PathMode, RecoveryPolicy,
    ResponsePolicy, SupervisionPolicy, VotingPolicy,
};
pub use deployment::{build_specs, select_partition_set, Deployment, DeploymentBuilder, OfflinePhase, SpecPatch};
pub use error::MvxError;
pub use events::{EventLog, MonitorEvent};
pub use recovery::{RecoveryRequest, ResyncPoint};
pub use supervisor::HeartbeatMonitor;
pub use transcript::{
    verify_transcript, AuditError, AuditSummary, TranscriptEntry, TranscriptLog,
    TranscriptVerdict,
};
pub use voting::Verdict;
pub use worker::{run_worker, worker_binary, VariantPlacement, WorkerPlacement};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MvxError>;

/// Convenience re-exports for downstream users.
pub mod prelude {
    pub use crate::config::{
        DegradationPolicy, ExecMode, MvxConfig, PathMode, RecoveryPolicy, ResponsePolicy,
        VotingPolicy,
    };
    pub use crate::deployment::{Deployment, DeploymentBuilder};
    pub use crate::events::MonitorEvent;
    pub use crate::MvxError;
}
