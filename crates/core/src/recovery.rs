//! The recovery manager: closes the detect→react loop.
//!
//! Detection alone (PR 2's campaign engine) leaves a deployment that
//! permanently degrades on the first fault: a crashed or divergent
//! variant is dropped and later batches "continue with survivors"
//! forever, quietly shrinking the panel until the security guarantee
//! becomes a fast path. The recovery manager restores full panel
//! strength mid-stream:
//!
//! 1. a coordinator **quarantines** the offending variant (bumping its
//!    channel epoch so in-flight pre-quarantine frames are recognisably
//!    stale) and files a [`RecoveryRequest`] carrying the last *verified*
//!    checkpoint payload,
//! 2. the manager **re-provisions** a replacement through the same path
//!    a partial update uses — fresh sealed bundle under a fresh variant
//!    key, fresh enclave, full Fig 6 re-attestation and re-binding
//!    (append-only, generation-scoped anti-fork ids) — with a
//!    configurable retry budget and exponential backoff,
//! 3. the replacement serves a **probation** batch: it must reproduce
//!    the last verified checkpoint outputs under the partition's
//!    consistency metric before it is allowed anywhere near live
//!    traffic,
//! 4. on success the manager hands the coordinator a fresh link plus an
//!    already-running receiver thread via [`RxEvent::Recovered`]; the
//!    variant rejoins the panel on the next batch without replaying
//!    batch history.

use crate::config::{RecoveryPolicy, SupervisionPolicy};
use crate::deployment::{
    bootstrap_variant, seal_artifact, BindingRecord, BootstrapCtx, VariantArtifact,
};
use crate::events::{EventLog, MonitorEvent};
use crate::link::DataLink;
use crate::messages::{decode, encode, StageRequest, StageResponse};
use crate::pipeline::{spawn_rx_thread, RxEvent, VariantLink};
use crate::supervisor::HeartbeatMonitor;
use crate::variant_host::VariantHandle;
use crate::worker::{
    place_variant, placement_for, HostFaults, PlacedVariant, VariantPlacement, WorkerRegistry,
    WORKER_LANES,
};
use crate::{MvxError, Result};
use crossbeam::channel::{Receiver, Sender};
use mvtee_crypto::channel::{FrameTransport, Role};
use mvtee_crypto::mux;
use mvtee_crypto::tcp::TcpTransport;
use mvtee_diversify::{VariantGenerator, VariantId, VariantSpec};
use mvtee_faults::{Attack, FrameFlip};
use mvtee_graph::Graph;
use mvtee_tee::{Platform, TeeKind};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The newest checkpoint payload that verified (quorum or full
/// agreement): the resynchronisation point a recovered variant must
/// reproduce during probation before rejoining mid-stream.
#[derive(Debug, Clone)]
pub struct ResyncPoint {
    /// Batch id of the verified checkpoint.
    pub batch: u64,
    /// The stage inputs that produced it.
    pub inputs: Vec<mvtee_tensor::Tensor>,
    /// The verified stage outputs (the majority/agreed value).
    pub outputs: Vec<mvtee_tensor::Tensor>,
}

/// A coordinator's request to re-provision one quarantined variant.
pub struct RecoveryRequest {
    /// Partition index.
    pub partition: usize,
    /// Variant index within the partition.
    pub variant: usize,
    /// The post-quarantine channel epoch the replacement must emit under.
    pub epoch: u64,
    /// Why the variant was quarantined.
    pub reason: String,
    /// Last verified checkpoint payload (`None` if nothing verified yet —
    /// probation is skipped and the freshly attested variant rejoins
    /// directly).
    pub resync: Option<ResyncPoint>,
    /// Sender side of the coordinator's merged response queue.
    pub merged_tx: Sender<RxEvent>,
}

/// Everything the manager needs to rebuild any variant of the
/// deployment: a snapshot of the launch-time provisioning state.
pub(crate) struct RecoveryContext {
    /// Simulated hardware platform.
    pub platform: Platform,
    /// Public init-variant code.
    pub init_code: Vec<u8>,
    /// Per-partition subgraphs (the clean copies — a replacement never
    /// inherits a predecessor's sealed-memory faults).
    pub subgraphs: Vec<Graph>,
    /// Per-(partition, variant) base specs.
    pub specs: Vec<Vec<VariantSpec>>,
    /// Per-partition consistency metrics (probation comparison).
    pub metrics: Vec<mvtee_tensor::metrics::Metric>,
    /// Data-plane encryption flag.
    pub encrypt: bool,
    /// Platform-wide simulated CVE (persists across re-provisioning: the
    /// host software stack does not change when an enclave restarts).
    pub attack: Option<Attack>,
    /// Platform-wide simulated FrameFlip (persists likewise).
    pub frameflip: Option<FrameFlip>,
    /// Default TEE flavour.
    pub tee_kind_default: TeeKind,
    /// Per-(partition, variant) placements: a replacement runs where its
    /// predecessor ran — a killed worker process heals back into a fresh
    /// worker process, re-attested from scratch.
    pub placements: HashMap<(usize, usize), VariantPlacement>,
    /// Override path of the `mvtee-variantd` binary.
    pub worker_bin: Option<PathBuf>,
    /// Shared append-only binding registry.
    pub bindings: Arc<Mutex<Vec<BindingRecord>>>,
    /// Deployment generation the pipeline is running under.
    pub generation: u64,
    /// Audit event log.
    pub events: EventLog,
    /// Retry budget and backoff.
    pub policy: RecoveryPolicy,
    /// Worker supervision policy (heartbeats, reconnect-and-resume).
    pub supervision: SupervisionPolicy,
    /// Retained worker accept sockets, for reconnect-and-resume.
    pub registry: WorkerRegistry,
    /// Replacement worker handles, shared with the deployment so fault
    /// injection (`kill_worker`) and pid listing reach respawned workers.
    pub respawned: Arc<Mutex<Vec<VariantHandle>>>,
    /// Heartbeat watchers — respawned and reconnected workers register
    /// here so they are supervised exactly like first-launch ones.
    pub monitor: HeartbeatMonitor,
}

/// Spawns the recovery-manager thread. It exits when every
/// [`RecoveryRequest`] sender (one per coordinator plus the deployment's
/// own) has been dropped, then joins the replacement variant threads it
/// provisioned.
pub(crate) fn spawn_recovery_manager(
    ctx: RecoveryContext,
    requests: Receiver<RecoveryRequest>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("recovery-manager".into())
        .spawn(move || {
            let mut seq: u64 = 0;
            let time_to_recovery =
                mvtee_telemetry::histogram("core.recovery.time_to_recovery_ns");
            let crash_loop_trips = mvtee_telemetry::counter("core.recovery.crash_loop_trips");
            // Per-variant death timestamps inside the crash-loop window.
            let mut death_log: HashMap<(usize, usize), VecDeque<Instant>> = HashMap::new();
            while let Ok(req) = requests.recv() {
                let started = Instant::now();
                // Crash-loop detection: a variant dying faster than it
                // heals would otherwise respawn forever, soaking the
                // retry budget and masking a persistent fault. Once more
                // than `crash_loop_budget` deaths land inside the window
                // the variant is abandoned to the degradation policy.
                if ctx.policy.crash_loop_budget > 0 {
                    let window = ctx.policy.crash_loop_window();
                    let deaths = death_log.entry((req.partition, req.variant)).or_default();
                    let now = Instant::now();
                    while deaths.front().is_some_and(|t| now.duration_since(*t) > window) {
                        deaths.pop_front();
                    }
                    deaths.push_back(now);
                    if deaths.len() as u64 > u64::from(ctx.policy.crash_loop_budget) {
                        crash_loop_trips.inc();
                        ctx.events.record(MonitorEvent::RecoveryFailed {
                            partition: req.partition,
                            variant: req.variant,
                            attempts: 0,
                            reason: format!(
                                "crash-loop budget exhausted: {} deaths inside {:?} \
                                 (budget {})",
                                deaths.len(),
                                window,
                                ctx.policy.crash_loop_budget
                            ),
                        });
                        continue;
                    }
                }
                // Recovery work forms its own trace keyed by the
                // quarantined variant's coordinates and channel epoch;
                // probation replay spans nest under it via the ambient
                // context.
                let tracer = mvtee_telemetry::trace::recorder();
                let recovery_ctx =
                    mvtee_telemetry::trace::TraceCtx::for_recovery(req.partition, req.variant, req.epoch);
                let recovery_span = tracer
                    .span(recovery_ctx, "core.recovery", "recovery")
                    .arg("partition", req.partition)
                    .arg("variant", req.variant)
                    .arg("epoch", req.epoch);
                mvtee_telemetry::trace::set_current(recovery_span.ctx());
                let attempts_allowed = ctx.policy.max_retries.saturating_add(1);
                let mut last_err = req.reason.clone();
                let mut recovered = false;
                for attempt in 0..attempts_allowed {
                    if attempt > 0 {
                        std::thread::sleep(ctx.policy.backoff(attempt - 1));
                    }
                    ctx.events.record(MonitorEvent::RecoveryStarted {
                        partition: req.partition,
                        variant: req.variant,
                        attempt,
                    });
                    seq += 1;
                    match attempt_recovery(&ctx, &req, seq) {
                        Ok(handle) => {
                            ctx.respawned
                                .lock()
                                .expect("respawned registry poisoned")
                                .push(handle);
                            recovered = true;
                            break;
                        }
                        Err(e) => last_err = e.to_string(),
                    }
                }
                drop(recovery_span);
                if recovered {
                    time_to_recovery.record_duration(started.elapsed());
                    ctx.events.record(MonitorEvent::Recovered {
                        partition: req.partition,
                        variant: req.variant,
                    });
                } else {
                    ctx.events.record(MonitorEvent::RecoveryFailed {
                        partition: req.partition,
                        variant: req.variant,
                        attempts: attempts_allowed,
                        reason: last_err,
                    });
                }
            }
            let drained: Vec<VariantHandle> = {
                let mut respawned =
                    ctx.respawned.lock().expect("respawned registry poisoned");
                respawned.drain(..).collect()
            };
            for h in drained {
                h.join();
            }
        })
        .expect("thread spawn cannot fail")
}

/// One re-provisioning attempt: seal a fresh bundle, launch a fresh
/// enclave, re-attest, probation-check, hand the link to the
/// coordinator. Returns the replacement's thread handle on success.
fn attempt_recovery(
    ctx: &RecoveryContext,
    req: &RecoveryRequest,
    seq: u64,
) -> Result<VariantHandle> {
    let (p, v) = (req.partition, req.variant);
    let mut spec = ctx.specs[p][v].clone();
    // Recovery ids live in their own generation-scoped space so they can
    // never collide with launch ids (p*1000+v) or update ids
    // ((gen+1)*1_000_000 + …) under the anti-fork uniqueness check.
    spec.id = VariantId(900_000_000 + ctx.generation * 1_000_000 + seq);
    let generator = VariantGenerator::new(spec.id.0 ^ 0x5eed_4eca);
    let artifact = seal_artifact(
        &ctx.init_code,
        &ctx.subgraphs[p],
        &generator,
        p,
        &spec,
        format!("/enc/p{p}/v{v}/r{seq}"),
        &format!("p{p}-v{v}-recovered-{seq}"),
    )?;
    let tee_kind = if artifact.spec.tee == mvtee_diversify::TeeBackend::Tdx {
        TeeKind::Tdx
    } else {
        ctx.tee_kind_default
    };
    let placement = ctx.placements.get(&(p, v)).copied().unwrap_or_default();
    // Simulated platform faults persist across re-provisioning (the host
    // software stack does not change when an enclave restarts); liveness
    // faults are transient (scheduler stalls, lossy channels) — a fresh
    // enclave gets a fresh channel and does not re-inherit them. An
    // out-of-process replacement carries no simulated faults at all
    // (`place_variant` enforces it): the fresh worker is a fresh stack.
    let faults = match placement {
        VariantPlacement::InProcess => HostFaults {
            attack: ctx.attack,
            frameflip: ctx.frameflip.clone(),
            liveness: None,
        },
        VariantPlacement::OutOfProcess => HostFaults::default(),
    };
    // Reconnect-and-resume: a live worker whose socket dropped redials
    // the retained port. Accepting that redial and re-placing over the
    // fresh connection (full re-attestation + probation, like any
    // recovery) skips the expensive respawn; if no redial arrives
    // inside the window, fall through to a full respawn. Wire faults
    // are transient, like liveness faults — a replacement's fresh
    // connection does not re-inherit them.
    let mut reconnected = false;
    let placed = match placement {
        VariantPlacement::OutOfProcess
            if ctx.supervision.enabled && ctx.supervision.reconnect =>
        {
            match try_reconnect_worker(ctx, p, v, &artifact, tee_kind)? {
                Some(placed) => {
                    reconnected = true;
                    placed
                }
                None => place_variant(
                    placement,
                    ctx.worker_bin.as_deref(),
                    p,
                    v,
                    tee_kind,
                    &ctx.platform,
                    &ctx.init_code,
                    &artifact,
                    ctx.encrypt,
                    faults,
                    None,
                    &ctx.supervision,
                    Some(&ctx.registry),
                )?,
            }
        }
        _ => place_variant(
            placement,
            ctx.worker_bin.as_deref(),
            p,
            v,
            tee_kind,
            &ctx.platform,
            &ctx.init_code,
            &artifact,
            ctx.encrypt,
            faults,
            None,
            &ctx.supervision,
            Some(&ctx.registry),
        )?,
    };
    let handle = placed.handle;
    let heartbeat = placed.heartbeat;
    // `provision` owns every monitor-side transport: any failure inside
    // drops them (and the heartbeat lane with them), which closes the
    // variant's channels, which lets the replacement host exit — so
    // dropping `handle` on the error path joins promptly instead of
    // deadlocking on a half-bootstrapped TEE.
    provision(ctx, req, &artifact, tee_kind, placed.boot, placed.request, placed.response)?;
    // Supervise only once the replacement is actually serving: watching
    // earlier would pin the transport open across a failed provision.
    if ctx.supervision.enabled {
        if let Some(hb) = heartbeat {
            ctx.monitor.watch(p, v, hb, &ctx.supervision, ctx.events.clone());
        }
    }
    if reconnected {
        ctx.events.record(MonitorEvent::WorkerReconnected { partition: p, variant: v });
    }
    Ok(handle)
}

/// Accepts a resumed worker's redial on the retained listener, within
/// the policy's reconnect window. `Ok(None)` means no redial arrived
/// (or no socket was retained) and the caller should respawn instead.
fn try_reconnect_worker(
    ctx: &RecoveryContext,
    p: usize,
    v: usize,
    artifact: &VariantArtifact,
    tee_kind: TeeKind,
) -> Result<Option<PlacedVariant>> {
    // Clone the listener out so provisioning never holds the registry
    // lock (pipeline teardown clears the registry concurrently).
    let listener = {
        let registry = ctx.registry.lock().expect("worker registry poisoned");
        match registry.get(&(p, v)) {
            Some(l) => match l.try_clone() {
                Ok(l) => l,
                Err(_) => return Ok(None),
            },
            None => return Ok(None),
        }
    };
    let deadline = Instant::now() + ctx.supervision.reconnect_window();
    let stream = loop {
        match listener.accept() {
            Ok((stream, _)) => break stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Ok(None);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return Ok(None),
        }
    };
    stream
        .set_nonblocking(false)
        .map_err(|e| MvxError::Transport(format!("reconnect stream blocking: {e}")))?;
    let transport =
        TcpTransport::new(stream).map_err(|e| MvxError::Transport(e.to_string()))?;
    let mut lanes = mux::split(transport, &WORKER_LANES);
    let heartbeat = lanes.pop().expect("four lanes");
    let response = lanes.pop().expect("four lanes");
    let request = lanes.pop().expect("four lanes");
    let boot = lanes.pop().expect("four lanes");
    let placement = placement_for(
        p,
        v,
        tee_kind,
        &ctx.platform,
        &ctx.init_code,
        artifact,
        ctx.encrypt,
        ctx.supervision.heartbeat_interval_ms,
    );
    boot.send_frame(encode(&placement)?)
        .map_err(|e| MvxError::Transport(format!("reconnect placement send: {e}")))?;
    Ok(Some(PlacedVariant {
        // The original handle still owns the worker `Child`; the
        // resumed placement must not double-own the process.
        handle: VariantHandle::detached(p, v),
        boot: Box::new(boot),
        request: Box::new(request),
        response: Box::new(response),
        heartbeat: Some(heartbeat),
    }))
}

/// The fallible monitor-side half of one attempt: bootstrap, probation,
/// hand-off. Consumes the transports (see [`attempt_recovery`]).
fn provision(
    ctx: &RecoveryContext,
    req: &RecoveryRequest,
    artifact: &VariantArtifact,
    tee_kind: TeeKind,
    boot_monitor: Box<dyn FrameTransport>,
    req_monitor: Box<dyn FrameTransport>,
    resp_monitor: Box<dyn FrameTransport>,
) -> Result<()> {
    let (p, v) = (req.partition, req.variant);
    let boot_ctx = BootstrapCtx {
        platform: &ctx.platform,
        init_code: &ctx.init_code,
        generation: ctx.generation,
        bindings: &ctx.bindings,
        events: &ctx.events,
    };
    let session_secret =
        bootstrap_variant(&boot_ctx, p, v, artifact, tee_kind, boot_monitor.as_ref())?;
    let mut tx =
        DataLink::from_transport(req_monitor, ctx.encrypt, &session_secret, Role::Initiator, 0);
    let mut rx =
        DataLink::from_transport(resp_monitor, ctx.encrypt, &session_secret, Role::Initiator, 1);

    // Probation: replay the last verified checkpoint inputs and demand
    // the verified outputs back under the partition's metric before the
    // replacement is allowed to vote on live traffic.
    if let Some(resync) = &req.resync {
        tx.send(&encode(&StageRequest::Input {
            batch: resync.batch,
            trace: mvtee_telemetry::trace::current().as_pair(),
            tensors: resync.inputs.clone(),
        })?)
        .map_err(|e| MvxError::Transport(e.to_string()))?;
        let frame = rx.recv().map_err(|e| MvxError::Transport(e.to_string()))?;
        match decode::<StageResponse>(&frame)? {
            StageResponse::Output { tensors, .. } => {
                let metric = ctx.metrics[p];
                let matches = tensors.len() == resync.outputs.len()
                    && tensors
                        .iter()
                        .zip(&resync.outputs)
                        .all(|(a, b)| metric.check(a, b));
                if !matches {
                    return Err(MvxError::Tee(format!(
                        "probation failed: replacement p{p}v{v} diverged from the \
                         verified checkpoint at batch {}",
                        resync.batch
                    )));
                }
            }
            StageResponse::Crashed { reason, .. } => {
                return Err(MvxError::Tee(format!(
                    "probation failed: replacement p{p}v{v} crashed: {reason}"
                )));
            }
        }
    }

    let rx_thread = spawn_rx_thread(v, req.epoch, rx, req.merged_tx.clone());
    let link = VariantLink {
        tx,
        description: format!("{} (recovered)", artifact.spec.describe()),
    };
    req.merged_tx
        .send(RxEvent::Recovered { variant: v, epoch: req.epoch, link, rx_thread })
        .map_err(|_| MvxError::Transport("pipeline gone before rejoin".into()))?;
    Ok(())
}
