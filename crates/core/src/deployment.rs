//! End-to-end MVTEE deployments: the offline tooling phase (§5.1) plus the
//! online monitor/variant runtime (§5.2).
//!
//! [`DeploymentBuilder`] is the public entry point. It drives:
//!
//! 1. **Offline**: random-balanced partitioning, multi-level variant
//!    generation, per-variant key creation and sealing of `{second-stage
//!    manifest, variant bundle}` payloads — the artifacts a real
//!    deployment would bake into container images.
//! 2. **Online**: the untrusted orchestrator (simulated inline) places
//!    variant TEEs loaded only with the public init-variant; the monitor
//!    attests each one (Fig 6), releases the variant keys, verifies the
//!    one-time second-stage manifest installation, binds the variants, and
//!    wires the encrypted data plane.
//!
//! The resulting [`Deployment`] serves [`Deployment::infer`] (sequential)
//! and [`Deployment::infer_stream`] (pipelined) and supports partial/full
//! variant updates.

use crate::config::{MvxConfig, PartitionMvx, ResponsePolicy};
use crate::events::{EventLog, MonitorEvent};
use crate::link::DataLink;
use crate::messages::{
    bootstrap_session_secret, bootstrap_transcript_hash, decode, encode, BootstrapRequest,
    BootstrapResponse, InstallEvidence, KeyRelease,
};
use crate::pipeline::{
    spawn_pipeline, spawn_rx_thread, CoordMsg, PipelineHandles, RxEvent, StageJob, StagePolicy,
    StageRuntime, VariantLink,
};
use crate::recovery::{spawn_recovery_manager, RecoveryContext, RecoveryRequest};
use crate::supervisor::HeartbeatMonitor;
use crate::transcript::TranscriptLog;
use crate::variant_host::{SealedVariantPayload, VariantHandle};
use crate::worker::{place_variant, HostFaults, VariantPlacement, WorkerRegistry};
use crate::{MvxError, Result};
use crossbeam::channel::{unbounded, Sender};
use mvtee_crypto::channel::{FrameTransport, Role};
use mvtee_crypto::gcm::AesGcm;
use mvtee_crypto::sha256::sha256;
use mvtee_crypto::x25519::EphemeralKeypair;
use mvtee_crypto::{random_array, random_bytes};
use mvtee_diversify::spec::spread_specs;
use mvtee_telemetry::trace::TraceCtx;
use mvtee_tensor::metrics::Metric;
use mvtee_diversify::{VariantGenerator, VariantId, VariantSpec};
use mvtee_faults::{flip_weight_bits, Attack, BitFlipFault, FrameFlip, LivenessFault, NetFault};
use mvtee_graph::zoo::Model;
use mvtee_graph::{Graph, ValueId};
use mvtee_partition::{PartitionPool, PartitionSet, Partitioner, PoolConfig};
use mvtee_registry::Registry;
use mvtee_runtime::{EngineConfig, EngineKind, KernelStrategy};
use mvtee_tee::{
    compute_measurement, AttestationReport, CodeIdentity, Enclave, Manifest, Platform,
    ProtectedFs, TeeKind,
};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A partial override of one variant's spec (builder-level control used
/// by experiments: defender hardening, ASLR seeds, engine swaps).
#[derive(Debug, Clone, Default)]
pub struct SpecPatch {
    /// Replace the engine configuration.
    pub engine: Option<EngineConfig>,
    /// Replace the hardening capability list.
    pub hardening: Option<Vec<String>>,
    /// Replace the ASLR seed.
    pub aslr_seed: Option<u64>,
    /// Replace the graph-transform list.
    pub transforms: Option<Vec<mvtee_diversify::TransformKind>>,
    /// Replace this variant's intra-op thread count (applied after any
    /// engine swap, so it composes with `engine`). Thread counts are
    /// freely diversifiable: the runtime pool is bit-deterministic.
    pub intra_op_threads: Option<usize>,
    /// Replace this variant's GEMM-family kernel strategy (applied after
    /// any engine swap, so it composes with `engine`). Unlike thread
    /// counts, different strategies round differently — a panel mixing
    /// them must opt into a tolerance via
    /// `DeploymentBuilder::checkpoint_metric`.
    pub kernel_strategy: Option<KernelStrategy>,
}

impl SpecPatch {
    /// A patch that only swaps the engine configuration.
    pub fn engine(engine: EngineConfig) -> Self {
        SpecPatch { engine: Some(engine), ..Default::default() }
    }

    /// A patch that only sets the intra-op thread count.
    pub fn threads(threads: usize) -> Self {
        SpecPatch { intra_op_threads: Some(threads), ..Default::default() }
    }

    /// A patch that only pins the GEMM-family kernel strategy.
    pub fn kernel(strategy: KernelStrategy) -> Self {
        SpecPatch { kernel_strategy: Some(strategy), ..Default::default() }
    }

    /// Applies the patch to a spec.
    pub fn apply(&self, spec: &mut VariantSpec) {
        if let Some(e) = &self.engine {
            spec.engine = e.clone();
        }
        if let Some(h) = &self.hardening {
            spec.hardening = h.clone();
        }
        if let Some(a) = self.aslr_seed {
            spec.aslr_seed = a;
        }
        if let Some(t) = &self.transforms {
            spec.transforms = t.clone();
        }
        if let Some(n) = self.intra_op_threads {
            spec.engine.intra_op_threads = n.max(1);
        }
        if let Some(ks) = self.kernel_strategy {
            spec.engine.kernel_strategy = ks;
        }
    }
}

/// One variant's offline artifacts.
#[derive(Clone)]
pub struct VariantArtifact {
    /// The full spec (monitor-side knowledge).
    pub spec: VariantSpec,
    /// Sealed payload as placed on host storage.
    pub sealed: ([u8; 16], Vec<u8>),
    /// Host path of the sealed payload.
    pub bundle_path: String,
    /// The variant-specific key-derivation key (released after
    /// attestation).
    pub variant_key: [u8; 32],
    /// Expected hash of the second-stage manifest.
    pub expected_manifest_hash: [u8; 32],
    /// First-stage (public) manifest.
    pub init_manifest: Manifest,
}

/// All artifacts produced by the offline tool for one deployment.
pub struct OfflinePhase {
    /// Model graph (with weights).
    pub graph: Graph,
    /// The chosen partition set.
    pub partition_set: PartitionSet,
    /// Extracted per-stage subgraphs.
    pub subgraphs: Vec<Graph>,
    /// Artifacts per partition, per variant.
    pub artifacts: Vec<Vec<VariantArtifact>>,
    /// The public init-variant "binary".
    pub init_code: Vec<u8>,
}

impl OfflinePhase {
    /// Runs the offline phase: partitioning, variant generation, sealing.
    ///
    /// # Errors
    ///
    /// Propagates partitioning and variant-generation failures.
    pub fn run(
        graph: &Graph,
        config: &MvxConfig,
        variant_seed: u64,
        overrides: &HashMap<(usize, usize), SpecPatch>,
    ) -> Result<Self> {
        Self::run_with_pool(graph, config, variant_seed, overrides, None)
    }

    /// [`OfflinePhase::run`] selecting the partition set from a
    /// pre-established [`PartitionPool`] ("the variants are dynamically
    /// initialized from the pre-established variant pool", §3.1). The pool
    /// must contain a set with `config.partitions` stages; selection is
    /// randomized by `config.partition_seed`.
    ///
    /// # Errors
    ///
    /// Fails when the pool lacks a matching set, plus all [`OfflinePhase::run`]
    /// failure modes.
    pub fn run_with_pool(
        graph: &Graph,
        config: &MvxConfig,
        variant_seed: u64,
        overrides: &HashMap<(usize, usize), SpecPatch>,
        pool: Option<&PartitionPool>,
    ) -> Result<Self> {
        Self::run_with_options(graph, config, variant_seed, overrides, pool, &HashMap::new())
    }

    /// [`OfflinePhase::run_with_pool`] additionally sealing weight
    /// bit-flip faults into selected variants' payloads: the fault-injection
    /// path of the campaign engine. A `(partition, variant) → BitFlipFault`
    /// entry corrupts that one variant's subgraph copy *before* variant
    /// generation, modelling a Rowhammer/Terminal-Brain-Damage flip in one
    /// TEE's sealed model memory; all other variants seal the clean
    /// subgraph.
    ///
    /// # Errors
    ///
    /// All [`OfflinePhase::run_with_pool`] failure modes.
    pub fn run_with_options(
        graph: &Graph,
        config: &MvxConfig,
        variant_seed: u64,
        overrides: &HashMap<(usize, usize), SpecPatch>,
        pool: Option<&PartitionPool>,
        weight_faults: &HashMap<(usize, usize), BitFlipFault>,
    ) -> Result<Self> {
        config.validate()?;
        let set = if let Some(pool) = pool {
            pool.select_random(config.partitions, config.partition_seed)
                .cloned()
                .ok_or_else(|| {
                    MvxError::InvalidConfig(format!(
                        "partition pool has no {}-stage set",
                        config.partitions
                    ))
                })?
        } else {
            select_partition_set(graph, config.partitions, config.partition_seed)?
        };
        set.verify(graph)?;
        let subgraphs = set.extract_subgraphs(graph)?;
        let generator = VariantGenerator::new(variant_seed);
        let init_code = b"mvtee init-variant binary v1.0".to_vec();

        let mut artifacts = Vec::with_capacity(config.partitions);
        for (p, claim) in config.claims.iter().enumerate() {
            let specs = build_specs(p, claim, variant_seed, overrides);
            let mut row = Vec::with_capacity(specs.len());
            for (v, spec) in specs.into_iter().enumerate() {
                let faulted: Option<Graph> = weight_faults.get(&(p, v)).map(|fault| {
                    let mut g = subgraphs[p].clone();
                    let _ = flip_weight_bits(&mut g, fault.strategy, fault.count, fault.seed);
                    g
                });
                row.push(seal_artifact(
                    &init_code,
                    faulted.as_ref().unwrap_or(&subgraphs[p]),
                    &generator,
                    p,
                    &spec,
                    format!("/enc/p{p}/v{v}"),
                    &format!("p{p}-v{v}"),
                )?);
            }
            artifacts.push(row);
        }
        Ok(OfflinePhase {
            graph: graph.clone(),
            partition_set: set,
            subgraphs,
            artifacts,
            init_code,
        })
    }
}

/// Selects (or trivially constructs, for one partition) a random-balanced
/// partition set — the canonical selection shared by the deployment and
/// the benchmark harness.
pub fn select_partition_set(
    graph: &Graph,
    partitions: usize,
    seed: u64,
) -> Result<PartitionSet> {
    if partitions == 1 {
        let all: Vec<mvtee_graph::NodeId> = graph.nodes().iter().map(|n| n.id).collect();
        return Ok(PartitionSet::from_groups(graph, vec![all], seed)?);
    }
    Ok(Partitioner::new(partitions).partition_best_of(graph, seed, 4)?)
}

/// Seals one variant's payload (second-stage manifest + bundle) under a
/// fresh variant key and assembles its artifact — the single construction
/// path used by the offline phase, partial updates, key rotation and the
/// recovery manager.
pub(crate) fn seal_artifact(
    init_code: &[u8],
    subgraph: &Graph,
    generator: &VariantGenerator,
    partition: usize,
    spec: &VariantSpec,
    bundle_path: String,
    manifest_tag: &str,
) -> Result<VariantArtifact> {
    let bundle = generator.materialize(subgraph, partition, spec)?;
    let mut second = Manifest::main_variant(format!("variant-{manifest_tag}"));
    second.encrypt_file(bundle_path.clone());
    let payload = SealedVariantPayload { manifest: second.clone(), bundle: bundle.to_bytes() };
    let payload_bytes = encode(&payload)?;
    let variant_key: [u8; 32] = random_array();
    let mut sealer = ProtectedFs::new();
    sealer.write(&variant_key, &bundle_path, &payload_bytes);
    let sealed = sealer.export(&bundle_path).expect("just written");
    let mut init_manifest = Manifest::init_variant(format!("init-{manifest_tag}"));
    init_manifest.trust_file("/bin/init-variant", init_code);
    init_manifest.encrypt_file(bundle_path.clone());
    Ok(VariantArtifact {
        spec: spec.clone(),
        sealed,
        bundle_path,
        variant_key,
        expected_manifest_hash: second.hash(),
        init_manifest,
    })
}

/// The monitor-side state a bootstrap needs — borrowed from the
/// deployment at launch time, or from the recovery manager's snapshot
/// when a replacement variant re-attests mid-stream.
pub(crate) struct BootstrapCtx<'a> {
    /// Simulated hardware platform (report verification).
    pub platform: &'a Platform,
    /// Public init-variant code (expected first-stage measurement).
    pub init_code: &'a [u8],
    /// Generation the anti-fork uniqueness check is scoped to.
    pub generation: u64,
    /// Shared append-only binding registry.
    pub bindings: &'a Mutex<Vec<BindingRecord>>,
    /// Audit event log.
    pub events: &'a EventLog,
}

/// Monitor-side bootstrap of one variant (Fig 6 steps ②–⑦): challenge,
/// evidence verification, sealed key release, install-evidence check and
/// secure binding. Returns the session secret for the data-plane links.
pub(crate) fn bootstrap_variant(
    ctx: &BootstrapCtx<'_>,
    partition: usize,
    variant: usize,
    artifact: &VariantArtifact,
    tee_kind: TeeKind,
    transport: &dyn FrameTransport,
) -> Result<[u8; 32]> {
    // Challenge with a fresh nonce (anti-replay).
    let mut nonce = [0u8; 32];
    random_bytes(&mut nonce);
    let keypair = EphemeralKeypair::generate();
    transport
        .send_frame(encode(&BootstrapRequest::Challenge {
            nonce,
            monitor_dh_public: keypair.public,
        })?)
        .map_err(|e| MvxError::Transport(e.to_string()))?;

    // Verify the evidence.
    let evidence_bytes = transport
        .recv_frame()
        .map_err(|e| MvxError::Transport(e.to_string()))?;
    let BootstrapResponse::Evidence { report, variant_dh_public } =
        decode::<BootstrapResponse>(&evidence_bytes)?
    else {
        return Err(MvxError::Tee("variant failed before evidence".into()));
    };
    let init_identity =
        CodeIdentity::from_content("mvtee-init-variant", "1.0", ctx.init_code);
    let expected_measurement =
        compute_measurement(tee_kind, &init_identity, &artifact.init_manifest.hash());
    let transcript_hash = bootstrap_transcript_hash(&keypair.public, &variant_dh_public);
    let mut expected_data = Vec::with_capacity(64);
    expected_data.extend_from_slice(&sha256(&nonce));
    expected_data.extend_from_slice(&transcript_hash);
    mvtee_tee::verify_report(
        ctx.platform,
        &report,
        Some(expected_measurement),
        &expected_data,
    )?;

    // Session keys and sealed key release.
    let shared = keypair.diffie_hellman(&variant_dh_public);
    let session_secret = bootstrap_session_secret(&shared, &nonce);
    let session_cipher = AesGcm::new_256(&session_secret);
    let release = KeyRelease {
        variant_key: artifact.variant_key,
        variant_id: artifact.spec.id.0,
        bundle_path: artifact.bundle_path.clone(),
        expected_manifest_hash: artifact.expected_manifest_hash,
    };
    let sealed = session_cipher.seal(&[0u8; 12], &encode(&release)?, b"key-release");
    transport
        .send_frame(encode(&BootstrapRequest::SealedKeyRelease { payload: sealed })?)
        .map_err(|e| MvxError::Transport(e.to_string()))?;

    // Install evidence: the enforced second-stage manifest must match.
    let install_bytes = transport
        .recv_frame()
        .map_err(|e| MvxError::Transport(e.to_string()))?;
    let BootstrapResponse::SealedInstallEvidence { payload } =
        decode::<BootstrapResponse>(&install_bytes)?
    else {
        return Err(MvxError::Tee("variant failed before install evidence".into()));
    };
    let plain = session_cipher
        .open(&[1u8; 12], &payload, b"install-evidence")
        .map_err(MvxError::from)?;
    let evidence: InstallEvidence = decode(&plain)?;
    if evidence.manifest_hash != artifact.expected_manifest_hash {
        return Err(MvxError::Tee(format!(
            "variant p{partition}v{variant} enforced an unexpected second-stage manifest"
        )));
    }
    if evidence.variant_id != artifact.spec.id.0 {
        return Err(MvxError::Tee("variant id mismatch in install evidence".into()));
    }
    let expected_main =
        compute_measurement(tee_kind, &init_identity, &artifact.expected_manifest_hash);
    if evidence.measurement != expected_main {
        return Err(MvxError::Tee("unexpected post-exec measurement".into()));
    }
    // Bind (anti-fork: one live binding per variant id; older
    // generations remain in the append-only log).
    let mut bindings = ctx.bindings.lock().expect("binding registry poisoned");
    if bindings
        .iter()
        .any(|b| b.generation == ctx.generation && b.variant_id == evidence.variant_id)
    {
        return Err(MvxError::Tee(format!(
            "fork detected: variant id {} already bound",
            evidence.variant_id
        )));
    }
    bindings.push(BindingRecord {
        generation: ctx.generation,
        partition,
        variant,
        variant_id: evidence.variant_id,
        measurement: evidence.measurement,
    });
    drop(bindings);
    ctx.events.record(MonitorEvent::VariantBound {
        partition,
        variant,
        measurement: evidence.measurement,
    });
    Ok(session_secret)
}

/// Builds the variant specs for one partition claim — the canonical
/// construction shared by the deployment and the benchmark harness.
pub fn build_specs(
    partition: usize,
    claim: &PartitionMvx,
    seed: u64,
    overrides: &HashMap<(usize, usize), SpecPatch>,
) -> Vec<VariantSpec> {
    let mut specs = if claim.replicated {
        (0..claim.variants)
            .map(|v| VariantSpec::replicated((partition * 1000 + v) as u64, EngineKind::OrtLike))
            .collect::<Vec<_>>()
    } else {
        let mut s = spread_specs(claim.variants, seed.wrapping_add(partition as u64 * 0x77));
        for (v, spec) in s.iter_mut().enumerate() {
            spec.id = VariantId((partition * 1000 + v) as u64);
        }
        s
    };
    for (v, spec) in specs.iter_mut().enumerate() {
        // Partition-wide thread default first, then per-variant patches so
        // an explicit `intra_op_threads` override wins.
        spec.engine.intra_op_threads = claim.intra_op_threads.max(1);
        if let Some(patch) = overrides.get(&(partition, v)) {
            patch.apply(spec);
        }
    }
    specs
}

/// A bound variant's registry entry (anti-fork secure binding, §6.5).
#[derive(Debug, Clone)]
pub struct BindingRecord {
    /// Deployment generation (incremented on every update/relaunch; the
    /// anti-fork uniqueness check applies within one generation).
    pub generation: u64,
    /// Partition index.
    pub partition: usize,
    /// Variant index.
    pub variant: usize,
    /// Assigned variant id.
    pub variant_id: u64,
    /// Post-exec measurement from install evidence.
    pub measurement: [u8; 32],
}

/// Builder for [`Deployment`].
#[derive(Clone)]
pub struct DeploymentBuilder {
    model: Model,
    config: MvxConfig,
    variant_seed: u64,
    overrides: HashMap<(usize, usize), SpecPatch>,
    weight_faults: HashMap<(usize, usize), BitFlipFault>,
    liveness_faults: HashMap<(usize, usize), LivenessFault>,
    net_faults: HashMap<(usize, usize), NetFault>,
    attack: Option<Attack>,
    frameflip: Option<FrameFlip>,
    tee_kind_default: TeeKind,
    pool_config: Option<PoolConfig>,
    slow_tvm_partitions: Vec<usize>,
    placements: HashMap<(usize, usize), VariantPlacement>,
    worker_bin: Option<PathBuf>,
}

impl DeploymentBuilder {
    /// Cold-starts a builder from the model registry: resolves `key`
    /// (the tenant routing name), unseals and verifies the bundle
    /// (digest + graph fingerprint), and warms the session
    /// [`EngineCache`](mvtee_runtime::EngineCache) /
    /// `PackedGemm` / [`StrategyTable`](mvtee_runtime::StrategyTable)
    /// path so the first inference doesn't pay graph preparation on the
    /// critical path. Bundles the registry's LRU evicted on the way are
    /// dropped from the engine cache too — an evicted model is cold
    /// everywhere, sealed and in-memory alike.
    ///
    /// Telemetry: `registry.coldstart.warm` / `registry.coldstart.cold`
    /// count whether a prepared engine already existed for the model;
    /// `registry.coldstart.checkout_ns` times unseal + verification +
    /// warmup.
    ///
    /// # Errors
    ///
    /// [`MvxError::Registry`] when the key is unknown, the bundle was
    /// evicted, or verification fails; [`MvxError::Runtime`] if warmup
    /// preparation fails.
    pub fn from_registry(registry: &Mutex<Registry>, key: &str) -> Result<DeploymentBuilder> {
        let timer = mvtee_telemetry::histogram("registry.coldstart.checkout_ns").start();
        let (model, evicted) = {
            let mut reg = registry.lock().expect("registry lock");
            let model = reg.checkout_named(key)?;
            (model, reg.drain_evictions())
        };
        let cache = mvtee_runtime::session_cache();
        for fp in evicted {
            cache.evict(fp);
        }
        let fingerprint = mvtee_registry::key_for(&model);
        if cache.contains(fingerprint) {
            mvtee_telemetry::counter("registry.coldstart.warm").inc();
        } else {
            mvtee_telemetry::counter("registry.coldstart.cold").inc();
        }
        // Warm the default-engine path: preparation packs GEMM weights
        // and populates the strategy table, so same-config variants of
        // the deployment hit a hot cache at build time.
        let config = EngineConfig::of_kind(EngineKind::OrtLike);
        let engine = mvtee_runtime::Engine::new(config.clone());
        cache.prepare(&engine, &model.graph)?;
        cache.strategy_table(&config);
        timer.finish();
        Ok(DeploymentBuilder::new(model))
    }

    fn new(model: Model) -> Self {
        DeploymentBuilder {
            model,
            config: MvxConfig::fast_path(2),
            variant_seed: 0xd1ce,
            overrides: HashMap::new(),
            weight_faults: HashMap::new(),
            liveness_faults: HashMap::new(),
            net_faults: HashMap::new(),
            attack: None,
            frameflip: None,
            tee_kind_default: TeeKind::Sgx,
            pool_config: None,
            slow_tvm_partitions: Vec::new(),
            placements: HashMap::new(),
            worker_bin: None,
        }
    }

    /// Sets the partition count (claims reset to single-variant).
    pub fn partitions(mut self, n: usize) -> Self {
        let mut cfg = MvxConfig::fast_path(n);
        cfg.path = self.config.path;
        cfg.exec = self.config.exec;
        cfg.voting = self.config.voting;
        cfg.response = self.config.response;
        cfg.encrypt = self.config.encrypt;
        cfg.partition_seed = self.config.partition_seed;
        cfg.checkpoint_deadline_ms = self.config.checkpoint_deadline_ms;
        cfg.drain_window_ms = self.config.drain_window_ms;
        cfg.drain_poll_ms = self.config.drain_poll_ms;
        cfg.degradation = self.config.degradation;
        cfg.recovery = self.config.recovery;
        cfg.supervision = self.config.supervision;
        self.config = cfg;
        self
    }

    /// Replaces the entire configuration.
    pub fn config(mut self, config: MvxConfig) -> Self {
        self.config = config;
        self
    }

    /// Enables replicated MVX on a partition.
    pub fn mvx_on_partition(mut self, partition: usize, variants: usize) -> Self {
        if partition < self.config.claims.len() {
            self.config.claims[partition] = PartitionMvx::replicated(variants);
        }
        self
    }

    /// Overrides the consistency metric of one partition's checkpoint —
    /// e.g. relaxing a replicated claim whose members were re-engined
    /// into a heterogeneous panel via [`Self::engine_override`].
    pub fn checkpoint_metric(mut self, partition: usize, metric: Metric) -> Self {
        if partition < self.config.claims.len() {
            self.config.claims[partition].metric = metric;
        }
        self
    }

    /// Enables diversified MVX on a partition.
    pub fn diversified_mvx(mut self, partition: usize, variants: usize) -> Self {
        if partition < self.config.claims.len() {
            self.config.claims[partition] = PartitionMvx::diversified(variants);
        }
        self
    }

    /// Forces the last variant of `partition` to the heavyweight
    /// complex-schedule TVM configuration (the Fig 13 lagging variant).
    /// Resolved against the final claims at [`DeploymentBuilder::build`]
    /// time, so ordering relative to `mvx_on_partition` does not matter.
    pub fn slow_tvm_on(mut self, partition: usize) -> Self {
        self.slow_tvm_partitions.push(partition);
        self
    }

    /// Overrides one variant's engine configuration.
    pub fn engine_override(mut self, partition: usize, variant: usize, engine: EngineConfig) -> Self {
        self.overrides.insert((partition, variant), SpecPatch::engine(engine));
        self
    }

    /// Applies a full spec patch to one variant (hardening, ASLR seed,
    /// transforms, engine).
    pub fn spec_patch(mut self, partition: usize, variant: usize, patch: SpecPatch) -> Self {
        self.overrides.insert((partition, variant), patch);
        self
    }

    /// Sets the default intra-op thread count for every variant on one
    /// partition. Safe at any value: kernel outputs are byte-identical
    /// regardless of thread count.
    pub fn partition_threads(mut self, partition: usize, threads: usize) -> Self {
        if let Some(claim) = self.config.claims.get_mut(partition) {
            claim.intra_op_threads = threads.max(1);
        }
        self
    }

    /// Overrides one variant's intra-op thread count (composes with an
    /// earlier `engine_override` for the same variant).
    pub fn variant_threads(mut self, partition: usize, variant: usize, threads: usize) -> Self {
        let patch = self.overrides.entry((partition, variant)).or_default();
        patch.intra_op_threads = Some(threads.max(1));
        self
    }

    /// Sets the execution mode.
    pub fn exec_mode(mut self, exec: crate::config::ExecMode) -> Self {
        self.config.exec = exec;
        self
    }

    /// Sets the path mode.
    pub fn path_mode(mut self, path: crate::config::PathMode) -> Self {
        self.config.path = path;
        self
    }

    /// Sets the voting policy.
    pub fn voting(mut self, voting: crate::config::VotingPolicy) -> Self {
        self.config.voting = voting;
        self
    }

    /// Sets the response policy.
    pub fn response(mut self, response: ResponsePolicy) -> Self {
        self.config.response = response;
        self
    }

    /// Toggles data-plane encryption (Fig 10 baseline).
    pub fn encrypt(mut self, encrypt: bool) -> Self {
        self.config.encrypt = encrypt;
        self
    }

    /// Sets the partition-selection seed.
    pub fn partition_seed(mut self, seed: u64) -> Self {
        self.config.partition_seed = seed;
        self
    }

    /// Sets the variant-generation seed.
    pub fn variant_seed(mut self, seed: u64) -> Self {
        self.variant_seed = seed;
        self
    }

    /// Seals weight bit flips into one variant's payload (a model-memory
    /// fault local to that TEE; see [`OfflinePhase::run_with_options`]).
    pub fn weight_fault(mut self, partition: usize, variant: usize, fault: BitFlipFault) -> Self {
        self.weight_faults.insert((partition, variant), fault);
        self
    }

    /// Injects a liveness fault (stall or lossy channel) into one variant
    /// host — the straggler-watchdog and recovery exercise path.
    pub fn liveness_fault(mut self, partition: usize, variant: usize, fault: LivenessFault) -> Self {
        self.liveness_faults.insert((partition, variant), fault);
        self
    }

    /// Injects a deterministic wire fault into one variant's network
    /// path (the adversarial-transport exercise path). Unlike the host
    /// faults this models the *network between* monitor and variant, so
    /// it is legal for both placements: in-process it wraps the
    /// variant's response transport, out-of-process the whole worker
    /// connection (heartbeat frames exempt from one-shot faults).
    /// Transient like a liveness fault — replacements provisioned by the
    /// recovery manager get a fresh, clean connection.
    pub fn net_fault(mut self, partition: usize, variant: usize, fault: NetFault) -> Self {
        self.net_faults.insert((partition, variant), fault);
        self
    }

    /// Injects a simulated CVE attack on every variant host.
    pub fn attack(mut self, attack: Attack) -> Self {
        self.attack = Some(attack);
        self
    }

    /// Injects a simulated platform-wide FrameFlip.
    pub fn frameflip(mut self, frameflip: FrameFlip) -> Self {
        self.frameflip = Some(frameflip);
        self
    }

    /// Places one variant out-of-process: it runs as a spawned
    /// `mvtee-variantd` OS process connected over multiplexed loopback
    /// TCP instead of an in-process thread. Bootstrap, encryption and the
    /// wire format are identical either way (the distributed-MVX
    /// conformance property).
    pub fn out_of_process(mut self, partition: usize, variant: usize) -> Self {
        self.placements.insert((partition, variant), VariantPlacement::OutOfProcess);
        self
    }

    /// Overrides the `mvtee-variantd` binary path for out-of-process
    /// variants (defaults to the `MVTEE_VARIANTD` environment variable,
    /// then a search next to the current executable).
    pub fn worker_binary(mut self, path: impl Into<PathBuf>) -> Self {
        self.worker_bin = Some(path.into());
        self
    }

    /// Builds the offline partition-set pool first and selects from it
    /// (full updates then reshuffle within the pool, as in §4.3). The pool
    /// config's targets must include the deployment's partition count.
    pub fn partition_pool(mut self, pool_config: PoolConfig) -> Self {
        self.pool_config = Some(pool_config);
        self
    }

    /// Runs the offline phase and brings the deployment online.
    ///
    /// # Errors
    ///
    /// Propagates offline-phase and bootstrap failures.
    pub fn build(mut self) -> Result<Deployment> {
        // Resolve deferred lagging-variant overrides against the final
        // claims.
        for partition in std::mem::take(&mut self.slow_tvm_partitions) {
            let variants =
                self.config.claims.get(partition).map(|c| c.variants).unwrap_or(0);
            if variants > 0 {
                self.overrides.insert(
                    (partition, variants - 1),
                    SpecPatch::engine(EngineConfig::tvm_complex()),
                );
            }
        }
        let pool = match &self.pool_config {
            Some(cfg) => Some(
                PartitionPool::build(&self.model.graph, cfg, self.config.partition_seed)
                    .map_err(MvxError::from)?,
            ),
            None => None,
        };
        let offline = OfflinePhase::run_with_options(
            &self.model.graph,
            &self.config,
            self.variant_seed,
            &self.overrides,
            pool.as_ref(),
            &self.weight_faults,
        )?;
        let mut deployment = Deployment::bring_online(
            self.model,
            self.config,
            offline,
            self.attack,
            self.frameflip,
            self.liveness_faults,
            self.net_faults,
            self.tee_kind_default,
            self.placements,
            self.worker_bin,
        )?;
        deployment.pool = pool;
        Ok(deployment)
    }

    /// The variant seed replica `r` of a pool built from `base` uses —
    /// a deterministic golden-ratio stride, so a whole replica pool is
    /// reproducible from one base seed (replica 0 keeps the base seed).
    pub fn replica_variant_seed(base: u64, replica: usize) -> u64 {
        base.wrapping_add((replica as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Builds `n` independently diversified deployments of this
    /// configuration — the replica pool a serving frontend drives.
    ///
    /// Each replica's variant seed is derived deterministically from the
    /// base seed ([`DeploymentBuilder::replica_variant_seed`]), so the
    /// whole pool reproduces from a single `--seed`. The partition seed
    /// is deliberately **shared** across replicas: a common partition
    /// set keeps replica outputs bit-identical for replicated claims
    /// (partition boundaries reassociate float reductions, so different
    /// sets drift in the last bits) and lets replicas of the same
    /// engine config reuse the warm session [`EngineCache`] instead of
    /// re-preparing every subgraph per replica.
    ///
    /// [`EngineCache`]: mvtee_runtime::EngineCache
    ///
    /// # Errors
    ///
    /// Rejects `n == 0`; propagates any replica's build failure.
    pub fn build_many(self, n: usize) -> Result<Vec<Deployment>> {
        self.build_many_with(n, |_, b| b)
    }

    /// [`DeploymentBuilder::build_many`] with a per-replica hook applied
    /// after seed derivation — the fault-injection path of the serving
    /// experiments (e.g. a liveness fault sealed into one replica only).
    ///
    /// # Errors
    ///
    /// Rejects `n == 0`; propagates any replica's build failure.
    pub fn build_many_with(
        self,
        n: usize,
        customize: impl Fn(usize, DeploymentBuilder) -> DeploymentBuilder,
    ) -> Result<Vec<Deployment>> {
        if n == 0 {
            return Err(MvxError::InvalidConfig("a replica pool needs at least one replica".into()));
        }
        let base_seed = self.variant_seed;
        let mut replicas = Vec::with_capacity(n);
        for r in 0..n {
            let b = self.clone().variant_seed(Self::replica_variant_seed(base_seed, r));
            replicas.push(customize(r, b).build()?);
        }
        Ok(replicas)
    }
}

/// A live MVTEE deployment.
pub struct Deployment {
    model: Model,
    config: MvxConfig,
    offline: OfflinePhase,
    platform: Platform,
    monitor: Enclave,
    events: EventLog,
    handles: Option<PipelineHandles>,
    variant_threads: Vec<VariantHandle>,
    bindings: Arc<Mutex<Vec<BindingRecord>>>,
    generation: u64,
    update_log: Vec<String>,
    next_batch: u64,
    input_value: ValueId,
    output_value: ValueId,
    attack: Option<Attack>,
    frameflip: Option<FrameFlip>,
    liveness_faults: HashMap<(usize, usize), LivenessFault>,
    net_faults: HashMap<(usize, usize), NetFault>,
    tee_kind_default: TeeKind,
    placements: HashMap<(usize, usize), VariantPlacement>,
    worker_bin: Option<PathBuf>,
    worker_registry: WorkerRegistry,
    // Replacement handles provisioned by the recovery manager, shared so
    // kill_worker/worker_pids reach respawned workers too.
    respawned_workers: Arc<Mutex<Vec<VariantHandle>>>,
    heartbeat_monitor: HeartbeatMonitor,
    pool: Option<PartitionPool>,
    recovery_tx: Option<Sender<RecoveryRequest>>,
    recovery_manager: Option<JoinHandle<()>>,
    transcript: TranscriptLog,
}

/// Per-stream timing statistics (used by the benchmark harness).
#[derive(Debug, Clone)]
pub struct StreamStats {
    /// Per-batch results (output tensor or failure description).
    pub outputs: Vec<std::result::Result<mvtee_tensor::Tensor, String>>,
    /// Wall-clock duration of the whole stream.
    pub total: Duration,
    /// Per-batch latency (submission → completion).
    pub latencies: Vec<Duration>,
}

impl StreamStats {
    /// Throughput in batches per second.
    pub fn throughput(&self) -> f64 {
        if self.total.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.outputs.len() as f64 / self.total.as_secs_f64()
    }

    /// Mean latency in seconds.
    pub fn mean_latency(&self) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        self.latencies.iter().map(Duration::as_secs_f64).sum::<f64>()
            / self.latencies.len() as f64
    }

    /// Number of failed batches.
    pub fn failures(&self) -> usize {
        self.outputs.iter().filter(|o| o.is_err()).count()
    }
}

impl Deployment {
    /// Starts building a deployment for a zoo model.
    pub fn builder(model: Model) -> DeploymentBuilder {
        DeploymentBuilder::new(model)
    }

    #[allow(clippy::too_many_arguments)]
    fn bring_online(
        model: Model,
        config: MvxConfig,
        offline: OfflinePhase,
        attack: Option<Attack>,
        frameflip: Option<FrameFlip>,
        liveness_faults: HashMap<(usize, usize), LivenessFault>,
        net_faults: HashMap<(usize, usize), NetFault>,
        tee_kind_default: TeeKind,
        placements: HashMap<(usize, usize), VariantPlacement>,
        worker_bin: Option<PathBuf>,
    ) -> Result<Deployment> {
        let platform = Platform::new();
        let monitor = Enclave::launch(
            TeeKind::Sgx,
            CodeIdentity::from_content("mvtee-monitor", "1.0", b"mvtee monitor binary v1.0"),
            Manifest::main_variant("monitor"),
            platform.clone(),
        );
        let events = EventLog::new();
        // The public infer API is single-input/single-output; reject other
        // interfaces up front instead of silently using the first values.
        if offline.graph.inputs().len() != 1 || offline.graph.outputs().len() != 1 {
            return Err(MvxError::InvalidConfig(format!(
                "deployment requires a single-input/single-output model, got {}/{}",
                offline.graph.inputs().len(),
                offline.graph.outputs().len()
            )));
        }
        let input_value = offline.graph.inputs()[0];
        let output_value = offline.graph.outputs()[0];

        let mut deployment = Deployment {
            model,
            config,
            offline,
            platform,
            monitor,
            events,
            handles: None,
            variant_threads: Vec::new(),
            bindings: Arc::new(Mutex::new(Vec::new())),
            generation: 0,
            update_log: Vec::new(),
            next_batch: 0,
            input_value,
            output_value,
            attack,
            frameflip,
            liveness_faults,
            net_faults,
            tee_kind_default,
            placements,
            worker_bin,
            worker_registry: Arc::new(Mutex::new(HashMap::new())),
            respawned_workers: Arc::new(Mutex::new(Vec::new())),
            heartbeat_monitor: HeartbeatMonitor::new(),
            pool: None,
            recovery_tx: None,
            recovery_manager: None,
            transcript: TranscriptLog::new(),
        };
        deployment.launch_all()?;
        Ok(deployment)
    }

    /// Spawns and bootstraps every variant TEE and wires the pipeline.
    fn launch_all(&mut self) -> Result<()> {
        let mut runtimes = Vec::with_capacity(self.config.partitions);
        let mut metrics = Vec::with_capacity(self.config.partitions);
        // Values needed downstream of each stage.
        let mut needed_suffix: Vec<HashSet<ValueId>> =
            vec![HashSet::new(); self.config.partitions + 1];
        for &out in self.offline.graph.outputs() {
            needed_suffix[self.config.partitions].insert(out);
        }
        for p in (0..self.config.partitions).rev() {
            let mut needed = needed_suffix[p + 1].clone();
            for v in &self.offline.partition_set.stages[p].inputs {
                needed.insert(*v);
            }
            needed_suffix[p] = needed;
        }

        // The recovery manager (when enabled) gets a provisioning snapshot
        // and a request channel; every coordinator gets a sender clone so
        // quarantines turn into re-provisioning requests.
        let recovery_tx: Option<Sender<RecoveryRequest>> = if self.config.recovery.enabled {
            let (tx, rx) = unbounded::<RecoveryRequest>();
            let ctx = RecoveryContext {
                platform: self.platform.clone(),
                init_code: self.offline.init_code.clone(),
                subgraphs: self.offline.subgraphs.clone(),
                specs: self
                    .offline
                    .artifacts
                    .iter()
                    .map(|row| row.iter().map(|a| a.spec.clone()).collect())
                    .collect(),
                metrics: self.config.claims.iter().map(|c| c.metric).collect(),
                encrypt: self.config.encrypt,
                attack: self.attack,
                frameflip: self.frameflip.clone(),
                tee_kind_default: self.tee_kind_default,
                placements: self.placements.clone(),
                worker_bin: self.worker_bin.clone(),
                bindings: self.bindings.clone(),
                generation: self.generation,
                events: self.events.clone(),
                policy: self.config.recovery,
                supervision: self.config.supervision,
                registry: self.worker_registry.clone(),
                respawned: self.respawned_workers.clone(),
                monitor: self.heartbeat_monitor.clone(),
            };
            self.recovery_manager = Some(spawn_recovery_manager(ctx, rx));
            Some(tx)
        } else {
            None
        };
        self.recovery_tx = recovery_tx.clone();

        let boot_ctx = BootstrapCtx {
            platform: &self.platform,
            init_code: &self.offline.init_code,
            generation: self.generation,
            bindings: self.bindings.as_ref(),
            events: &self.events,
        };
        let claims = self.config.claims.clone();
        for (p, claim) in claims.iter().enumerate() {
            let stage = self.offline.partition_set.stages[p].clone();
            let (merged_tx, merged_rx) = unbounded::<RxEvent>();
            let mut links = Vec::with_capacity(claim.variants);
            let mut rx_threads = Vec::with_capacity(claim.variants);
            for v in 0..claim.variants {
                let artifact = self.offline.artifacts[p][v].clone();
                let tee_kind = if artifact.spec.tee == mvtee_diversify::TeeBackend::Tdx {
                    TeeKind::Tdx
                } else {
                    self.tee_kind_default
                };
                let placement =
                    self.placements.get(&(p, v)).copied().unwrap_or_default();
                let placed = place_variant(
                    placement,
                    self.worker_bin.as_deref(),
                    p,
                    v,
                    tee_kind,
                    &self.platform,
                    &self.offline.init_code,
                    &artifact,
                    self.config.encrypt,
                    HostFaults {
                        attack: self.attack,
                        frameflip: self.frameflip.clone(),
                        liveness: self.liveness_faults.get(&(p, v)).cloned(),
                    },
                    self.net_faults.get(&(p, v)).copied(),
                    &self.config.supervision,
                    Some(&self.worker_registry),
                )?;
                self.variant_threads.push(placed.handle);
                let heartbeat = placed.heartbeat;

                let bootstrap_timer =
                    mvtee_telemetry::histogram("core.deployment.bootstrap_ns").start();
                let session_secret =
                    bootstrap_variant(&boot_ctx, p, v, &artifact, tee_kind, placed.boot.as_ref())?;
                bootstrap_timer.finish();
                // Supervise only once the variant is attested and bound:
                // watching earlier would pin the transport open across a
                // failed bootstrap.
                if self.config.supervision.enabled {
                    if let Some(hb) = heartbeat {
                        self.heartbeat_monitor.watch(
                            p,
                            v,
                            hb,
                            &self.config.supervision,
                            self.events.clone(),
                        );
                    }
                }
                let tx = DataLink::from_transport(
                    placed.request,
                    self.config.encrypt,
                    &session_secret,
                    Role::Initiator,
                    0,
                );
                let rx = DataLink::from_transport(
                    placed.response,
                    self.config.encrypt,
                    &session_secret,
                    Role::Initiator,
                    1,
                );
                rx_threads.push(spawn_rx_thread(v, 0, rx, merged_tx.clone()));
                links.push(VariantLink { tx, description: artifact.spec.describe() });
            }
            runtimes.push(StageRuntime {
                partition: p,
                links,
                responses: merged_rx,
                merged_tx,
                rx_threads,
                inputs: stage.inputs.clone(),
                outputs: stage.outputs.clone(),
                needed_downstream: needed_suffix[p + 1].clone(),
                slow: self.config.slow_path(p),
                recovery: recovery_tx.clone(),
                transcript: self.transcript.clone(),
            });
            metrics.push(claim.metric);
        }
        let policy = StagePolicy::from_config(&self.config);
        self.handles = Some(spawn_pipeline(runtimes, policy, metrics, self.events.clone()));
        Ok(())
    }

    /// The deployed model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The audit event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The Merkle-chainable checkpoint transcript: one entry per voted
    /// verdict, shared with every stage coordinator.
    pub fn transcript(&self) -> &TranscriptLog {
        &self.transcript
    }

    /// The active configuration.
    pub fn config(&self) -> &MvxConfig {
        &self.config
    }

    /// The chosen partition set.
    pub fn partition_set(&self) -> &PartitionSet {
        &self.offline.partition_set
    }

    /// Every variant's spec, per partition — the monitor-side knowledge
    /// a replica-pool orchestrator uses to prove pool reproducibility.
    pub fn variant_specs(&self) -> Vec<Vec<VariantSpec>> {
        self.offline
            .artifacts
            .iter()
            .map(|row| row.iter().map(|a| a.spec.clone()).collect())
            .collect()
    }

    /// Current secure bindings (a snapshot — the recovery manager appends
    /// concurrently while the pipeline runs).
    pub fn bindings(&self) -> Vec<BindingRecord> {
        self.bindings.lock().expect("binding registry poisoned").clone()
    }

    /// The append-only update log.
    pub fn update_log(&self) -> &[String] {
        &self.update_log
    }

    /// Process ids of the out-of-process variant hosts, keyed by
    /// `(partition, variant)` — empty for an all-in-process deployment.
    pub fn worker_pids(&self) -> Vec<((usize, usize), u32)> {
        let respawned = self.respawned_workers.lock().expect("respawned registry poisoned");
        self.variant_threads
            .iter()
            .chain(respawned.iter())
            .filter_map(|h| h.pid().map(|pid| ((h.partition, h.variant_index), pid)))
            .collect()
    }

    /// Kills the out-of-process host of `(partition, variant)` — the
    /// crash-fault injection of the distributed experiments. The monitor
    /// observes the connection loss as a variant crash, quarantines the
    /// variant, and (with recovery enabled) heals by respawning and
    /// re-attesting a replacement worker. Returns `false` when the
    /// variant is in-process or unknown.
    pub fn kill_worker(&mut self, partition: usize, variant: usize) -> bool {
        // Newest handle first: after a heal the live worker is the
        // recovery manager's replacement, not the original (whose host
        // was consumed by the first kill).
        {
            let mut respawned =
                self.respawned_workers.lock().expect("respawned registry poisoned");
            if let Some(h) = respawned.iter_mut().rev().find(|h| {
                h.partition == partition && h.variant_index == variant && h.is_process()
            }) {
                return h.kill();
            }
        }
        self.variant_threads
            .iter_mut()
            .find(|h| h.partition == partition && h.variant_index == variant && h.is_process())
            .is_some_and(|h| h.kill())
    }

    /// Model-owner attestation of the monitor TEE (step ② of Fig 6): a
    /// hardware-signed report binding the caller's nonce.
    pub fn attest_monitor(&self, nonce: &[u8]) -> AttestationReport {
        self.monitor.report(&sha256(nonce))
    }

    /// Verifies a monitor report produced by [`Deployment::attest_monitor`]
    /// (the model-owner side).
    ///
    /// # Errors
    ///
    /// Returns an attestation error on any mismatch.
    pub fn verify_monitor_report(&self, report: &AttestationReport, nonce: &[u8]) -> Result<()> {
        mvtee_tee::verify_report(
            &self.platform,
            report,
            Some(self.monitor.measurement()),
            &sha256(nonce),
        )?;
        Ok(())
    }

    fn submit(&mut self, input: &mvtee_tensor::Tensor, trace: TraceCtx) -> Result<u64> {
        let handles = self
            .handles
            .as_ref()
            .ok_or_else(|| MvxError::BadState("deployment is shut down".into()))?;
        let batch = self.next_batch;
        self.next_batch += 1;
        // Locally submitted batches get a deterministic per-batch root so
        // pipeline spans always chain to something.
        let trace = if trace.is_none() { TraceCtx::for_batch(batch) } else { trace };
        let mut env = HashMap::new();
        env.insert(self.input_value, input.clone());
        handles
            .first_stage
            .send(CoordMsg::Job(StageJob {
                batch,
                env,
                poisoned: None,
                submitted: Instant::now(),
                trace,
            }))
            .map_err(|_| MvxError::Transport("pipeline input closed".into()))?;
        Ok(batch)
    }

    /// Collects the result for `batch`, discarding any stale results a
    /// previous failed collection may have left in the pipeline.
    fn collect_batch(&self, batch: u64) -> Result<StageJob> {
        let handles = self
            .handles
            .as_ref()
            .ok_or_else(|| MvxError::BadState("deployment is shut down".into()))?;
        loop {
            let job = handles
                .results
                .recv_timeout(self.config.result_timeout())
                .map_err(|_| MvxError::Transport("pipeline results closed".into()))?;
            if job.batch == batch {
                return Ok(job);
            }
            // Stale result from an abandoned earlier collection: drop it.
        }
    }

    fn job_output(&self, job: StageJob) -> std::result::Result<mvtee_tensor::Tensor, String> {
        if let Some(poison) = job.poisoned {
            return Err(poison);
        }
        job.env
            .get(&self.output_value)
            .cloned()
            .ok_or_else(|| "model output missing from final environment".to_string())
    }

    /// Sequential inference: the batch traverses all stages before the
    /// call returns.
    ///
    /// # Errors
    ///
    /// Returns [`MvxError::DivergenceHalt`] (or a crash error) when a
    /// checkpoint halted this batch.
    pub fn infer(&mut self, input: &mvtee_tensor::Tensor) -> Result<mvtee_tensor::Tensor> {
        let batch = self.submit(input, TraceCtx::NONE)?;
        let job = self.collect_batch(batch)?;
        self.job_output(job).map_err(|detail| MvxError::DivergenceHalt {
            partition: usize::MAX,
            detail,
        })
    }

    /// Pipelined inference over a stream of batches: all batches are
    /// submitted up front so stages overlap.
    ///
    /// # Errors
    ///
    /// Fails only on infrastructure loss; per-batch failures are reported
    /// inside [`StreamStats::outputs`].
    pub fn infer_stream(&mut self, inputs: &[mvtee_tensor::Tensor]) -> Result<StreamStats> {
        let start = Instant::now();
        let mut first_batch = self.next_batch;
        for input in inputs {
            let b = self.submit(input, TraceCtx::NONE)?;
            first_batch = first_batch.min(b);
        }
        self.collect_stream(first_batch, inputs.len(), start)
    }

    /// [`Deployment::infer_stream`] with a caller-provided trace context
    /// per batch (e.g. the serving frontend's per-request roots), so
    /// pipeline, runtime and channel spans chain back to the submitter.
    /// `traces` must have one entry per input; pass [`TraceCtx::NONE`]
    /// entries for untraced batches.
    ///
    /// # Errors
    ///
    /// Fails only on infrastructure loss; per-batch failures are reported
    /// inside [`StreamStats::outputs`].
    pub fn infer_stream_traced(
        &mut self,
        inputs: &[mvtee_tensor::Tensor],
        traces: &[TraceCtx],
    ) -> Result<StreamStats> {
        if inputs.len() != traces.len() {
            return Err(MvxError::BadState(format!(
                "infer_stream_traced: {} inputs but {} trace contexts",
                inputs.len(),
                traces.len()
            )));
        }
        let start = Instant::now();
        let mut first_batch = self.next_batch;
        for (input, trace) in inputs.iter().zip(traces) {
            let b = self.submit(input, *trace)?;
            first_batch = first_batch.min(b);
        }
        self.collect_stream(first_batch, inputs.len(), start)
    }

    /// Sequential inference over a stream (each batch completes before the
    /// next is submitted) with the same statistics envelope.
    ///
    /// # Errors
    ///
    /// Fails only on infrastructure loss.
    pub fn infer_sequential(&mut self, inputs: &[mvtee_tensor::Tensor]) -> Result<StreamStats> {
        let start = Instant::now();
        let mut outputs = Vec::with_capacity(inputs.len());
        let mut latencies = Vec::with_capacity(inputs.len());
        for input in inputs {
            let t0 = Instant::now();
            let batch = self.submit(input, TraceCtx::NONE)?;
            let job = self.collect_batch(batch)?;
            latencies.push(t0.elapsed());
            outputs.push(self.job_output(job));
        }
        Ok(StreamStats { outputs, total: start.elapsed(), latencies })
    }

    fn collect_stream(&mut self, first_batch: u64, n: usize, start: Instant) -> Result<StreamStats> {
        let mut outputs = Vec::with_capacity(n);
        let mut latencies = Vec::with_capacity(n);
        for k in 0..n {
            let job = self.collect_batch(first_batch + k as u64)?;
            latencies.push(job.submitted.elapsed());
            outputs.push(self.job_output(job));
        }
        Ok(StreamStats { outputs, total: start.elapsed(), latencies })
    }

    /// Partial variant update (§4.3): replaces the variants of one
    /// partition with a fresh claim, re-attesting and re-binding; bindings
    /// are appended, never rewritten.
    ///
    /// # Errors
    ///
    /// Propagates bootstrap failures; the deployment is rebuilt.
    pub fn partial_update(&mut self, partition: usize, claim: PartitionMvx) -> Result<()> {
        if partition >= self.config.partitions {
            return Err(MvxError::InvalidConfig(format!(
                "partition {partition} out of range"
            )));
        }
        self.stop_pipeline();
        // Regenerate artifacts for the updated partition only (fresh keys,
        // fresh variant ids per the no-TEE-reuse policy). Nothing is
        // committed until regeneration fully succeeds.
        // Seed diversification from the update generation, not the
        // (workload-dependent) batch counter.
        let fresh_seed = (self.generation + 1).wrapping_mul(0x9e37_79b9);
        let overrides = HashMap::new();
        let generator = VariantGenerator::new(fresh_seed);
        let specs = build_specs(partition, &claim, fresh_seed, &overrides);
        let mut row = Vec::with_capacity(specs.len());
        for (v, mut spec) in specs.into_iter().enumerate() {
            // Generation-scoped ids: unique across updates and partitions.
            spec.id = VariantId(
                (self.generation + 1) * 1_000_000 + (partition * 1000 + v) as u64,
            );
            row.push(seal_artifact(
                &self.offline.init_code,
                &self.offline.subgraphs[partition],
                &generator,
                partition,
                &spec,
                format!("/enc/p{partition}/v{v}/u{fresh_seed}"),
                &format!("p{partition}-v{v}-updated"),
            )?);
        }
        self.config.claims[partition] = claim.clone();
        self.offline.artifacts[partition] = row;
        self.update_log.push(format!(
            "partial update: partition {partition} -> {} variants",
            claim.variants
        ));
        self.events.record(MonitorEvent::BindingUpdated {
            partition,
            description: format!("partial update to {} variants", claim.variants),
        });
        self.launch_all()
    }

    /// Full variant update: reshuffles the partition set (new seed) and
    /// reconstructs every binding.
    ///
    /// # Errors
    ///
    /// Propagates offline-phase and bootstrap failures.
    pub fn full_update(&mut self, new_partition_seed: u64) -> Result<()> {
        self.stop_pipeline();
        self.config.partition_seed = new_partition_seed;
        let overrides = HashMap::new();
        self.offline = OfflinePhase::run_with_pool(
            &self.offline.graph,
            &self.config,
            new_partition_seed ^ 0xfeed,
            &overrides,
            self.pool.as_ref(),
        )?;
        self.update_log.push(format!(
            "full update: reshuffled partition set with seed {new_partition_seed}"
        ));
        self.events.record(MonitorEvent::BindingUpdated {
            partition: usize::MAX,
            description: "full update".into(),
        });
        self.launch_all()
    }

    /// Rotates every variant-specific key (§6.5's proactive key rotation):
    /// re-seals each variant payload under a fresh key-derivation key and
    /// re-bootstraps the deployment (no TEE reuse).
    ///
    /// # Errors
    ///
    /// Propagates re-sealing and bootstrap failures.
    pub fn rotate_keys(&mut self) -> Result<()> {
        self.stop_pipeline();
        for row in &mut self.offline.artifacts {
            for artifact in row {
                let mut old = ProtectedFs::new();
                old.import(
                    &artifact.bundle_path,
                    artifact.sealed.0,
                    artifact.sealed.1.clone(),
                );
                let plain = old.read(&artifact.variant_key, &artifact.bundle_path)?;
                // Re-seal the same plaintext under a fresh key (the payload
                // and manifests are unchanged; only the key rotates).
                let new_key: [u8; 32] = random_array();
                let mut sealer = ProtectedFs::new();
                sealer.write(&new_key, &artifact.bundle_path, &plain);
                artifact.sealed = sealer.export(&artifact.bundle_path).expect("just written");
                artifact.variant_key = new_key;
            }
        }
        self.update_log.push("key rotation: all variant keys re-sealed".into());
        self.events.record(MonitorEvent::BindingUpdated {
            partition: usize::MAX,
            description: "proactive key rotation".into(),
        });
        self.launch_all()
    }

    fn stop_pipeline(&mut self) {
        self.generation += 1;
        // Stop heartbeat watchers before tearing the pipeline down so an
        // orderly shutdown is not misread as a mass stall; a fresh
        // monitor replaces the stopped one for any relaunch.
        self.heartbeat_monitor.shutdown();
        self.heartbeat_monitor = HeartbeatMonitor::new();
        // Clear the retained reconnect sockets first: lingering
        // `--resume` workers now get connection-refused on redial and
        // exit on their own instead of waiting out their strike budget
        // against a listener nobody will accept on.
        self.worker_registry.lock().expect("worker registry poisoned").clear();
        let mut runtimes = Vec::new();
        if let Some(handles) = self.handles.take() {
            for tx in &handles.all_stages {
                let _ = tx.send(CoordMsg::Stop);
            }
            // Joining returns each StageRuntime; dropping one releases its
            // recovery sender (so the manager's request channel drains
            // closed) and its links (so variants exit on channel loss).
            // The runtimes are kept alive until the manager has exited —
            // see below.
            for t in handles.threads {
                if let Ok(runtime) = t.join() {
                    runtimes.push(runtime);
                }
            }
        }
        // Drop the deployment's own request sender, then wait for the
        // manager to finish any in-flight recovery and join its
        // replacement variant threads.
        self.recovery_tx = None;
        // The kept-alive runtimes each hold a recovery sender too; drop
        // them so the manager's request channel actually drains closed.
        for runtime in &mut runtimes {
            runtime.recovery = None;
        }
        if let Some(manager) = self.recovery_manager.take() {
            // A rejoin the coordinator never consumed leaves
            // `RxEvent::Recovered` queued in the merged channel, and the
            // replacement's own rx thread holds a sender clone that keeps
            // the queued event — and so the replacement's request link —
            // alive even after the receiver drops. The replacement then
            // parks on that link, the manager parks joining the
            // replacement, and shutdown would park joining the manager.
            // Drain the merged queues until the manager exits so orphaned
            // rejoin links drop and the chain unwinds.
            while !manager.is_finished() {
                for runtime in &runtimes {
                    while runtime.responses.try_recv().is_ok() {}
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            let _ = manager.join();
        }
        drop(runtimes);
        // Variant threads exit on Shutdown/link loss.
        for handle in self.variant_threads.drain(..) {
            handle.join();
        }
    }

    /// Shuts the deployment down, joining every thread.
    pub fn shutdown(&mut self) {
        self.stop_pipeline();
    }
}

impl Drop for Deployment {
    fn drop(&mut self) {
        self.stop_pipeline();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExecMode, PathMode, VotingPolicy};
    use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
    use mvtee_tensor::Tensor;

    fn model() -> Model {
        zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 77).unwrap()
    }

    fn test_input() -> Tensor {
        let n = 3 * 32 * 32;
        Tensor::from_vec(
            (0..n).map(|i| ((i % 61) as f32 - 30.0) / 30.0).collect(),
            &[1, 3, 32, 32],
        )
        .unwrap()
    }

    fn reference_output(m: &Model, input: &Tensor) -> Tensor {
        use mvtee_runtime::{Engine, EngineConfig, EngineKind};
        Engine::new(EngineConfig::of_kind(EngineKind::OrtLike))
            .prepare(&m.graph)
            .unwrap()
            .run(std::slice::from_ref(input))
            .unwrap()
            .remove(0)
    }

    #[test]
    fn registry_cold_start_matches_in_memory_deployment_bit_for_bit() {
        use mvtee_registry::{upload_model, RegistryConfig};
        let m = model();
        let input = test_input();

        // Reference: the existing in-memory path.
        let mut reference = Deployment::builder(m.clone()).partitions(2).build().unwrap();
        let expected = reference.infer(&input).unwrap();
        reference.shutdown();

        // Provision the same model through the registry's attested lane.
        let registry = Arc::new(Mutex::new(Registry::new(random_array(), RegistryConfig::default())));
        let (tenant, server) = mvtee_crypto::channel::memory_pair();
        let hs_t = mvtee_crypto::channel::Handshake::from_pre_shared(b"cold-start-test", Role::Initiator);
        let hs_s = mvtee_crypto::channel::Handshake::from_pre_shared(b"cold-start-test", Role::Responder);
        let reg = Arc::clone(&registry);
        let srv = std::thread::spawn(move || {
            let mut chan = mvtee_crypto::channel::SecureChannel::new(server, &hs_s, 4);
            mvtee_registry::serve_provisioning(&reg, &mut chan)
        });
        let mut chan = mvtee_crypto::channel::SecureChannel::new(tenant, &hs_t, 4);
        upload_model(&mut chan, &m, "tenant/mnasnet").unwrap();
        mvtee_registry::end_session(&mut chan).unwrap();
        srv.join().unwrap().unwrap();

        // Cold-start from the registry: byte-identical output.
        let mut cold = DeploymentBuilder::from_registry(&registry, "tenant/mnasnet")
            .unwrap()
            .partitions(2)
            .build()
            .unwrap();
        let got = cold.infer(&input).unwrap();
        assert_eq!(got, expected, "cold-started deployment diverged from the in-memory reference");
        cold.shutdown();

        assert!(matches!(
            DeploymentBuilder::from_registry(&registry, "nobody/unknown"),
            Err(MvxError::Registry(_))
        ));
    }

    #[test]
    fn fast_path_deployment_matches_reference() {
        let m = model();
        let input = test_input();
        let expected = reference_output(&m, &input);
        let mut d = Deployment::builder(m).partitions(3).build().unwrap();
        let out = d.infer(&input).unwrap();
        assert!(
            mvtee_tensor::metrics::allclose(&out, &expected, 1e-3, 1e-4),
            "max diff {}",
            mvtee_tensor::metrics::max_abs_diff(&out, &expected)
        );
        assert_eq!(d.bindings().len(), 3);
        d.shutdown();
    }

    #[test]
    fn replicated_mvx_agrees() {
        let m = model();
        let input = test_input();
        let expected = reference_output(&m, &input);
        let mut d = Deployment::builder(m)
            .partitions(3)
            .mvx_on_partition(1, 3)
            .build()
            .unwrap();
        let out = d.infer(&input).unwrap();
        assert!(mvtee_tensor::metrics::allclose(&out, &expected, 1e-3, 1e-4));
        assert_eq!(d.events().detection_count(), 0, "no divergence expected");
        assert_eq!(d.bindings().len(), 5);
        d.shutdown();
    }

    #[test]
    fn pipelined_stream_preserves_order_and_results() {
        let m = model();
        let inputs: Vec<Tensor> = (0..6)
            .map(|i| {
                let mut t = test_input();
                t.data_mut()[0] = i as f32;
                t
            })
            .collect();
        let mut d = Deployment::builder(m).partitions(3).build().unwrap();
        let seq = d.infer_sequential(&inputs).unwrap();
        let pipe = d.infer_stream(&inputs).unwrap();
        assert_eq!(seq.failures(), 0);
        assert_eq!(pipe.failures(), 0);
        for (a, b) in seq.outputs.iter().zip(pipe.outputs.iter()) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert!(mvtee_tensor::metrics::allclose(a, b, 1e-4, 1e-5));
        }
        d.shutdown();
    }

    #[test]
    fn monitor_attestation_round_trip() {
        let m = model();
        let mut d = Deployment::builder(m).partitions(2).build().unwrap();
        let report = d.attest_monitor(b"owner-nonce");
        d.verify_monitor_report(&report, b"owner-nonce").unwrap();
        assert!(d.verify_monitor_report(&report, b"wrong-nonce").is_err());
        d.shutdown();
    }

    #[test]
    fn diversified_mvx_with_relaxed_metric_agrees() {
        let m = model();
        let input = test_input();
        let mut d = Deployment::builder(m)
            .partitions(3)
            .diversified_mvx(1, 3)
            .build()
            .unwrap();
        let out = d.infer(&input).unwrap();
        assert_eq!(out.dims()[0], 1);
        assert_eq!(
            d.events().detection_count(),
            0,
            "benign diversified variants must agree under the relaxed metric: {:?}",
            d.events().events()
        );
        d.shutdown();
    }

    #[test]
    fn async_mode_executes() {
        let m = model();
        let input = test_input();
        let mut d = Deployment::builder(m)
            .partitions(3)
            .mvx_on_partition(1, 3)
            .exec_mode(ExecMode::AsyncCrossValidation)
            .voting(VotingPolicy::Majority)
            .build()
            .unwrap();
        let stats = d.infer_stream(&[input.clone(), input.clone(), input]).unwrap();
        assert_eq!(stats.failures(), 0);
        assert_eq!(d.events().detection_count(), 0);
        d.shutdown();
    }

    #[test]
    fn unencrypted_baseline_works() {
        let m = model();
        let input = test_input();
        let expected = reference_output(&m, &input);
        let mut d = Deployment::builder(m)
            .partitions(2)
            .encrypt(false)
            .build()
            .unwrap();
        let out = d.infer(&input).unwrap();
        assert!(mvtee_tensor::metrics::allclose(&out, &expected, 1e-3, 1e-4));
        d.shutdown();
    }

    #[test]
    fn force_slow_path_single_variants() {
        let m = model();
        let input = test_input();
        let mut d = Deployment::builder(m)
            .partitions(3)
            .path_mode(PathMode::ForceSlow)
            .build()
            .unwrap();
        let out = d.infer(&input).unwrap();
        assert!(out.data().iter().all(|v| v.is_finite()));
        d.shutdown();
    }

    #[test]
    fn partial_update_rebinds() {
        let m = model();
        let input = test_input();
        let mut d = Deployment::builder(m).partitions(2).build().unwrap();
        let before = d.infer(&input).unwrap();
        let bound_before = d.bindings().len();
        d.partial_update(1, PartitionMvx::replicated(2)).unwrap();
        let after = d.infer(&input).unwrap();
        assert!(mvtee_tensor::metrics::allclose(&before, &after, 1e-3, 1e-4));
        assert!(d.bindings().len() > bound_before, "bindings are append-only");
        assert_eq!(d.update_log().len(), 1);
        d.shutdown();
    }

    #[test]
    fn full_update_reshuffles() {
        let m = model();
        let input = test_input();
        let mut d = Deployment::builder(m).partitions(3).build().unwrap();
        let before = d.infer(&input).unwrap();
        let old_stages = d.partition_set().stages.clone();
        d.full_update(0xabcdef).unwrap();
        let after = d.infer(&input).unwrap();
        assert!(mvtee_tensor::metrics::allclose(&before, &after, 1e-3, 1e-4));
        assert_ne!(&old_stages, &d.partition_set().stages, "partition set reshuffled");
        d.shutdown();
    }

    #[test]
    fn single_partition_full_model() {
        let m = model();
        let input = test_input();
        let expected = reference_output(&m, &input);
        let mut d = Deployment::builder(m).partitions(1).build().unwrap();
        let out = d.infer(&input).unwrap();
        assert!(mvtee_tensor::metrics::allclose(&out, &expected, 1e-3, 1e-4));
        d.shutdown();
    }
}

#[cfg(test)]
mod pool_tests {
    use super::*;
    use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
    use mvtee_tensor::Tensor;

    #[test]
    fn pool_backed_deployment_selects_and_reshuffles() {
        let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 99).unwrap();
        let input = Tensor::ones(&[1, 3, 32, 32]);
        let pool_cfg = PoolConfig { targets: vec![3], sets_per_target: 3, runs_per_set: 1 };
        let mut d = Deployment::builder(model)
            .partitions(3)
            .partition_pool(pool_cfg)
            .build()
            .unwrap();
        let before = d.infer(&input).unwrap();
        let first_set = d.partition_set().clone();
        // Full updates reshuffle within the pool; with 3 pooled sets a few
        // seeds are enough to land on a different one.
        let mut reshuffled = false;
        for seed in 0..8u64 {
            d.full_update(seed).unwrap();
            if d.partition_set().stages != first_set.stages {
                reshuffled = true;
                break;
            }
        }
        assert!(reshuffled, "full update never reshuffled within the pool");
        let after = d.infer(&input).unwrap();
        assert!(mvtee_tensor::metrics::allclose(&before, &after, 1e-3, 1e-4));
        d.shutdown();
    }

    #[test]
    fn pool_without_matching_target_fails_clearly() {
        let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 99).unwrap();
        let pool_cfg = PoolConfig { targets: vec![4], sets_per_target: 1, runs_per_set: 1 };
        let result = Deployment::builder(model)
            .partitions(3)
            .partition_pool(pool_cfg)
            .build();
        match result {
            Err(MvxError::InvalidConfig(msg)) => assert!(msg.contains("pool")),
            Err(other) => panic!("unexpected error kind: {other}"),
            Ok(_) => panic!("build must fail without a matching pooled set"),
        }
    }
}

#[cfg(test)]
mod rotation_tests {
    use super::*;
    use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
    use mvtee_tensor::Tensor;

    #[test]
    fn key_rotation_preserves_service_and_changes_keys() {
        let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 71).unwrap();
        let input = Tensor::ones(&[1, 3, 32, 32]);
        let mut d = Deployment::builder(model).partitions(2).build().unwrap();
        let before = d.infer(&input).unwrap();
        let old_keys: Vec<[u8; 32]> = d
            .offline
            .artifacts
            .iter()
            .flatten()
            .map(|a| a.variant_key)
            .collect();
        d.rotate_keys().unwrap();
        let new_keys: Vec<[u8; 32]> = d
            .offline
            .artifacts
            .iter()
            .flatten()
            .map(|a| a.variant_key)
            .collect();
        assert!(old_keys.iter().zip(new_keys.iter()).all(|(a, b)| a != b));
        let after = d.infer(&input).unwrap();
        assert!(mvtee_tensor::metrics::allclose(&before, &after, 1e-4, 1e-5));
        assert!(d.update_log().iter().any(|e| e.contains("key rotation")));
        d.shutdown();
    }
}
