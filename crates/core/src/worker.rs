//! Out-of-process variant hosts: placement, spawning and the
//! `mvtee-variantd` entry point.
//!
//! A deployment can place any variant either **in-process** (a thread,
//! the co-located setting) or **out-of-process** (a `mvtee-variantd`
//! worker the untrusted orchestrator spawns, the distributed setting).
//! The worker connects back to the monitor over loopback TCP; the single
//! connection is lane-multiplexed ([`mvtee_crypto::mux`]) into the
//! bootstrap transport plus the two data-plane transports, and from there
//! the *identical* variant-host code runs: Fig 5/6 two-stage attestation,
//! AES-GCM channels with per-direction keys, checkpoint serving. The
//! monitor cannot tell the placements apart except through the transport
//! handle — which is exactly the conformance property
//! `tests/dist_conformance.rs` pins down.
//!
//! What crosses the process boundary in the clear is only what the
//! untrusted orchestrator legitimately holds: public init-variant code,
//! the public first-stage manifest, the *sealed* payload blob, and the
//! platform root. The platform root models hardware provisioning (in
//! reality each machine's attestation key is fused silicon and the
//! verifier trusts the vendor's PKI; the simulation spans one platform
//! across host processes by sharing the root) — the variant key and
//! session secrets still only ever travel inside the attested key
//! release.

use crate::deployment::VariantArtifact;
use crate::variant_host::{spawn_variant, variant_main, VariantHandle, VariantLaunch};
use crate::{MvxError, Result};
use mvtee_crypto::channel::{memory_pair, FrameTransport};
use mvtee_faults::{Attack, FrameFlip, LivenessFault};
use mvtee_crypto::mux::{self, MuxLane, LANE_BOOTSTRAP, LANE_REQUEST, LANE_RESPONSE};
use mvtee_crypto::tcp::{bind_loopback, TcpTransport};
use mvtee_tee::{Manifest, Platform, TeeKind};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Where a variant host runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VariantPlacement {
    /// A thread inside the monitor's process (the co-located default).
    #[default]
    InProcess,
    /// A spawned `mvtee-variantd` worker process over attested TCP.
    OutOfProcess,
}

/// Everything the untrusted orchestrator ships to a worker process —
/// the exact out-of-process analogue of [`VariantLaunch`] minus the
/// simulated platform faults (those model compromises of *this*
/// process's software stack and stay in-process).
///
/// [`VariantLaunch`]: crate::variant_host::VariantLaunch
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerPlacement {
    /// Partition index (public placement information).
    pub partition: usize,
    /// Variant index within the partition.
    pub variant_index: usize,
    /// TEE flavour to launch.
    pub tee_kind: TeeKind,
    /// Exported platform root ([`Platform::export_root`]).
    pub platform_root: [u8; 32],
    /// Public init-variant code bytes.
    pub init_code: Vec<u8>,
    /// Public first-stage manifest.
    pub init_manifest: Manifest,
    /// Host-storage path of the sealed payload.
    pub bundle_path: String,
    /// Salt of the sealed payload.
    pub sealed_salt: [u8; 16],
    /// Ciphertext of the sealed payload.
    pub sealed_blob: Vec<u8>,
    /// Whether data-plane traffic is encrypted.
    pub encrypt: bool,
}

/// Locates the `mvtee-variantd` worker binary: the `MVTEE_VARIANTD`
/// environment variable wins, otherwise the directories around the
/// current executable are searched (`target/<profile>/deps` for test
/// binaries, `target/<profile>` for the experiments binary — both
/// resolve to the sibling `target/<profile>/mvtee-variantd` that a
/// workspace build produces).
pub fn worker_binary() -> Option<PathBuf> {
    if let Ok(path) = std::env::var("MVTEE_VARIANTD") {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Some(path);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?.to_path_buf();
    for _ in 0..3 {
        let candidate = dir.join(format!("mvtee-variantd{}", std::env::consts::EXE_SUFFIX));
        if candidate.is_file() {
            return Some(candidate);
        }
        dir = dir.parent()?.to_path_buf();
    }
    None
}

/// The monitor-side transports of one placed variant, plus its host
/// handle — what [`place_variant`] hands back regardless of placement.
pub(crate) struct PlacedVariant {
    /// Thread or process handle.
    pub handle: VariantHandle,
    /// Bootstrap transport (monitor side).
    pub boot: Box<dyn FrameTransport>,
    /// Stage-request transport (monitor side).
    pub request: Box<dyn FrameTransport>,
    /// Stage-response transport (monitor side).
    pub response: Box<dyn FrameTransport>,
}

/// How long the monitor waits for a freshly spawned worker to dial back.
const WORKER_CONNECT_TIMEOUT: Duration = Duration::from_secs(30);

/// Spawns one `mvtee-variantd` worker: binds an ephemeral loopback port,
/// launches the binary pointed at it, accepts the connection, splits it
/// into lanes and ships the placement down the bootstrap lane.
///
/// # Errors
///
/// Fails when the binary cannot be spawned, the worker does not connect
/// within the timeout (the worker is killed), or the placement cannot be
/// serialised.
pub(crate) fn spawn_worker_process(
    bin: &Path,
    placement: &WorkerPlacement,
) -> Result<PlacedVariant> {
    let (partition, variant_index) = (placement.partition, placement.variant_index);
    let (listener, port) =
        bind_loopback().map_err(|e| MvxError::Transport(e.to_string()))?;
    let mut child = Command::new(bin)
        .arg("--connect")
        .arg(format!("127.0.0.1:{port}"))
        .stdin(Stdio::null())
        .spawn()
        .map_err(|e| MvxError::Transport(format!("spawn {}: {e}", bin.display())))?;

    listener
        .set_nonblocking(true)
        .map_err(|e| MvxError::Transport(format!("listener nonblocking: {e}")))?;
    let deadline = Instant::now() + WORKER_CONNECT_TIMEOUT;
    let stream = loop {
        match listener.accept() {
            Ok((stream, _)) => break stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if let Ok(Some(status)) = child.try_wait() {
                    return Err(MvxError::Transport(format!(
                        "worker p{partition}v{variant_index} exited before connecting: {status}"
                    )));
                }
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(MvxError::Transport(format!(
                        "worker p{partition}v{variant_index} never connected"
                    )));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(MvxError::Transport(format!("worker accept failed: {e}")));
            }
        }
    };
    stream
        .set_nonblocking(false)
        .map_err(|e| MvxError::Transport(format!("stream blocking: {e}")))?;
    let transport =
        TcpTransport::new(stream).map_err(|e| MvxError::Transport(e.to_string()))?;
    let mut lanes = mux::split(transport, &[LANE_BOOTSTRAP, LANE_REQUEST, LANE_RESPONSE]);
    let response = lanes.pop().expect("three lanes");
    let request = lanes.pop().expect("three lanes");
    let boot = lanes.pop().expect("three lanes");

    boot.send_frame(crate::messages::encode(placement)?)
        .map_err(|e| MvxError::Transport(format!("placement send: {e}")))?;
    mvtee_telemetry::counter("core.worker.spawned").inc();
    Ok(PlacedVariant {
        handle: VariantHandle::from_process(partition, variant_index, child),
        boot: Box::new(boot),
        request: Box::new(request),
        response: Box::new(response),
    })
}

/// The `mvtee-variantd` worker entry point: connect back to the monitor,
/// receive the placement, then run the standard variant-host main loop
/// over the multiplexed lanes until shutdown or connection loss.
///
/// # Errors
///
/// Fails on connection loss, a malformed placement, or any variant-host
/// failure (bootstrap rejection, manifest violation…).
pub fn run_worker(addr: &str) -> Result<()> {
    let transport =
        TcpTransport::connect(addr).map_err(|e| MvxError::Transport(e.to_string()))?;
    let mut lanes = mux::split(transport, &[LANE_BOOTSTRAP, LANE_REQUEST, LANE_RESPONSE]);
    let response: MuxLane = lanes.pop().expect("three lanes");
    let request: MuxLane = lanes.pop().expect("three lanes");
    let boot: MuxLane = lanes.pop().expect("three lanes");

    let placement_bytes = boot
        .recv_frame()
        .map_err(|e| MvxError::Transport(format!("placement recv: {e}")))?;
    let placement: WorkerPlacement = crate::messages::decode(&placement_bytes)?;
    let launch = VariantLaunch {
        partition: placement.partition,
        variant_index: placement.variant_index,
        tee_kind: placement.tee_kind,
        platform: Platform::from_root(placement.platform_root),
        init_code: placement.init_code,
        init_manifest: placement.init_manifest,
        bundle_path: placement.bundle_path,
        sealed_blob: (placement.sealed_salt, placement.sealed_blob),
        encrypt: placement.encrypt,
        attack: None,
        frameflip: None,
        liveness: None,
        bootstrap: Box::new(boot),
        request: Box::new(request),
        response: Box::new(response),
    };
    variant_main(launch)
}

/// Simulated faults a variant host can carry — grouped so placement
/// dispatch can reject them wholesale for out-of-process variants.
#[derive(Default)]
pub(crate) struct HostFaults {
    /// Simulated CVE attack on the host's software stack.
    pub attack: Option<Attack>,
    /// Simulated platform-wide FrameFlip.
    pub frameflip: Option<FrameFlip>,
    /// Simulated liveness fault (stall or lossy channel).
    pub liveness: Option<LivenessFault>,
}

impl HostFaults {
    fn any(&self) -> bool {
        self.attack.is_some() || self.frameflip.is_some() || self.liveness.is_some()
    }
}

/// Places one variant host per the requested [`VariantPlacement`]: a
/// thread over in-memory transports, or a `mvtee-variantd` process over
/// multiplexed TCP lanes. The monitor-side result is placement-agnostic —
/// the same boxed transports either way.
///
/// # Errors
///
/// Out-of-process placement fails when simulated faults are requested
/// (they model compromises of *this* process's stack and only make sense
/// in-process), when no worker binary can be located, or on any spawn /
/// connect failure.
#[allow(clippy::too_many_arguments)]
pub(crate) fn place_variant(
    placement: VariantPlacement,
    worker_bin: Option<&Path>,
    partition: usize,
    variant_index: usize,
    tee_kind: TeeKind,
    platform: &Platform,
    init_code: &[u8],
    artifact: &VariantArtifact,
    encrypt: bool,
    faults: HostFaults,
) -> Result<PlacedVariant> {
    match placement {
        VariantPlacement::InProcess => {
            let (boot_monitor, boot_variant) = memory_pair();
            let (req_monitor, req_variant) = memory_pair();
            let (resp_variant, resp_monitor) = memory_pair();
            let launch = VariantLaunch {
                partition,
                variant_index,
                tee_kind,
                platform: platform.clone(),
                init_code: init_code.to_vec(),
                init_manifest: artifact.init_manifest.clone(),
                bundle_path: artifact.bundle_path.clone(),
                sealed_blob: artifact.sealed.clone(),
                encrypt,
                attack: faults.attack,
                frameflip: faults.frameflip,
                liveness: faults.liveness,
                bootstrap: Box::new(boot_variant),
                request: Box::new(req_variant),
                response: Box::new(resp_variant),
            };
            Ok(PlacedVariant {
                handle: spawn_variant(launch),
                boot: Box::new(boot_monitor),
                request: Box::new(req_monitor),
                response: Box::new(resp_monitor),
            })
        }
        VariantPlacement::OutOfProcess => {
            if faults.any() {
                return Err(MvxError::InvalidConfig(format!(
                    "variant p{partition}v{variant_index}: simulated platform faults \
                     (attack/frameflip/liveness) target this process's software stack \
                     and cannot be placed out-of-process"
                )));
            }
            let resolved;
            let bin = match worker_bin {
                Some(bin) => bin,
                None => {
                    resolved = worker_binary().ok_or_else(|| {
                        MvxError::InvalidConfig(
                            "no mvtee-variantd binary found (build the workspace or set \
                             MVTEE_VARIANTD)"
                                .into(),
                        )
                    })?;
                    &resolved
                }
            };
            let placement = placement_for(
                partition,
                variant_index,
                tee_kind,
                platform,
                init_code,
                artifact,
                encrypt,
            );
            spawn_worker_process(bin, &placement)
        }
    }
}

/// Builds the [`WorkerPlacement`] for one variant from its offline
/// artifact — the single construction shared by launch and recovery.
pub(crate) fn placement_for(
    partition: usize,
    variant_index: usize,
    tee_kind: TeeKind,
    platform: &Platform,
    init_code: &[u8],
    artifact: &VariantArtifact,
    encrypt: bool,
) -> WorkerPlacement {
    WorkerPlacement {
        partition,
        variant_index,
        tee_kind,
        platform_root: platform.export_root(),
        init_code: init_code.to_vec(),
        init_manifest: artifact.init_manifest.clone(),
        bundle_path: artifact.bundle_path.clone(),
        sealed_salt: artifact.sealed.0,
        sealed_blob: artifact.sealed.1.clone(),
        encrypt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{decode, encode};

    #[test]
    fn worker_placement_round_trips_through_codec() {
        let placement = WorkerPlacement {
            partition: 1,
            variant_index: 2,
            tee_kind: TeeKind::Sgx,
            platform_root: [7u8; 32],
            init_code: b"init".to_vec(),
            init_manifest: Manifest::init_variant("init-p1-v2"),
            bundle_path: "/enc/p1/v2".into(),
            sealed_salt: [9u8; 16],
            sealed_blob: vec![1, 2, 3, 4],
            encrypt: true,
        };
        let bytes = encode(&placement).unwrap();
        let back: WorkerPlacement = decode(&bytes).unwrap();
        assert_eq!(back.partition, 1);
        assert_eq!(back.variant_index, 2);
        assert_eq!(back.platform_root, [7u8; 32]);
        assert_eq!(back.init_manifest, placement.init_manifest);
        assert_eq!(back.sealed_salt, [9u8; 16]);
        assert_eq!(back.sealed_blob, vec![1, 2, 3, 4]);
        assert!(back.encrypt);
    }

    #[test]
    fn worker_binary_resolver_honours_env_override() {
        // The resolver must never return a non-file path, whatever the
        // environment says.
        if let Some(bin) = worker_binary() {
            assert!(bin.is_file());
        }
    }
}
