//! Out-of-process variant hosts: placement, spawning and the
//! `mvtee-variantd` entry point.
//!
//! A deployment can place any variant either **in-process** (a thread,
//! the co-located setting) or **out-of-process** (a `mvtee-variantd`
//! worker the untrusted orchestrator spawns, the distributed setting).
//! The worker connects back to the monitor over loopback TCP; the single
//! connection is lane-multiplexed ([`mvtee_crypto::mux`]) into the
//! bootstrap transport, the two data-plane transports and a heartbeat
//! lane, and from there the *identical* variant-host code runs: Fig 5/6
//! two-stage attestation, AES-GCM channels with per-direction keys,
//! checkpoint serving. The monitor cannot tell the placements apart
//! except through the transport handle — which is exactly the
//! conformance property `tests/dist_conformance.rs` pins down.
//!
//! What crosses the process boundary in the clear is only what the
//! untrusted orchestrator legitimately holds: public init-variant code,
//! the public first-stage manifest, the *sealed* payload blob, and the
//! platform root. The platform root models hardware provisioning (in
//! reality each machine's attestation key is fused silicon and the
//! verifier trusts the vendor's PKI; the simulation spans one platform
//! across host processes by sharing the root) — the variant key and
//! session secrets still only ever travel inside the attested key
//! release.
//!
//! Supervision additions: when a [`SupervisionPolicy`] is enabled the
//! worker keepalive-pings the heartbeat lane so the monitor's
//! [`HeartbeatMonitor`](crate::supervisor::HeartbeatMonitor) can tell a
//! stalled peer from a slow one, and with `reconnect` the monitor
//! retains each worker's accept socket in a [`WorkerRegistry`] so a
//! live worker whose connection dropped can redial (`--resume`) and be
//! re-placed without a full respawn.

use crate::config::SupervisionPolicy;
use crate::deployment::VariantArtifact;
use crate::variant_host::{spawn_variant, variant_main, VariantHandle, VariantLaunch};
use crate::{MvxError, Result};
use mvtee_crypto::channel::{memory_pair, FrameTransport};
use mvtee_crypto::mux::{
    self, MuxLane, LANE_BOOTSTRAP, LANE_HEARTBEAT, LANE_REQUEST, LANE_RESPONSE,
};
use mvtee_crypto::tcp::{bind_loopback, TcpTransport};
use mvtee_faults::{Attack, FaultDirection, FaultyTransport, FrameFlip, LivenessFault, NetFault};
use mvtee_tee::{Manifest, Platform, TeeKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Where a variant host runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VariantPlacement {
    /// A thread inside the monitor's process (the co-located default).
    #[default]
    InProcess,
    /// A spawned `mvtee-variantd` worker process over attested TCP.
    OutOfProcess,
}

/// Everything the untrusted orchestrator ships to a worker process —
/// the exact out-of-process analogue of [`VariantLaunch`] minus the
/// simulated platform faults (those model compromises of *this*
/// process's software stack and stay in-process).
///
/// [`VariantLaunch`]: crate::variant_host::VariantLaunch
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerPlacement {
    /// Partition index (public placement information).
    pub partition: usize,
    /// Variant index within the partition.
    pub variant_index: usize,
    /// TEE flavour to launch.
    pub tee_kind: TeeKind,
    /// Exported platform root ([`Platform::export_root`]).
    pub platform_root: [u8; 32],
    /// Public init-variant code bytes.
    pub init_code: Vec<u8>,
    /// Public first-stage manifest.
    pub init_manifest: Manifest,
    /// Host-storage path of the sealed payload.
    pub bundle_path: String,
    /// Salt of the sealed payload.
    pub sealed_salt: [u8; 16],
    /// Ciphertext of the sealed payload.
    pub sealed_blob: Vec<u8>,
    /// Whether data-plane traffic is encrypted.
    pub encrypt: bool,
    /// Keepalive ping period on the heartbeat lane, in milliseconds.
    /// Zero disables the worker-side pinger (no supervision).
    pub heartbeat_interval_ms: u64,
}

/// Locates the `mvtee-variantd` worker binary: the `MVTEE_VARIANTD`
/// environment variable wins, otherwise the directories around the
/// current executable are searched (`target/<profile>/deps` for test
/// binaries, `target/<profile>` for the experiments binary — both
/// resolve to the sibling `target/<profile>/mvtee-variantd` that a
/// workspace build produces).
///
/// # Errors
///
/// When no candidate resolves to a file, the error lists every path
/// that was searched plus how to fix it — build the workspace binary or
/// point `MVTEE_VARIANTD` at one.
pub fn worker_binary() -> Result<PathBuf> {
    let mut searched = Vec::new();
    if let Ok(path) = std::env::var("MVTEE_VARIANTD") {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        searched.push(format!("{} (from MVTEE_VARIANTD)", path.display()));
    }
    if let Ok(exe) = std::env::current_exe() {
        let mut dir = exe.parent().map(Path::to_path_buf);
        for _ in 0..3 {
            let Some(d) = dir else { break };
            let candidate = d.join(format!("mvtee-variantd{}", std::env::consts::EXE_SUFFIX));
            if candidate.is_file() {
                return Ok(candidate);
            }
            searched.push(candidate.display().to_string());
            dir = d.parent().map(Path::to_path_buf);
        }
    } else {
        searched.push("<current executable unresolvable>".into());
    }
    Err(MvxError::InvalidConfig(format!(
        "no mvtee-variantd worker binary found; searched: [{}] — build it with \
         `cargo build --bin mvtee-variantd` or set MVTEE_VARIANTD to its path",
        searched.join(", ")
    )))
}

/// Retained worker accept sockets, keyed by `(partition, variant)`.
///
/// Populated when the supervision policy allows reconnection: the
/// monitor keeps each worker's listening socket open after the first
/// accept so a worker whose connection dropped can redial the *same*
/// port and resume, instead of being killed and respawned. Cleared
/// before pipeline teardown so lingering `--resume` workers get
/// connection-refused and exit on their own.
pub(crate) type WorkerRegistry = Arc<Mutex<HashMap<(usize, usize), TcpListener>>>;

/// The monitor-side transports of one placed variant, plus its host
/// handle — what [`place_variant`] hands back regardless of placement.
pub(crate) struct PlacedVariant {
    /// Thread or process handle.
    pub handle: VariantHandle,
    /// Bootstrap transport (monitor side).
    pub boot: Box<dyn FrameTransport>,
    /// Stage-request transport (monitor side).
    pub request: Box<dyn FrameTransport>,
    /// Stage-response transport (monitor side).
    pub response: Box<dyn FrameTransport>,
    /// Heartbeat lane (monitor side), present for out-of-process
    /// placements — the supervisor watches it with a receive deadline.
    pub heartbeat: Option<MuxLane>,
}

/// Supervision-driven options for spawning one worker process.
#[derive(Default)]
pub(crate) struct SpawnOptions<'a> {
    /// Pass `--resume` so the child redials after connection loss.
    pub resume: bool,
    /// Retain the accept socket here for reconnect-and-resume.
    pub registry: Option<&'a WorkerRegistry>,
    /// Wrap the worker connection in a deterministic wire-fault
    /// injector (the adversarial-network harness). Heartbeat frames are
    /// exempt from one-shot faults so liveness verdicts stay about the
    /// data plane — an ongoing stall still silences them, which is the
    /// point.
    pub netfault: Option<NetFault>,
}

/// Lane layout of a worker connection, in [`mux::split`] order.
pub(crate) const WORKER_LANES: [u8; 4] =
    [LANE_BOOTSTRAP, LANE_REQUEST, LANE_RESPONSE, LANE_HEARTBEAT];

/// How long the monitor waits for a freshly spawned worker to dial back.
const WORKER_CONNECT_TIMEOUT: Duration = Duration::from_secs(30);

/// How long a resumed worker waits for the monitor to re-send a
/// placement after redialling. A connect can succeed via the retained
/// listener's backlog even when the monitor is not actively
/// reconnecting, so the placement wait needs its own deadline.
const RESUME_PLACEMENT_TIMEOUT: Duration = Duration::from_secs(3);

/// Consecutive failed redial attempts before a resuming worker exits.
const RESUME_MAX_STRIKES: u32 = 5;

/// Pause between redial attempts.
const RESUME_RETRY_DELAY: Duration = Duration::from_millis(50);

/// Spawns one `mvtee-variantd` worker: binds an ephemeral loopback port,
/// launches the binary pointed at it, accepts the connection, splits it
/// into lanes and ships the placement down the bootstrap lane.
///
/// # Errors
///
/// Fails when the binary cannot be spawned, the worker does not connect
/// within the timeout (the worker is killed), or the placement cannot be
/// serialised.
pub(crate) fn spawn_worker_process(
    bin: &Path,
    placement: &WorkerPlacement,
    opts: &SpawnOptions<'_>,
) -> Result<PlacedVariant> {
    let (partition, variant_index) = (placement.partition, placement.variant_index);
    let (listener, port) =
        bind_loopback().map_err(|e| MvxError::Transport(e.to_string()))?;
    let mut cmd = Command::new(bin);
    cmd.arg("--connect").arg(format!("127.0.0.1:{port}"));
    if opts.resume {
        cmd.arg("--resume");
    }
    let mut child = cmd
        .stdin(Stdio::null())
        .spawn()
        .map_err(|e| MvxError::Transport(format!("spawn {}: {e}", bin.display())))?;

    listener
        .set_nonblocking(true)
        .map_err(|e| MvxError::Transport(format!("listener nonblocking: {e}")))?;
    let deadline = Instant::now() + WORKER_CONNECT_TIMEOUT;
    let stream = loop {
        match listener.accept() {
            Ok((stream, _)) => break stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if let Ok(Some(status)) = child.try_wait() {
                    return Err(MvxError::Transport(format!(
                        "worker p{partition}v{variant_index} exited before connecting: {status}"
                    )));
                }
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(MvxError::Transport(format!(
                        "worker p{partition}v{variant_index} never connected"
                    )));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(MvxError::Transport(format!("worker accept failed: {e}")));
            }
        }
    };
    stream
        .set_nonblocking(false)
        .map_err(|e| MvxError::Transport(format!("stream blocking: {e}")))?;
    let transport =
        TcpTransport::new(stream).map_err(|e| MvxError::Transport(e.to_string()))?;
    let mut lanes = match opts.netfault {
        Some(nf) => mux::split(
            FaultyTransport::new(transport, nf, FaultDirection::Recv)
                .exempt_lane(LANE_HEARTBEAT),
            &WORKER_LANES,
        ),
        None => mux::split(transport, &WORKER_LANES),
    };
    let heartbeat = lanes.pop().expect("four lanes");
    let response = lanes.pop().expect("four lanes");
    let request = lanes.pop().expect("four lanes");
    let boot = lanes.pop().expect("four lanes");

    boot.send_frame(crate::messages::encode(placement)?)
        .map_err(|e| MvxError::Transport(format!("placement send: {e}")))?;
    if let Some(registry) = opts.registry {
        // Keep the (nonblocking) accept socket so the worker can redial
        // this port if its connection drops.
        registry
            .lock()
            .expect("worker registry poisoned")
            .insert((partition, variant_index), listener);
    }
    mvtee_telemetry::counter("core.worker.spawned").inc();
    Ok(PlacedVariant {
        handle: VariantHandle::from_process(partition, variant_index, child),
        boot: Box::new(boot),
        request: Box::new(request),
        response: Box::new(response),
        heartbeat: Some(heartbeat),
    })
}

/// The `mvtee-variantd` worker entry point: connect back to the monitor,
/// receive the placement, then run the standard variant-host main loop
/// over the multiplexed lanes until shutdown or connection loss.
///
/// With `resume` the worker does not exit when its placement ends:
/// it redials the same address — the monitor retains the accept socket
/// in its [`WorkerRegistry`] — and serves a fresh placement if one
/// arrives. A monitor that has shut down (or never re-places) shows up
/// as consecutive refused/placement-less attempts, after which the
/// worker exits cleanly.
///
/// # Errors
///
/// Fails on first-connection loss, a malformed placement, or any
/// variant-host failure (bootstrap rejection, manifest violation…).
pub fn run_worker(addr: &str, resume: bool) -> Result<()> {
    // The first connection must succeed: failures here are spawn or
    // configuration errors, not transient network loss.
    serve_connection(addr, false)?;
    if !resume {
        return Ok(());
    }
    let mut strikes = 0u32;
    while strikes < RESUME_MAX_STRIKES {
        match serve_connection(addr, true) {
            Ok(()) => strikes = 0,
            Err(_) => {
                strikes += 1;
                std::thread::sleep(RESUME_RETRY_DELAY);
            }
        }
    }
    Ok(())
}

/// One worker connection: dial, split lanes, receive the placement,
/// start the keepalive pinger, run the variant host to completion.
fn serve_connection(addr: &str, resumed: bool) -> Result<()> {
    let transport =
        TcpTransport::connect(addr).map_err(|e| MvxError::Transport(e.to_string()))?;
    let mut lanes = mux::split(transport, &WORKER_LANES);
    let heartbeat: MuxLane = lanes.pop().expect("four lanes");
    let response: MuxLane = lanes.pop().expect("four lanes");
    let request: MuxLane = lanes.pop().expect("four lanes");
    let boot: MuxLane = lanes.pop().expect("four lanes");

    let placement_bytes = if resumed {
        boot.recv_frame_deadline(RESUME_PLACEMENT_TIMEOUT)
    } else {
        boot.recv_frame()
    }
    .map_err(|e| MvxError::Transport(format!("placement recv: {e}")))?;
    let placement: WorkerPlacement = crate::messages::decode(&placement_bytes)?;
    // Keepalive starts before bootstrap so the supervisor's first
    // deadline window already sees pings; held until variant_main ends,
    // then dropped (stopping the pinger) with the connection.
    let _keepalive = (placement.heartbeat_interval_ms > 0).then(|| {
        mux::spawn_keepalive(heartbeat, Duration::from_millis(placement.heartbeat_interval_ms))
    });
    let launch = VariantLaunch {
        partition: placement.partition,
        variant_index: placement.variant_index,
        tee_kind: placement.tee_kind,
        platform: Platform::from_root(placement.platform_root),
        init_code: placement.init_code,
        init_manifest: placement.init_manifest,
        bundle_path: placement.bundle_path,
        sealed_blob: (placement.sealed_salt, placement.sealed_blob),
        encrypt: placement.encrypt,
        attack: None,
        frameflip: None,
        liveness: None,
        bootstrap: Box::new(boot),
        request: Box::new(request),
        response: Box::new(response),
    };
    variant_main(launch)
}

/// Simulated faults a variant host can carry — grouped so placement
/// dispatch can reject them wholesale for out-of-process variants.
#[derive(Default)]
pub(crate) struct HostFaults {
    /// Simulated CVE attack on the host's software stack.
    pub attack: Option<Attack>,
    /// Simulated platform-wide FrameFlip.
    pub frameflip: Option<FrameFlip>,
    /// Simulated liveness fault (stall or lossy channel).
    pub liveness: Option<LivenessFault>,
}

impl HostFaults {
    fn any(&self) -> bool {
        self.attack.is_some() || self.frameflip.is_some() || self.liveness.is_some()
    }
}

/// Places one variant host per the requested [`VariantPlacement`]: a
/// thread over in-memory transports, or a `mvtee-variantd` process over
/// multiplexed TCP lanes. The monitor-side result is placement-agnostic —
/// the same boxed transports either way.
///
/// A `netfault` — unlike [`HostFaults`] — models the *network between*
/// monitor and variant, so it is legal for both placements: in-process
/// it wraps the variant's response transport, out-of-process it wraps
/// the worker connection underneath the mux.
///
/// # Errors
///
/// Out-of-process placement fails when simulated faults are requested
/// (they model compromises of *this* process's stack and only make sense
/// in-process), when no worker binary can be located, or on any spawn /
/// connect failure.
#[allow(clippy::too_many_arguments)]
pub(crate) fn place_variant(
    placement: VariantPlacement,
    worker_bin: Option<&Path>,
    partition: usize,
    variant_index: usize,
    tee_kind: TeeKind,
    platform: &Platform,
    init_code: &[u8],
    artifact: &VariantArtifact,
    encrypt: bool,
    faults: HostFaults,
    netfault: Option<NetFault>,
    supervision: &SupervisionPolicy,
    registry: Option<&WorkerRegistry>,
) -> Result<PlacedVariant> {
    match placement {
        VariantPlacement::InProcess => {
            let (boot_monitor, boot_variant) = memory_pair();
            let (req_monitor, req_variant) = memory_pair();
            let (resp_variant, resp_monitor) = memory_pair();
            let response_transport: Box<dyn FrameTransport> = match netfault {
                Some(nf) => {
                    Box::new(FaultyTransport::new(resp_variant, nf, FaultDirection::Send))
                }
                None => Box::new(resp_variant),
            };
            let launch = VariantLaunch {
                partition,
                variant_index,
                tee_kind,
                platform: platform.clone(),
                init_code: init_code.to_vec(),
                init_manifest: artifact.init_manifest.clone(),
                bundle_path: artifact.bundle_path.clone(),
                sealed_blob: artifact.sealed.clone(),
                encrypt,
                attack: faults.attack,
                frameflip: faults.frameflip,
                liveness: faults.liveness,
                bootstrap: Box::new(boot_variant),
                request: Box::new(req_variant),
                response: response_transport,
            };
            Ok(PlacedVariant {
                handle: spawn_variant(launch),
                boot: Box::new(boot_monitor),
                request: Box::new(req_monitor),
                response: Box::new(resp_monitor),
                heartbeat: None,
            })
        }
        VariantPlacement::OutOfProcess => {
            if faults.any() {
                return Err(MvxError::InvalidConfig(format!(
                    "variant p{partition}v{variant_index}: simulated platform faults \
                     (attack/frameflip/liveness) target this process's software stack \
                     and cannot be placed out-of-process"
                )));
            }
            let resolved;
            let bin = match worker_bin {
                Some(bin) => bin,
                None => {
                    resolved = worker_binary()?;
                    &resolved
                }
            };
            let heartbeat_ms =
                if supervision.enabled { supervision.heartbeat_interval_ms } else { 0 };
            let placement = placement_for(
                partition,
                variant_index,
                tee_kind,
                platform,
                init_code,
                artifact,
                encrypt,
                heartbeat_ms,
            );
            let reconnect = supervision.enabled && supervision.reconnect;
            let opts = SpawnOptions {
                resume: reconnect,
                registry: if reconnect { registry } else { None },
                netfault,
            };
            spawn_worker_process(bin, &placement, &opts)
        }
    }
}

/// Builds the [`WorkerPlacement`] for one variant from its offline
/// artifact — the single construction shared by launch and recovery.
#[allow(clippy::too_many_arguments)]
pub(crate) fn placement_for(
    partition: usize,
    variant_index: usize,
    tee_kind: TeeKind,
    platform: &Platform,
    init_code: &[u8],
    artifact: &VariantArtifact,
    encrypt: bool,
    heartbeat_interval_ms: u64,
) -> WorkerPlacement {
    WorkerPlacement {
        partition,
        variant_index,
        tee_kind,
        platform_root: platform.export_root(),
        init_code: init_code.to_vec(),
        init_manifest: artifact.init_manifest.clone(),
        bundle_path: artifact.bundle_path.clone(),
        sealed_salt: artifact.sealed.0,
        sealed_blob: artifact.sealed.1.clone(),
        encrypt,
        heartbeat_interval_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{decode, encode};

    #[test]
    fn worker_placement_round_trips_through_codec() {
        let placement = WorkerPlacement {
            partition: 1,
            variant_index: 2,
            tee_kind: TeeKind::Sgx,
            platform_root: [7u8; 32],
            init_code: b"init".to_vec(),
            init_manifest: Manifest::init_variant("init-p1-v2"),
            bundle_path: "/enc/p1/v2".into(),
            sealed_salt: [9u8; 16],
            sealed_blob: vec![1, 2, 3, 4],
            encrypt: true,
            heartbeat_interval_ms: 250,
        };
        let bytes = encode(&placement).unwrap();
        let back: WorkerPlacement = decode(&bytes).unwrap();
        assert_eq!(back.partition, 1);
        assert_eq!(back.variant_index, 2);
        assert_eq!(back.platform_root, [7u8; 32]);
        assert_eq!(back.init_manifest, placement.init_manifest);
        assert_eq!(back.sealed_salt, [9u8; 16]);
        assert_eq!(back.sealed_blob, vec![1, 2, 3, 4]);
        assert!(back.encrypt);
        assert_eq!(back.heartbeat_interval_ms, 250);
    }

    #[test]
    fn worker_binary_resolver_reports_what_it_searched() {
        // Whatever the environment, the resolver either produces a real
        // file or an error naming the searched paths and the override.
        match worker_binary() {
            Ok(bin) => assert!(bin.is_file()),
            Err(e) => {
                let msg = e.to_string();
                assert!(msg.contains("MVTEE_VARIANTD"), "error must hint the override: {msg}");
                assert!(msg.contains("searched"), "error must list searched paths: {msg}");
            }
        }
    }
}
