//! Wire protocol between the monitor TEE and variant TEEs.
//!
//! Two phases share the transports: the bootstrap/attestation protocol of
//! Fig 6 (plaintext transport + report-bound DH handshake) and the data
//! plane (encrypted, sequence-numbered frames carrying checkpoint
//! tensors). All messages are encoded with `mvtee-codec`.

use mvtee_tee::AttestationReport;
use mvtee_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Monitor → init-variant bootstrap messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BootstrapRequest {
    /// Step ②/⑤ of Fig 6: challenge with a fresh nonce.
    Challenge {
        /// Anti-replay nonce the report must bind.
        nonce: [u8; 32],
        /// The monitor's ephemeral X25519 public key.
        monitor_dh_public: [u8; 32],
    },
    /// Step ⑤: key + identity release, sealed under the session key
    /// (`payload = seal(KeyRelease)`).
    SealedKeyRelease {
        /// AES-GCM-256-sealed [`KeyRelease`] (nonce ‖ ciphertext ‖ tag).
        payload: Vec<u8>,
    },
}

/// The plaintext of the sealed key-release message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeyRelease {
    /// The variant-specific key-derivation key.
    pub variant_key: [u8; 32],
    /// The assigned variant identifier.
    pub variant_id: u64,
    /// Path of the sealed bundle on the variant's host storage.
    pub bundle_path: String,
    /// Expected hash of the second-stage manifest the variant must
    /// install (from the offline tool).
    pub expected_manifest_hash: [u8; 32],
}

/// Init-variant → monitor bootstrap messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BootstrapResponse {
    /// Reply to a challenge: attestation report binding
    /// `H(nonce) ‖ H(dh_publics)` plus the variant's DH public key.
    Evidence {
        /// The hardware-signed report.
        report: AttestationReport,
        /// The variant's ephemeral X25519 public key.
        variant_dh_public: [u8; 32],
    },
    /// Step ⑥: manifest installed, exec'd; evidence of the enforced
    /// second-stage manifest, sealed under the session key.
    SealedInstallEvidence {
        /// AES-GCM-256-sealed [`InstallEvidence`].
        payload: Vec<u8>,
    },
    /// Bootstrap failed on the variant side.
    Failed {
        /// Reason.
        reason: String,
    },
}

/// The plaintext of the sealed install-evidence message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstallEvidence {
    /// Variant id echoed back.
    pub variant_id: u64,
    /// Hash of the now-enforced second-stage manifest.
    pub manifest_hash: [u8; 32],
    /// Post-exec enclave measurement.
    pub measurement: [u8; 32],
}

/// Data-plane message from a stage coordinator to a variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StageRequest {
    /// Run inference on one batch.
    Input {
        /// Monotone batch id.
        batch: u64,
        /// Propagated trace context as a raw `(trace, span)` pair
        /// (`(0, 0)` when tracing is off); see
        /// [`mvtee_telemetry::trace::TraceCtx`].
        trace: (u64, u64),
        /// Input tensors in the partition subgraph's input order.
        tensors: Vec<Tensor>,
    },
    /// Terminate the variant TEE.
    Shutdown,
}

/// Data-plane message from a variant back to its stage coordinator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StageResponse {
    /// Inference result for a batch.
    Output {
        /// Batch id echoed back.
        batch: u64,
        /// Output tensors in the subgraph's output order.
        tensors: Vec<Tensor>,
    },
    /// The variant crashed while processing a batch (the process would be
    /// dead; the message models the monitor's crash observation).
    Crashed {
        /// Batch id that triggered the crash.
        batch: u64,
        /// Reason string.
        reason: String,
    },
}

/// Derives the bootstrap session secret from the DH shared secret and the
/// challenge nonce. Both protocol sides call this one function so the
/// derivation can never drift apart.
pub fn bootstrap_session_secret(shared: &[u8; 32], nonce: &[u8; 32]) -> [u8; 32] {
    let mut ikm = Vec::with_capacity(64);
    ikm.extend_from_slice(shared);
    ikm.extend_from_slice(nonce);
    mvtee_crypto::sha256::derive_key32(&ikm, "mvtee-bootstrap-session")
}

/// The handshake transcript hash binding both DH public keys
/// (monitor-first order), mirrored by both protocol sides.
pub fn bootstrap_transcript_hash(monitor_pub: &[u8; 32], variant_pub: &[u8; 32]) -> [u8; 32] {
    let mut transcript = Vec::with_capacity(64);
    transcript.extend_from_slice(monitor_pub);
    transcript.extend_from_slice(variant_pub);
    mvtee_crypto::sha256::sha256(&transcript)
}

/// Encodes any protocol message.
pub fn encode<T: Serialize>(msg: &T) -> crate::Result<Vec<u8>> {
    mvtee_codec::to_bytes(msg).map_err(|e| crate::MvxError::Codec(e.to_string()))
}

/// Decodes any protocol message.
pub fn decode<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> crate::Result<T> {
    mvtee_codec::from_bytes(bytes).map_err(|e| crate::MvxError::Codec(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_messages_round_trip() {
        let req = BootstrapRequest::Challenge {
            nonce: [7u8; 32],
            monitor_dh_public: [9u8; 32],
        };
        let bytes = encode(&req).unwrap();
        assert_eq!(decode::<BootstrapRequest>(&bytes).unwrap(), req);

        let release = KeyRelease {
            variant_key: [1u8; 32],
            variant_id: 42,
            bundle_path: "/enc/p2/v1".into(),
            expected_manifest_hash: [3u8; 32],
        };
        let bytes = encode(&release).unwrap();
        assert_eq!(decode::<KeyRelease>(&bytes).unwrap(), release);
    }

    #[test]
    fn stage_messages_round_trip() {
        let msg = StageRequest::Input {
            batch: 9,
            trace: (0xfeed, 0xbeef),
            tensors: vec![Tensor::ones(&[2, 3]), Tensor::zeros(&[1])],
        };
        let bytes = encode(&msg).unwrap();
        assert_eq!(decode::<StageRequest>(&bytes).unwrap(), msg);

        let resp = StageResponse::Crashed { batch: 9, reason: "CVE".into() };
        let bytes = encode(&resp).unwrap();
        assert_eq!(decode::<StageResponse>(&bytes).unwrap(), resp);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode::<StageRequest>(b"nope").is_err());
    }
}
