//! Merkle-chained checkpoint transcripts for offline audit.
//!
//! Every **voted** checkpoint verdict (async quorum pass, sync
//! agreement, divergence) appends a [`TranscriptEntry`]; fast-path
//! forwards are deliberately excluded because nothing cross-checked
//! them. Rendering produces a JSONL artifact in which entry *i* carries
//!
//! ```text
//! chain_i = SHA-256(chain_{i-1} || partition || batch || epoch
//!                   || verdict_tag || payload_digest)
//! ```
//!
//! with `chain_{-1} = SHA-256(header line)`, so the header (schema,
//! seed, config fingerprint) is welded into the chain, and a footer
//! repeating the entry count and final chain head makes even an empty
//! or truncated transcript tamper-evident. [`verify_transcript`]
//! replays the chain and reports the first tamper or gap.
//!
//! # Determinism
//!
//! Coordinator threads append concurrently, so in-memory order is
//! nondeterministic; [`TranscriptLog::render`] therefore sorts entries
//! by `(batch, partition)` — a total order, because each partition
//! reaches at most one voted verdict per batch — before chaining.
//! For a fixed seed the rendered transcript is byte-identical across
//! runs.

use mvtee_crypto::sha256::sha256;
use mvtee_tensor::Tensor;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Schema tag stamped into the transcript header and footer.
pub const TRANSCRIPT_SCHEMA: &str = "mvtee-audit-v1";

/// The voted outcome recorded for one checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranscriptVerdict {
    /// The panel agreed; `agreeing` variants vouched for the output.
    Pass {
        /// Number of variants that agreed on the forwarded output.
        agreeing: usize,
    },
    /// The panel diverged; `dissenting` variant indices disagreed with
    /// the (possible) majority.
    Diverged {
        /// Variant indices voted out by the majority.
        dissenting: Vec<usize>,
    },
}

impl TranscriptVerdict {
    /// Canonical string form hashed into the chain, e.g. `pass:3` or
    /// `diverged:0,2`.
    pub fn tag(&self) -> String {
        match self {
            TranscriptVerdict::Pass { agreeing } => format!("pass:{agreeing}"),
            TranscriptVerdict::Diverged { dissenting } => {
                let list: Vec<String> = dissenting.iter().map(usize::to_string).collect();
                format!("diverged:{}", list.join(","))
            }
        }
    }

    fn parse(tag: &str) -> Option<TranscriptVerdict> {
        if let Some(n) = tag.strip_prefix("pass:") {
            return n.parse().ok().map(|agreeing| TranscriptVerdict::Pass { agreeing });
        }
        if let Some(list) = tag.strip_prefix("diverged:") {
            if list.is_empty() {
                return Some(TranscriptVerdict::Diverged { dissenting: Vec::new() });
            }
            let dissenting: Option<Vec<usize>> =
                list.split(',').map(|v| v.parse().ok()).collect();
            return dissenting.map(|dissenting| TranscriptVerdict::Diverged { dissenting });
        }
        None
    }
}

/// One voted checkpoint in the transcript.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranscriptEntry {
    /// Partition whose checkpoint this is.
    pub partition: usize,
    /// Pipeline batch number.
    pub batch: u64,
    /// Sum of the partition's per-variant channel epochs at the vote.
    pub epoch: u64,
    /// The voted verdict.
    pub verdict: TranscriptVerdict,
    /// SHA-256 over the checkpoint payload (shapes + f32 bits).
    pub payload_digest: [u8; 32],
}

/// Thread-safe append-only log of voted checkpoint verdicts.
///
/// Cloning shares the underlying log; coordinators for different
/// partitions append concurrently.
#[derive(Debug, Clone, Default)]
pub struct TranscriptLog {
    inner: Arc<Mutex<Vec<TranscriptEntry>>>,
}

impl TranscriptLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one voted verdict.
    pub fn record(&self, entry: TranscriptEntry) {
        self.inner.lock().expect("transcript lock").push(entry);
        mvtee_telemetry::counter("audit.transcript.entries").inc();
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("transcript lock").len()
    }

    /// Whether no verdict has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out the entries in canonical `(batch, partition)` order.
    pub fn entries(&self) -> Vec<TranscriptEntry> {
        let mut entries = self.inner.lock().expect("transcript lock").clone();
        entries.sort_by_key(|e| (e.batch, e.partition));
        entries
    }

    /// Renders the Merkle-chained JSONL transcript.
    ///
    /// `seed` and `fingerprint` identify the run configuration; both are
    /// hashed into the genesis link via the header line.
    pub fn render(&self, seed: u64, fingerprint: &str) -> String {
        let entries = self.entries();
        let header = format!(
            "{{\"schema\":\"{TRANSCRIPT_SCHEMA}\",\"seed\":{seed},\"fingerprint\":{}}}",
            json_escape(fingerprint)
        );
        let mut out = String::new();
        let _ = writeln!(out, "{header}");
        let mut chain = sha256(header.as_bytes());
        for (seq, e) in entries.iter().enumerate() {
            chain = chain_hash(&chain, e);
            let _ = writeln!(
                out,
                "{{\"seq\":{seq},\"partition\":{},\"batch\":{},\"epoch\":{},\"verdict\":{},\"payload\":\"{}\",\"chain\":\"{}\"}}",
                e.partition,
                e.batch,
                e.epoch,
                json_escape(&e.verdict.tag()),
                hex(&e.payload_digest),
                hex(&chain),
            );
        }
        let _ = writeln!(
            out,
            "{{\"footer\":\"{TRANSCRIPT_SCHEMA}\",\"entries\":{},\"head\":\"{}\"}}",
            entries.len(),
            hex(&chain),
        );
        out
    }
}

/// SHA-256 digest over a checkpoint payload: for each tensor, its rank,
/// dimensions and f32 element bit patterns, all little-endian.
pub fn payload_digest(tensors: &[Tensor]) -> [u8; 32] {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(tensors.len() as u64).to_le_bytes());
    for t in tensors {
        let dims = t.dims();
        buf.extend_from_slice(&(dims.len() as u64).to_le_bytes());
        for &d in dims {
            buf.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for &v in t.data() {
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    sha256(&buf)
}

fn chain_hash(prev: &[u8; 32], e: &TranscriptEntry) -> [u8; 32] {
    let tag = e.verdict.tag();
    let mut buf = Vec::with_capacity(32 + 8 * 4 + tag.len() + 32);
    buf.extend_from_slice(prev);
    buf.extend_from_slice(&(e.partition as u64).to_le_bytes());
    buf.extend_from_slice(&e.batch.to_le_bytes());
    buf.extend_from_slice(&e.epoch.to_le_bytes());
    buf.extend_from_slice(&(tag.len() as u64).to_le_bytes());
    buf.extend_from_slice(tag.as_bytes());
    buf.extend_from_slice(&e.payload_digest);
    sha256(&buf)
}

fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Why a transcript failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// A line is not parseable transcript JSON.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// A chain link, head, ordering or field digest does not replay.
    Tamper {
        /// 1-based line number of the offending entry.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// A sequence number or the footer count shows missing entries.
    Gap {
        /// 1-based line number where the gap was detected.
        line: usize,
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Parse { line, detail } => write!(f, "line {line}: parse error: {detail}"),
            AuditError::Tamper { line, detail } => write!(f, "line {line}: TAMPER: {detail}"),
            AuditError::Gap { line, detail } => write!(f, "line {line}: GAP: {detail}"),
        }
    }
}

impl std::error::Error for AuditError {}

/// Result of a successful transcript verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditSummary {
    /// Seed from the header.
    pub seed: u64,
    /// Config fingerprint from the header.
    pub fingerprint: String,
    /// Total verified entries.
    pub entries: usize,
    /// Distinct partitions seen.
    pub partitions: usize,
    /// Entries with a `pass` verdict.
    pub passes: usize,
    /// Entries with a `diverged` verdict.
    pub divergences: usize,
    /// Final chain head, hex-encoded.
    pub head: String,
}

/// Replays a rendered transcript's hash chain.
///
/// # Errors
///
/// Returns the first [`AuditError`] found: unparseable lines, any chain
/// link or footer head that does not recompute (tamper), out-of-order
/// or duplicate `(batch, partition)` keys (tamper), or sequence/count
/// discontinuities (gap).
pub fn verify_transcript(text: &str) -> Result<AuditSummary, AuditError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or(AuditError::Parse { line: 1, detail: "empty transcript".into() })?;
    let header_fields = parse_flat(header)
        .map_err(|detail| AuditError::Parse { line: 1, detail })?;
    let schema = header_fields
        .get("schema")
        .and_then(Field::as_str)
        .ok_or(AuditError::Parse { line: 1, detail: "missing schema".into() })?;
    if schema != TRANSCRIPT_SCHEMA {
        return Err(AuditError::Parse {
            line: 1,
            detail: format!("unknown schema {schema:?}"),
        });
    }
    let seed = header_fields
        .get("seed")
        .and_then(Field::as_int)
        .ok_or(AuditError::Parse { line: 1, detail: "missing seed".into() })? as u64;
    let fingerprint = header_fields
        .get("fingerprint")
        .and_then(Field::as_str)
        .ok_or(AuditError::Parse { line: 1, detail: "missing fingerprint".into() })?
        .to_owned();

    let mut chain = sha256(header.as_bytes());
    let mut summary = AuditSummary {
        seed,
        fingerprint,
        entries: 0,
        partitions: 0,
        passes: 0,
        divergences: 0,
        head: hex(&chain),
    };
    let mut partitions: BTreeMap<usize, ()> = BTreeMap::new();
    let mut prev_key: Option<(u64, usize)> = None;
    let mut footer_seen = false;

    for (idx, raw) in lines {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if footer_seen {
            return Err(AuditError::Parse {
                line: lineno,
                detail: "content after footer".into(),
            });
        }
        let fields = parse_flat(line)
            .map_err(|detail| AuditError::Parse { line: lineno, detail })?;
        if fields.contains_key("footer") {
            let foot_schema = fields
                .get("footer")
                .and_then(Field::as_str)
                .ok_or(AuditError::Parse { line: lineno, detail: "bad footer".into() })?;
            if foot_schema != TRANSCRIPT_SCHEMA {
                return Err(AuditError::Tamper {
                    line: lineno,
                    detail: format!("footer schema {foot_schema:?}"),
                });
            }
            let count = fields
                .get("entries")
                .and_then(Field::as_int)
                .ok_or(AuditError::Parse { line: lineno, detail: "footer missing entries".into() })?;
            if count != summary.entries as i128 {
                return Err(AuditError::Gap {
                    line: lineno,
                    detail: format!(
                        "footer claims {count} entries, found {}",
                        summary.entries
                    ),
                });
            }
            let head = fields
                .get("head")
                .and_then(Field::as_str)
                .ok_or(AuditError::Parse { line: lineno, detail: "footer missing head".into() })?;
            if head != hex(&chain) {
                return Err(AuditError::Tamper {
                    line: lineno,
                    detail: "footer head does not match replayed chain".into(),
                });
            }
            footer_seen = true;
            continue;
        }

        let int = |key: &str| -> Result<i128, AuditError> {
            fields
                .get(key)
                .and_then(Field::as_int)
                .ok_or(AuditError::Parse { line: lineno, detail: format!("missing {key}") })
        };
        let text_field = |key: &str| -> Result<&str, AuditError> {
            fields
                .get(key)
                .and_then(Field::as_str)
                .ok_or(AuditError::Parse { line: lineno, detail: format!("missing {key}") })
        };
        let seq = int("seq")? as usize;
        if seq != summary.entries {
            return Err(AuditError::Gap {
                line: lineno,
                detail: format!("expected seq {}, found {seq}", summary.entries),
            });
        }
        let partition = int("partition")? as usize;
        let batch = int("batch")? as u64;
        let epoch = int("epoch")? as u64;
        let verdict_tag = text_field("verdict")?;
        let verdict = TranscriptVerdict::parse(verdict_tag).ok_or(AuditError::Parse {
            line: lineno,
            detail: format!("bad verdict {verdict_tag:?}"),
        })?;
        let payload = from_hex(text_field("payload")?)
            .filter(|v| v.len() == 32)
            .ok_or(AuditError::Parse { line: lineno, detail: "bad payload digest".into() })?;
        let key = (batch, partition);
        if let Some(prev) = prev_key {
            if key <= prev {
                return Err(AuditError::Tamper {
                    line: lineno,
                    detail: format!(
                        "entries out of canonical order: {key:?} after {prev:?}"
                    ),
                });
            }
        }
        prev_key = Some(key);
        let mut digest = [0u8; 32];
        digest.copy_from_slice(&payload);
        let entry = TranscriptEntry { partition, batch, epoch, verdict, payload_digest: digest };
        chain = chain_hash(&chain, &entry);
        let claimed = text_field("chain")?;
        if claimed != hex(&chain) {
            return Err(AuditError::Tamper {
                line: lineno,
                detail: "chain link does not replay".into(),
            });
        }
        partitions.insert(partition, ());
        match entry.verdict {
            TranscriptVerdict::Pass { .. } => summary.passes += 1,
            TranscriptVerdict::Diverged { .. } => summary.divergences += 1,
        }
        summary.entries += 1;
    }
    if !footer_seen {
        return Err(AuditError::Gap {
            line: text.lines().count(),
            detail: "transcript truncated: no footer".into(),
        });
    }
    summary.partitions = partitions.len();
    summary.head = hex(&chain);
    Ok(summary)
}

/// Registers the `audit.*` counters so they show up (zero-valued) in
/// reports before the first verdict lands.
pub fn register_audit_metrics() {
    mvtee_telemetry::counter("audit.transcript.entries");
}

#[derive(Debug)]
enum Field {
    Str(String),
    Int(i128),
}

impl Field {
    fn as_str(&self) -> Option<&str> {
        match self {
            Field::Str(s) => Some(s),
            Field::Int(_) => None,
        }
    }

    fn as_int(&self) -> Option<i128> {
        match self {
            Field::Int(i) => Some(*i),
            Field::Str(_) => None,
        }
    }
}

/// Parses one flat `{"key":value,...}` object with string/int values
/// (the transcript emits nothing else).
fn parse_flat(line: &str) -> Result<BTreeMap<String, Field>, String> {
    let mut chars = line.chars().peekable();
    let mut fields = BTreeMap::new();
    skip_ws(&mut chars);
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return Ok(fields);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => Field::Str(parse_string(&mut chars)?),
            Some(c) if *c == '-' || c.is_ascii_digit() => {
                let mut num = String::new();
                while let Some(&c) = chars.peek() {
                    if c == '-' || c.is_ascii_digit() {
                        num.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                Field::Int(num.parse().map_err(|_| format!("bad number {num:?}"))?)
            }
            other => return Err(format!("unexpected value start {other:?}")),
        };
        fields.insert(key, value);
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    Ok(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
        chars.next();
    }
}

fn expect(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    want: char,
) -> Result<(), String> {
    match chars.next() {
        Some(c) if c == want => Ok(()),
        other => Err(format!("expected {want:?}, got {other:?}")),
    }
}

fn parse_string(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<String, String> {
    expect(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex_digits: String =
                        (0..4).map(|_| chars.next().unwrap_or('\u{0}')).collect();
                    let code = u32::from_str_radix(&hex_digits, 16)
                        .map_err(|_| format!("bad \\u escape {hex_digits:?}"))?;
                    out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => out.push(c),
            None => return Err("unterminated string".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> TranscriptLog {
        let log = TranscriptLog::new();
        // Deliberately append out of canonical order: render must sort.
        log.record(TranscriptEntry {
            partition: 1,
            batch: 0,
            epoch: 0,
            verdict: TranscriptVerdict::Pass { agreeing: 3 },
            payload_digest: payload_digest(&[Tensor::ones(&[2, 2])]),
        });
        log.record(TranscriptEntry {
            partition: 0,
            batch: 0,
            epoch: 0,
            verdict: TranscriptVerdict::Pass { agreeing: 2 },
            payload_digest: payload_digest(&[Tensor::zeros(&[4])]),
        });
        log.record(TranscriptEntry {
            partition: 0,
            batch: 1,
            epoch: 2,
            verdict: TranscriptVerdict::Diverged { dissenting: vec![1] },
            payload_digest: payload_digest(&[Tensor::ones(&[4])]),
        });
        log
    }

    #[test]
    fn render_is_canonical_and_verifies() {
        let log = sample_log();
        let text = log.render(42, "test-config");
        let summary = verify_transcript(&text).expect("verifies");
        assert_eq!(summary.entries, 3);
        assert_eq!(summary.partitions, 2);
        assert_eq!(summary.passes, 2);
        assert_eq!(summary.divergences, 1);
        assert_eq!(summary.seed, 42);
        assert_eq!(summary.fingerprint, "test-config");
        // Append order must not matter.
        let log2 = TranscriptLog::new();
        for e in log.entries().into_iter().rev() {
            log2.record(e);
        }
        assert_eq!(log2.render(42, "test-config"), text);
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let text = sample_log().render(7, "cfg");
        let bytes = text.as_bytes();
        // Flip one character per line (inside a hex digest, a number and
        // the header) and expect rejection every time.
        for pos in [10usize, 40, 120, text.len() - 20] {
            let mut tampered = bytes.to_vec();
            tampered[pos] = if tampered[pos] == b'0' { b'1' } else { b'0' };
            if let Ok(t) = String::from_utf8(tampered) {
                if t == text {
                    continue;
                }
                assert!(
                    verify_transcript(&t).is_err(),
                    "flip at byte {pos} went undetected"
                );
            }
        }
    }

    #[test]
    fn dropped_line_is_a_gap() {
        let text = sample_log().render(7, "cfg");
        let lines: Vec<&str> = text.lines().collect();
        let without_middle: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        match verify_transcript(&without_middle) {
            Err(AuditError::Gap { .. }) | Err(AuditError::Tamper { .. }) => {}
            other => panic!("expected gap/tamper, got {other:?}"),
        }
        let truncated: String =
            lines[..lines.len() - 1].iter().map(|l| format!("{l}\n")).collect();
        assert!(matches!(verify_transcript(&truncated), Err(AuditError::Gap { .. })));
    }

    #[test]
    fn empty_transcript_is_tamper_evident() {
        let log = TranscriptLog::new();
        let text = log.render(3, "cfg");
        let summary = verify_transcript(&text).expect("verifies");
        assert_eq!(summary.entries, 0);
        let tampered = text.replace("\"seed\":3", "\"seed\":4");
        assert!(verify_transcript(&tampered).is_err());
    }

    #[test]
    fn reordered_entries_are_rejected() {
        let text = sample_log().render(7, "cfg");
        let mut lines: Vec<&str> = text.lines().collect();
        lines.swap(1, 2);
        let swapped: String = lines.iter().map(|l| format!("{l}\n")).collect();
        assert!(verify_transcript(&swapped).is_err());
    }

    #[test]
    fn empty_string_is_a_parse_error() {
        // An empty *file* is not an empty *transcript*: even a zero-entry
        // run renders a header and footer, so nothing at all is a missing
        // transcript, rejected at line 1.
        match verify_transcript("") {
            Err(AuditError::Parse { line: 1, detail }) => {
                assert!(detail.contains("empty transcript"), "unexpected detail: {detail}");
            }
            other => panic!("expected line-1 parse error, got {other:?}"),
        }
    }

    #[test]
    fn footer_only_file_is_rejected() {
        // A file holding only the footer (header and entries stripped —
        // e.g. a log scraper that kept the last line) must not pass as an
        // empty-but-valid transcript: the first line is not a header.
        let text = sample_log().render(7, "cfg");
        let footer = text.lines().last().expect("footer line");
        assert!(footer.contains("\"footer\""), "render must end with the footer");
        let footer_only = format!("{footer}\n");
        assert!(matches!(verify_transcript(&footer_only), Err(AuditError::Parse { line: 1, .. })));
    }

    #[test]
    fn truncated_final_line_is_rejected() {
        // Cut the transcript mid-way through its final line (a partial
        // write / torn tail). Every cut point must be rejected — either
        // the mangled footer fails to parse or the missing footer is a
        // gap; it must never verify.
        let text = sample_log().render(7, "cfg");
        let last_line_start = text.trim_end().rfind('\n').expect("multi-line") + 1;
        for cut in [last_line_start + 1, last_line_start + 10, text.len() - 2] {
            let torn = &text[..cut];
            assert!(
                verify_transcript(torn).is_err(),
                "transcript cut at byte {cut} (mid final line) went undetected"
            );
        }
    }

    #[test]
    fn duplicate_entries_are_a_tamper() {
        // Two verdicts for the same (batch, partition) — a replayed
        // checkpoint — survive the canonical sort as adjacent equal keys
        // and must be rejected as a tamper, even though every chain link
        // replays correctly.
        let log = sample_log();
        let dup = log.entries()[0].clone();
        log.record(dup);
        let text = log.render(7, "cfg");
        match verify_transcript(&text) {
            Err(AuditError::Tamper { detail, .. }) => {
                assert!(detail.contains("canonical order"), "unexpected detail: {detail}");
            }
            other => panic!("expected tamper on duplicate entry, got {other:?}"),
        }
    }

    #[test]
    fn payload_digest_tracks_shape_and_bits() {
        let a = payload_digest(&[Tensor::ones(&[2, 3])]);
        let b = payload_digest(&[Tensor::ones(&[3, 2])]);
        let c = payload_digest(&[Tensor::ones(&[2, 3])]);
        assert_eq!(a, c);
        assert_ne!(a, b);
    }

    #[test]
    fn verdict_tags_round_trip() {
        for v in [
            TranscriptVerdict::Pass { agreeing: 3 },
            TranscriptVerdict::Diverged { dissenting: vec![] },
            TranscriptVerdict::Diverged { dissenting: vec![0, 2] },
        ] {
            assert_eq!(TranscriptVerdict::parse(&v.tag()), Some(v));
        }
        assert_eq!(TranscriptVerdict::parse("nonsense"), None);
    }
}
