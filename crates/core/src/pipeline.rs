//! Stage coordinators: the monitor's data plane.
//!
//! Variant TEEs are organised into a pipeline mirroring the partition
//! order. One coordinator thread per partition (all "inside" the monitor
//! TEE — the cross-process monitor is multithreaded) dispatches batches to
//! that partition's variant TEEs, gathers their encrypted outputs,
//! evaluates checkpoints (slow path) or falls through (fast path), and
//! forwards the selected result to the next stage. Sequential and
//! pipelined execution use the same plumbing: sequential submits one batch
//! and waits; pipelined streams batches so stages overlap
//! (compute-communication overlapping, §4.1).

use crate::config::{DegradationPolicy, ExecMode, MvxConfig, ResponsePolicy, VotingPolicy};
use crate::events::{EventLog, MonitorEvent};
use crate::link::DataLink;
use crate::messages::{decode, encode, StageRequest, StageResponse};
use crate::recovery::{RecoveryRequest, ResyncPoint};
use crate::transcript::{payload_digest, TranscriptEntry, TranscriptLog, TranscriptVerdict};
use crate::voting::{evaluate, has_quorum, VariantOutput, Verdict};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use mvtee_graph::ValueId;
use mvtee_telemetry::trace::{self, TraceCtx};
use mvtee_tensor::metrics::Metric;
use mvtee_tensor::Tensor;
use std::collections::{HashMap, HashSet};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A unit of work flowing through the pipeline.
#[derive(Debug, Clone)]
pub struct StageJob {
    /// Monotone batch id.
    pub batch: u64,
    /// Live boundary values (parent-graph value id → tensor).
    pub env: HashMap<ValueId, Tensor>,
    /// Set when an upstream stage failed this batch; downstream stages
    /// pass it through untouched.
    pub poisoned: Option<String>,
    /// Submission timestamp (for latency accounting).
    pub submitted: Instant,
    /// Trace context this batch runs under ([`TraceCtx::NONE`] when the
    /// caller did not start a trace).
    pub trace: TraceCtx,
}

/// Events from the per-variant receiver threads, merged into one queue.
///
/// Every event carries the sender's *channel epoch*: quarantining a
/// variant bumps its epoch, so frames still in flight from the abandoned
/// pre-quarantine channel are recognisably stale and discarded instead of
/// being attributed to the recovered replacement.
#[derive(Debug)]
pub enum RxEvent {
    /// A decoded stage response from a variant.
    Msg {
        /// Variant index within the partition.
        variant: usize,
        /// Channel epoch the frame was received under.
        epoch: u64,
        /// The decoded response.
        response: StageResponse,
    },
    /// A variant's response channel died.
    Disconnected {
        /// Variant index within the partition.
        variant: usize,
        /// Channel epoch of the dead channel.
        epoch: u64,
    },
    /// The recovery manager re-provisioned a quarantined variant: it
    /// passed probation against the last verified checkpoint payload and
    /// is ready to rejoin the panel on the next batch.
    Recovered {
        /// Variant index within the partition.
        variant: usize,
        /// The post-quarantine epoch assigned at quarantine time.
        epoch: u64,
        /// Fresh request link to the replacement variant.
        link: VariantLink,
        /// Receiver thread already feeding this merged queue under the
        /// new epoch.
        rx_thread: JoinHandle<()>,
    },
}

/// Monitor-side state for one variant TEE's data plane.
#[derive(Debug)]
pub struct VariantLink {
    /// Request link (coordinator → variant).
    pub tx: DataLink,
    /// Human-readable description (for events).
    pub description: String,
}

/// Everything a coordinator needs for its partition.
pub struct StageRuntime {
    /// Partition index.
    pub partition: usize,
    /// Request links to this partition's variants.
    pub links: Vec<VariantLink>,
    /// Merged response queue.
    pub responses: Receiver<RxEvent>,
    /// Sender side of `responses` — cloned into recovery requests so the
    /// manager can feed a replacement variant's frames back in.
    pub merged_tx: Sender<RxEvent>,
    /// Receiver threads feeding `responses` (joined on drop).
    pub rx_threads: Vec<JoinHandle<()>>,
    /// Subgraph boundary inputs (parent value ids, in input order).
    pub inputs: Vec<ValueId>,
    /// Subgraph boundary outputs (parent value ids, in output order).
    pub outputs: Vec<ValueId>,
    /// Values still needed by later stages (env garbage collection).
    pub needed_downstream: HashSet<ValueId>,
    /// Whether this checkpoint takes the slow path.
    pub slow: bool,
    /// Channel to the recovery manager; `None` disables quarantine-and-
    /// recover (quarantined variants are dropped for good, the historical
    /// behaviour).
    pub recovery: Option<Sender<RecoveryRequest>>,
    /// Shared audit transcript; every voted checkpoint verdict appends
    /// one Merkle-chained entry.
    pub transcript: TranscriptLog,
}

/// Per-stage copy of the execution-relevant configuration.
#[derive(Debug, Clone, Copy)]
pub struct StagePolicy {
    /// Sync vs async cross-validation.
    pub exec: ExecMode,
    /// Voting policy.
    pub voting: VotingPolicy,
    /// Response policy.
    pub response: ResponsePolicy,
    /// Voting behaviour while the panel is below strength.
    pub degradation: DegradationPolicy,
    /// Straggler watchdog: checkpoint deadline before escalation.
    pub deadline: Duration,
    /// Shutdown drain window for outstanding async stragglers.
    pub drain_window: Duration,
    /// Poll interval within the drain window.
    pub drain_poll: Duration,
    /// Bound of the coordinator's inbound job queue (backpressure under
    /// sustained load).
    pub queue_depth: usize,
    /// Retained late-validation entries before the oldest is dropped.
    pub late_window: usize,
}

impl StagePolicy {
    /// Extracts the per-stage policy from a deployment configuration.
    pub fn from_config(cfg: &MvxConfig) -> Self {
        StagePolicy {
            exec: cfg.exec,
            voting: cfg.voting,
            response: cfg.response,
            degradation: cfg.degradation,
            deadline: cfg.checkpoint_deadline(),
            drain_window: cfg.drain_window(),
            drain_poll: cfg.drain_poll(),
            queue_depth: cfg.stage_queue_depth,
            late_window: cfg.late_validation_window,
        }
    }
}

/// Control messages into a coordinator.
pub enum CoordMsg {
    /// Process a job.
    Job(StageJob),
    /// Shut down (variants get [`StageRequest::Shutdown`]).
    Stop,
}

/// Spawns the receiver thread for one variant's response link. Every
/// event it emits is stamped with `epoch` so the coordinator can discard
/// frames from channels abandoned by a quarantine.
pub fn spawn_rx_thread(
    variant_idx: usize,
    epoch: u64,
    mut link: DataLink,
    merged: Sender<RxEvent>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("rx-v{variant_idx}e{epoch}"))
        .spawn(move || loop {
            match link.recv() {
                Ok(frame) => match decode::<StageResponse>(&frame) {
                    Ok(response) => {
                        if merged
                            .send(RxEvent::Msg { variant: variant_idx, epoch, response })
                            .is_err()
                        {
                            break;
                        }
                    }
                    Err(_) => {
                        let _ =
                            merged.send(RxEvent::Disconnected { variant: variant_idx, epoch });
                        break;
                    }
                },
                Err(_) => {
                    let _ = merged.send(RxEvent::Disconnected { variant: variant_idx, epoch });
                    break;
                }
            }
        })
        .expect("thread spawn cannot fail")
}

struct Outstanding {
    chosen: Vec<Tensor>,
    remaining: HashSet<usize>,
}

/// Quarantines a variant: marks it dead, bumps its channel epoch (so
/// stale pre-quarantine frames are discarded) and, when a recovery
/// manager is wired, emits [`MonitorEvent::Quarantined`] and files a
/// re-provisioning request carrying the last verified checkpoint payload.
#[allow(clippy::too_many_arguments)]
fn quarantine(
    dead: &mut [bool],
    epochs: &mut [u64],
    events: &EventLog,
    recovery: Option<&Sender<RecoveryRequest>>,
    merged_tx: &Sender<RxEvent>,
    last_verified: &Option<ResyncPoint>,
    partition: usize,
    variant: usize,
    batch: u64,
    reason: &str,
) {
    if dead[variant] {
        return;
    }
    dead[variant] = true;
    epochs[variant] += 1;
    let Some(tx) = recovery else { return };
    events.record(MonitorEvent::Quarantined {
        partition,
        variant,
        batch,
        reason: reason.to_string(),
    });
    let _ = tx.send(RecoveryRequest {
        partition,
        variant,
        epoch: epochs[variant],
        reason: reason.to_string(),
        resync: last_verified.clone(),
        merged_tx: merged_tx.clone(),
    });
}

/// The coordinator loop for one stage. Returns the runtime when stopped so
/// the deployment can reuse or update it.
pub fn run_stage(
    mut runtime: StageRuntime,
    policy: StagePolicy,
    metric: Metric,
    in_rx: Receiver<CoordMsg>,
    out_tx: Sender<StageJob>,
    events: EventLog,
) -> StageRuntime {
    let partition = runtime.partition;
    let full_strength = runtime.links.len();
    let mut dead: Vec<bool> = vec![false; full_strength];
    let mut epochs: Vec<u64> = vec![0; full_strength];
    let mut outstanding: HashMap<u64, Outstanding> = HashMap::new();
    let mut pending_reaction: Option<String> = None;
    // Inputs + outputs of the newest checkpoint that verified — the
    // resynchronisation payload a recovered variant must reproduce
    // during probation before rejoining mid-stream.
    let mut last_verified: Option<ResyncPoint> = None;

    // Telemetry handles fetched once; recording is lock-free after this.
    let checkpoint_latency = mvtee_telemetry::histogram(&format!(
        "core.pipeline.p{partition}.checkpoint_latency_ns"
    ));
    let queue_depth =
        mvtee_telemetry::gauge(&format!("core.pipeline.p{partition}.queue_depth"));
    let fast_path = mvtee_telemetry::counter("core.voting.fast_path");
    let slow_path = mvtee_telemetry::counter("core.voting.slow_path");
    // Trace names formatted once; a disabled recorder then costs one
    // relaxed load per batch.
    let tracer = trace::recorder();
    let ck_span_name = format!("core.p{partition}.checkpoint");
    let ck_track = format!("p{partition}");

    'jobs: while let Ok(msg) = in_rx.recv() {
        let mut job = match msg {
            CoordMsg::Stop => break,
            CoordMsg::Job(job) => job,
        };
        queue_depth.set(in_rx.len() as i64);
        // Events drained or recorded from here on belong to this batch's
        // causal chain.
        trace::set_current(job.trace);

        // Drain events that arrived between batches — recovered variants
        // rejoining, stragglers' late answers, disconnects — before this
        // dispatch, so a variant that recovered between batches votes on
        // this very batch.
        while let Ok(ev) = runtime.responses.try_recv() {
            match ev {
                RxEvent::Recovered { variant, epoch, link, rx_thread } => {
                    if epoch == epochs[variant] && dead[variant] {
                        runtime.links[variant] = link;
                        runtime.rx_threads.push(rx_thread);
                        dead[variant] = false;
                    }
                }
                RxEvent::Msg { variant, epoch, response } => {
                    if epoch != epochs[variant] {
                        continue; // stale pre-quarantine frame
                    }
                    let (batch, output) = split_response(response);
                    late_cross_validate(
                        &mut outstanding,
                        &mut pending_reaction,
                        &events,
                        partition,
                        metric,
                        batch,
                        variant,
                        output,
                    );
                }
                RxEvent::Disconnected { variant, epoch } => {
                    if epoch != epochs[variant] {
                        continue;
                    }
                    if !dead[variant] {
                        events.record(MonitorEvent::VariantCrashed {
                            partition,
                            variant,
                            batch: job.batch,
                            reason: "response channel closed".into(),
                        });
                        quarantine(
                            &mut dead,
                            &mut epochs,
                            &events,
                            runtime.recovery.as_ref(),
                            &runtime.merged_tx,
                            &last_verified,
                            partition,
                            variant,
                            job.batch,
                            "response channel closed",
                        );
                    }
                    resolve_owed_as_crash(
                        &mut outstanding,
                        &mut pending_reaction,
                        &events,
                        partition,
                        metric,
                        variant,
                    );
                }
            }
        }

        if job.poisoned.is_some() {
            let _ = out_tx.send(job);
            continue;
        }
        // Async-mode reaction deferred to "the earliest next checkpoint".
        if let Some(detail) = pending_reaction.take() {
            events.record(MonitorEvent::ResponseTaken {
                partition,
                action: format!("late-dissent reaction: {detail}"),
            });
            if policy.response == ResponsePolicy::Halt {
                job.poisoned = Some(format!("halted after late dissent: {detail}"));
                let _ = out_tx.send(job);
                continue;
            }
        }

        // Gather this stage's inputs from the job environment.
        let mut tensors = Vec::with_capacity(runtime.inputs.len());
        for v in &runtime.inputs {
            match job.env.get(v) {
                Some(t) => tensors.push(t.clone()),
                None => {
                    job.poisoned = Some(format!("missing boundary value {v}"));
                    let _ = out_tx.send(job);
                    continue 'jobs;
                }
            }
        }

        // Degradation policy: a panel is below strength while any member
        // is quarantined and not yet recovered.
        let live_now = dead.iter().filter(|d| !**d).count();
        let mut fallthrough_flagged = false;
        if runtime.slow && full_strength > 1 && live_now > 0 && live_now < full_strength {
            match policy.degradation {
                DegradationPolicy::Strict => {
                    events.record(MonitorEvent::ResponseTaken {
                        partition,
                        action: format!(
                            "strict degradation: failing batch {} with panel below strength ({live_now}/{full_strength})",
                            job.batch
                        ),
                    });
                    job.poisoned = Some(format!(
                        "panel below strength at partition {partition} ({live_now}/{full_strength})"
                    ));
                    let _ = out_tx.send(job);
                    continue;
                }
                DegradationPolicy::Degrade => {}
                DegradationPolicy::FastPathFallback => {
                    fallthrough_flagged = true;
                    events.record(MonitorEvent::ResponseTaken {
                        partition,
                        action: format!(
                            "fast-path fallback: batch {} forwarded unvoted with panel below strength ({live_now}/{full_strength})",
                            job.batch
                        ),
                    });
                }
            }
        }

        // Dispatch to all live variants. The checkpoint latency covers
        // dispatch through selection (the paper's per-partition cost).
        let checkpoint_timer = checkpoint_latency.start();
        let ck_span = tracer
            .span(job.trace, &ck_span_name, &ck_track)
            .arg("batch", job.batch)
            .arg("live", live_now);
        let ck_ctx = ck_span.ctx();
        trace::set_current(ck_ctx);
        // The dispatched inputs are retained (only when recovery is on)
        // so a verified checkpoint can become a resynchronisation point.
        let resync_inputs: Option<Vec<Tensor>> =
            runtime.recovery.as_ref().map(|_| tensors.clone());
        let request =
            StageRequest::Input { batch: job.batch, trace: ck_ctx.as_pair(), tensors };
        let frame = match encode(&request) {
            Ok(f) => f,
            Err(e) => {
                checkpoint_timer.cancel();
                job.poisoned = Some(e.to_string());
                let _ = out_tx.send(job);
                continue;
            }
        };
        for (i, link) in runtime.links.iter_mut().enumerate() {
            if dead[i] {
                continue;
            }
            if link.tx.send(&frame).is_err() {
                events.record(MonitorEvent::VariantCrashed {
                    partition,
                    variant: i,
                    batch: job.batch,
                    reason: format!("request channel closed ({})", link.description),
                });
                quarantine(
                    &mut dead,
                    &mut epochs,
                    &events,
                    runtime.recovery.as_ref(),
                    &runtime.merged_tx,
                    &last_verified,
                    partition,
                    i,
                    job.batch,
                    "request channel closed",
                );
            }
        }
        let live: Vec<usize> = (0..dead.len()).filter(|&i| !dead[i]).collect();
        if live.is_empty() {
            checkpoint_timer.cancel();
            job.poisoned = Some("all variants dead".into());
            events.record(MonitorEvent::ResponseTaken {
                partition,
                action: "halt: no live variants".into(),
            });
            let _ = out_tx.send(job);
            continue;
        }

        // Collect responses for this batch.
        let mut arrived: HashMap<usize, VariantOutput> = HashMap::new();
        let selected: Option<Vec<Tensor>>;
        let total_live = live.len();
        let use_async = policy.exec == ExecMode::AsyncCrossValidation
            && runtime.slow
            && total_live > 1
            && !fallthrough_flagged;

        loop {
            // Degraded fall-through: the first healthy output wins, no
            // vote (the span is flagged via the ResponseTaken above).
            if fallthrough_flagged {
                if let Some(t) = live.iter().find_map(|i| match arrived.get(i) {
                    Some(VariantOutput::Ok(t)) => Some(t.clone()),
                    _ => None,
                }) {
                    fast_path.inc();
                    selected = Some(t);
                    break;
                }
                if live.iter().all(|i| arrived.contains_key(i)) {
                    fast_path.inc();
                    selected = None;
                    break;
                }
            }
            // Async fast-exit: forward on majority quorum of the panel.
            if use_async {
                let arrived_ids: Vec<usize> =
                    live.iter().copied().filter(|i| arrived.contains_key(i)).collect();
                let arrived_vec: Vec<VariantOutput> =
                    arrived_ids.iter().map(|i| arrived[i].clone()).collect();
                if arrived_vec.len() < total_live {
                    if let Some(q) = has_quorum(&arrived_vec, total_live, metric) {
                        // A dissenter that already arrived is outvoted but
                        // must still be detected and reacted to — quorum
                        // forwarding never swallows a divergence.
                        let dissenting: Vec<usize> = arrived_ids
                            .iter()
                            .copied()
                            .filter(|i| match &arrived[i] {
                                VariantOutput::Crashed(_) => true,
                                VariantOutput::Ok(t) => {
                                    t.len() != q.len()
                                        || t.iter()
                                            .zip(q.iter())
                                            .any(|(a, b)| !metric.check(a, b))
                                }
                            })
                            .collect();
                        // A crashed arrival is dead now, not at the next
                        // batch's dispatch: mark and attribute it here.
                        for &v in &dissenting {
                            if let VariantOutput::Crashed(reason) = &arrived[&v] {
                                if !dead[v] {
                                    events.record(MonitorEvent::VariantCrashed {
                                        partition,
                                        variant: v,
                                        batch: job.batch,
                                        reason: reason.clone(),
                                    });
                                    quarantine(
                                        &mut dead,
                                        &mut epochs,
                                        &events,
                                        runtime.recovery.as_ref(),
                                        &runtime.merged_tx,
                                        &last_verified,
                                        partition,
                                        v,
                                        job.batch,
                                        reason.clone().as_str(),
                                    );
                                }
                            }
                        }
                        if !dissenting.is_empty() {
                            events.record(MonitorEvent::DivergenceDetected {
                                partition,
                                batch: job.batch,
                                dissenting: dissenting.clone(),
                                detail: "outvoted at async quorum".into(),
                            });
                            // With a recovery manager wired, an outvoted
                            // dissenter is quarantined and re-provisioned
                            // rather than left in the panel.
                            if runtime.recovery.is_some() {
                                for &v in &dissenting {
                                    quarantine(
                                        &mut dead,
                                        &mut epochs,
                                        &events,
                                        runtime.recovery.as_ref(),
                                        &runtime.merged_tx,
                                        &last_verified,
                                        partition,
                                        v,
                                        job.batch,
                                        "outvoted at async quorum",
                                    );
                                }
                            }
                            pending_reaction = Some(format!(
                                "variants {dissenting:?} dissented at quorum on batch {}",
                                job.batch
                            ));
                            runtime.transcript.record(TranscriptEntry {
                                partition,
                                batch: job.batch,
                                epoch: epochs.iter().sum(),
                                verdict: TranscriptVerdict::Diverged {
                                    dissenting: dissenting.clone(),
                                },
                                payload_digest: payload_digest(&q),
                            });
                        } else {
                            // Quorum with no dissent among the arrived
                            // outputs: the checkpoint evaluated and passed
                            // (stragglers are still cross-validated late).
                            events.record(MonitorEvent::CheckpointPassed {
                                partition,
                                batch: job.batch,
                                agreeing: arrived_ids.len() - dissenting.len(),
                            });
                            runtime.transcript.record(TranscriptEntry {
                                partition,
                                batch: job.batch,
                                epoch: epochs.iter().sum(),
                                verdict: TranscriptVerdict::Pass {
                                    agreeing: arrived_ids.len() - dissenting.len(),
                                },
                                payload_digest: payload_digest(&q),
                            });
                        }
                        // Remember the stragglers for late cross-validation.
                        let remaining: HashSet<usize> = live
                            .iter()
                            .copied()
                            .filter(|i| !arrived.contains_key(i))
                            .collect();
                        outstanding.insert(
                            job.batch,
                            Outstanding { chosen: q.clone(), remaining },
                        );
                        // Bound the late-validation window: a straggler
                        // that never answers must not grow state forever.
                        if outstanding.len() > policy.late_window {
                            let oldest = *outstanding.keys().min().expect("non-empty");
                            outstanding.remove(&oldest);
                            events.record(MonitorEvent::ResponseTaken {
                                partition,
                                action: format!(
                                    "dropped late-validation state for batch {oldest} (window full)"
                                ),
                            });
                        }
                        slow_path.inc();
                        if let Some(inputs) = &resync_inputs {
                            // The quorum output is majority-verified: it
                            // becomes the resynchronisation point.
                            last_verified = Some(ResyncPoint {
                                batch: job.batch,
                                inputs: inputs.clone(),
                                outputs: q.clone(),
                            });
                        }
                        selected = Some(q);
                        break;
                    }
                }
            }
            // Sync completion: all live responses in.
            if live.iter().all(|i| arrived.contains_key(i)) {
                let outputs: Vec<VariantOutput> =
                    live.iter().map(|i| arrived[i].clone()).collect();
                if !runtime.slow && outputs.len() == 1 {
                    // Fast path: fall through without evaluation (crashes
                    // still surface).
                    fast_path.inc();
                    match &outputs[0] {
                        VariantOutput::Ok(t) => {
                            if let Some(inputs) = &resync_inputs {
                                // A fast-path partition has no vote; its
                                // successful output is still the best
                                // resync point a replacement can get.
                                last_verified = Some(ResyncPoint {
                                    batch: job.batch,
                                    inputs: inputs.clone(),
                                    outputs: t.clone(),
                                });
                            }
                            selected = Some(t.clone());
                        }
                        VariantOutput::Crashed(reason) => {
                            if !dead[live[0]] {
                                events.record(MonitorEvent::VariantCrashed {
                                    partition,
                                    variant: live[0],
                                    batch: job.batch,
                                    reason: reason.clone(),
                                });
                                quarantine(
                                    &mut dead,
                                    &mut epochs,
                                    &events,
                                    runtime.recovery.as_ref(),
                                    &runtime.merged_tx,
                                    &last_verified,
                                    partition,
                                    live[0],
                                    job.batch,
                                    reason.clone().as_str(),
                                );
                            }
                            selected = None;
                        }
                    }
                    break;
                }
                if !runtime.slow {
                    // Forced fast path with multiple variants: take the
                    // first healthy output, no checks.
                    fast_path.inc();
                    selected = outputs.iter().find_map(|o| match o {
                        VariantOutput::Ok(t) => Some(t.clone()),
                        _ => None,
                    });
                    break;
                }
                // Slow path: full evaluation + voting.
                slow_path.inc();
                for (pos, o) in outputs.iter().enumerate() {
                    if let VariantOutput::Crashed(reason) = o {
                        let v = live[pos];
                        if !dead[v] {
                            events.record(MonitorEvent::VariantCrashed {
                                partition,
                                variant: v,
                                batch: job.batch,
                                reason: reason.clone(),
                            });
                            quarantine(
                                &mut dead,
                                &mut epochs,
                                &events,
                                runtime.recovery.as_ref(),
                                &runtime.merged_tx,
                                &last_verified,
                                partition,
                                v,
                                job.batch,
                                reason.clone().as_str(),
                            );
                        }
                    }
                }
                match evaluate(&outputs, metric, policy.voting) {
                    Verdict::Agree { selected: s, agreeing } => {
                        events.record(MonitorEvent::CheckpointPassed {
                            partition,
                            batch: job.batch,
                            agreeing: agreeing.len(),
                        });
                        runtime.transcript.record(TranscriptEntry {
                            partition,
                            batch: job.batch,
                            epoch: epochs.iter().sum(),
                            verdict: TranscriptVerdict::Pass { agreeing: agreeing.len() },
                            payload_digest: payload_digest(&s),
                        });
                        if let Some(inputs) = &resync_inputs {
                            last_verified = Some(ResyncPoint {
                                batch: job.batch,
                                inputs: inputs.clone(),
                                outputs: s.clone(),
                            });
                        }
                        selected = Some(s);
                    }
                    Verdict::Diverged { majority, dissenting, detail } => {
                        let dissenting_variants: Vec<usize> =
                            dissenting.iter().map(|&p| live[p]).collect();
                        events.record(MonitorEvent::DivergenceDetected {
                            partition,
                            batch: job.batch,
                            dissenting: dissenting_variants.clone(),
                            detail: detail.clone(),
                        });
                        runtime.transcript.record(TranscriptEntry {
                            partition,
                            batch: job.batch,
                            epoch: epochs.iter().sum(),
                            verdict: TranscriptVerdict::Diverged {
                                dissenting: dissenting_variants.clone(),
                            },
                            payload_digest: majority
                                .as_deref()
                                .map(payload_digest)
                                .unwrap_or([0u8; 32]),
                        });
                        // Divergent (not merely crashed) variants are
                        // quarantined for re-provisioning when a recovery
                        // manager is wired; without one the historical
                        // behaviour — dissenter stays in the panel — is
                        // preserved.
                        if runtime.recovery.is_some() {
                            for &v in &dissenting_variants {
                                quarantine(
                                    &mut dead,
                                    &mut epochs,
                                    &events,
                                    runtime.recovery.as_ref(),
                                    &runtime.merged_tx,
                                    &last_verified,
                                    partition,
                                    v,
                                    job.batch,
                                    "checkpoint divergence",
                                );
                            }
                        }
                        match policy.response {
                            ResponsePolicy::Halt => {
                                events.record(MonitorEvent::ResponseTaken {
                                    partition,
                                    action: "halt".into(),
                                });
                                selected = None;
                            }
                            ResponsePolicy::ContinueWithMajority => {
                                events.record(MonitorEvent::ResponseTaken {
                                    partition,
                                    action: "continue-with-majority".into(),
                                });
                                selected = majority;
                            }
                        }
                    }
                }
                break;
            }
            // Pull the next response event.
            match runtime.responses.recv_timeout(policy.deadline) {
                Ok(RxEvent::Msg { variant: v, epoch, response }) => {
                    if epoch != epochs[v] {
                        // Stale frame from a pre-quarantine channel: a
                        // recovered variant must never inherit it.
                        continue;
                    }
                    let (batch, output) = split_response(response);
                    if batch == job.batch {
                        arrived.insert(v, output);
                    } else {
                        late_cross_validate(
                            &mut outstanding,
                            &mut pending_reaction,
                            &events,
                            partition,
                            metric,
                            batch,
                            v,
                            output,
                        );
                    }
                }
                Ok(RxEvent::Disconnected { variant: v, epoch }) => {
                    if epoch != epochs[v] {
                        continue; // the abandoned channel died, as expected
                    }
                    if !dead[v] {
                        events.record(MonitorEvent::VariantCrashed {
                            partition,
                            variant: v,
                            batch: job.batch,
                            reason: "response channel closed".into(),
                        });
                        quarantine(
                            &mut dead,
                            &mut epochs,
                            &events,
                            runtime.recovery.as_ref(),
                            &runtime.merged_tx,
                            &last_verified,
                            partition,
                            v,
                            job.batch,
                            "response channel closed",
                        );
                    }
                    arrived
                        .entry(v)
                        .or_insert_with(|| VariantOutput::Crashed("disconnected".into()));
                    // A disconnected straggler will never deliver its late
                    // answers: resolve every outstanding async validation
                    // it still owed as a crash-dissent.
                    resolve_owed_as_crash(
                        &mut outstanding,
                        &mut pending_reaction,
                        &events,
                        partition,
                        metric,
                        v,
                    );
                }
                Ok(RxEvent::Recovered { variant, epoch, link, rx_thread }) => {
                    // The replacement rejoins from the next dispatched
                    // batch; this one already went out without it.
                    if epoch == epochs[variant] && dead[variant] {
                        runtime.links[variant] = link;
                        runtime.rx_threads.push(rx_thread);
                        dead[variant] = false;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Straggler watchdog: the checkpoint deadline passed.
                    // Escalate each hung variant — timeout → late dissent
                    // → quarantine — and count its vote as a crash.
                    for &v in &live {
                        if arrived.contains_key(&v) {
                            continue;
                        }
                        events.record(MonitorEvent::LateDissent {
                            partition,
                            batch: job.batch,
                            variant: v,
                        });
                        quarantine(
                            &mut dead,
                            &mut epochs,
                            &events,
                            runtime.recovery.as_ref(),
                            &runtime.merged_tx,
                            &last_verified,
                            partition,
                            v,
                            job.batch,
                            "checkpoint deadline exceeded",
                        );
                        arrived.insert(
                            v,
                            VariantOutput::Crashed("checkpoint deadline exceeded".into()),
                        );
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    checkpoint_timer.cancel();
                    job.poisoned = Some("response plane disconnected".into());
                    let _ = out_tx.send(job);
                    continue 'jobs;
                }
            }
        }
        checkpoint_timer.finish();

        match selected {
            Some(outputs) if outputs.len() == runtime.outputs.len() => {
                for (v, t) in runtime.outputs.iter().zip(outputs) {
                    job.env.insert(*v, t);
                }
                job.env.retain(|v, _| runtime.needed_downstream.contains(v));
            }
            Some(outputs) => {
                job.poisoned = Some(format!(
                    "variant returned {} outputs, stage expects {}",
                    outputs.len(),
                    runtime.outputs.len()
                ));
            }
            None => {
                job.poisoned = Some(format!("checkpoint at partition {partition} failed"));
            }
        }
        if out_tx.send(job).is_err() {
            break;
        }
    }

    // Drain outstanding stragglers briefly, then shut variants down.
    let drain_deadline = Instant::now() + policy.drain_window;
    while !outstanding.is_empty() && Instant::now() < drain_deadline {
        match runtime.responses.recv_timeout(policy.drain_poll) {
            Ok(RxEvent::Msg { variant, epoch, response }) => {
                if epoch != epochs[variant] {
                    continue;
                }
                let (batch, output) = split_response(response);
                late_cross_validate(
                    &mut outstanding,
                    &mut pending_reaction,
                    &events,
                    partition,
                    metric,
                    batch,
                    variant,
                    output,
                );
            }
            Ok(RxEvent::Disconnected { variant, epoch }) => {
                if epoch != epochs[variant] {
                    continue;
                }
                resolve_owed_as_crash(
                    &mut outstanding,
                    &mut pending_reaction,
                    &events,
                    partition,
                    metric,
                    variant,
                );
            }
            // Too late to rejoin: the replacement's link is dropped and
            // the fresh variant exits on its closed request channel.
            Ok(RxEvent::Recovered { .. }) => continue,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    if let Some(detail) = pending_reaction.take() {
        events.record(MonitorEvent::ResponseTaken {
            partition,
            action: format!("late-dissent reaction at shutdown: {detail}"),
        });
    }
    let shutdown = encode(&StageRequest::Shutdown).expect("static message encodes");
    for (i, link) in runtime.links.iter_mut().enumerate() {
        if !dead[i] {
            let _ = link.tx.send(&shutdown);
        }
    }
    runtime
}

/// Splits a decoded stage response into its batch id and voting output.
fn split_response(response: StageResponse) -> (u64, VariantOutput) {
    match response {
        StageResponse::Output { batch, tensors } => (batch, VariantOutput::Ok(tensors)),
        StageResponse::Crashed { batch, reason } => (batch, VariantOutput::Crashed(reason)),
    }
}

/// Resolves every outstanding async validation a disconnected variant
/// still owed as a crash-dissent (it will never deliver them).
fn resolve_owed_as_crash(
    outstanding: &mut HashMap<u64, Outstanding>,
    pending_reaction: &mut Option<String>,
    events: &EventLog,
    partition: usize,
    metric: Metric,
    variant: usize,
) {
    let owed: Vec<u64> = outstanding
        .iter()
        .filter(|(_, o)| o.remaining.contains(&variant))
        .map(|(&b, _)| b)
        .collect();
    for b in owed {
        late_cross_validate(
            outstanding,
            pending_reaction,
            events,
            partition,
            metric,
            b,
            variant,
            VariantOutput::Crashed("disconnected".into()),
        );
    }
}

/// Validates a straggler's late output against the already-forwarded
/// choice (async cross-validation, Fig 8).
#[allow(clippy::too_many_arguments)]
fn late_cross_validate(
    outstanding: &mut HashMap<u64, Outstanding>,
    pending_reaction: &mut Option<String>,
    events: &EventLog,
    partition: usize,
    metric: Metric,
    batch: u64,
    variant: usize,
    output: VariantOutput,
) {
    let Some(entry) = outstanding.get_mut(&batch) else {
        return; // unknown batch (already fully validated or pre-crash noise)
    };
    if !entry.remaining.remove(&variant) {
        return;
    }
    let consistent = match &output {
        VariantOutput::Crashed(_) => false,
        VariantOutput::Ok(tensors) => {
            tensors.len() == entry.chosen.len()
                && tensors
                    .iter()
                    .zip(entry.chosen.iter())
                    .all(|(a, b)| metric.check(a, b))
        }
    };
    if !consistent {
        events.record(MonitorEvent::LateDissent { partition, batch, variant });
        *pending_reaction =
            Some(format!("variant {variant} dissented late on batch {batch}"));
    }
    if entry.remaining.is_empty() {
        outstanding.remove(&batch);
    }
}

/// A handle to the running pipeline: per-stage input senders plus the
/// final results receiver.
pub struct PipelineHandles {
    /// Sender into the first stage.
    pub first_stage: Sender<CoordMsg>,
    /// Senders into every stage (for Stop broadcasts), first included.
    pub all_stages: Vec<Sender<CoordMsg>>,
    /// Completed jobs out of the last stage.
    pub results: Receiver<StageJob>,
    /// Coordinator join handles (return their runtimes).
    pub threads: Vec<JoinHandle<StageRuntime>>,
}

/// Wires coordinators into a linear pipeline and spawns them.
///
/// Stage `i`'s output feeds stage `i + 1`'s input through a small
/// forwarder thread (the bridging keeps coordinator shutdown independent:
/// forwarders exit when their upstream coordinator drops its sender).
pub fn spawn_pipeline(
    runtimes: Vec<StageRuntime>,
    policy: StagePolicy,
    metrics: Vec<Metric>,
    events: EventLog,
) -> PipelineHandles {
    let n = runtimes.len();
    assert!(n > 0, "pipeline needs at least one stage");
    assert_eq!(metrics.len(), n, "one metric per stage");
    let mut stage_inputs: Vec<Sender<CoordMsg>> = Vec::with_capacity(n);
    let mut stage_rxs: Vec<Receiver<CoordMsg>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = bounded::<CoordMsg>(policy.queue_depth.max(1));
        stage_inputs.push(tx);
        stage_rxs.push(rx);
    }
    let (final_tx, results) = unbounded::<StageJob>();
    let mut threads = Vec::with_capacity(n);
    for (i, (runtime, rx)) in runtimes.into_iter().zip(stage_rxs).enumerate() {
        let out: Sender<StageJob> = if i + 1 < n {
            let (btx, brx) = unbounded::<StageJob>();
            let downstream = stage_inputs[i + 1].clone();
            std::thread::Builder::new()
                .name(format!("fwd-{i}"))
                .spawn(move || {
                    while let Ok(job) = brx.recv() {
                        if downstream.send(CoordMsg::Job(job)).is_err() {
                            break;
                        }
                    }
                })
                .expect("thread spawn cannot fail");
            btx
        } else {
            final_tx.clone()
        };
        let ev = events.clone();
        let metric = metrics[i];
        threads.push(
            std::thread::Builder::new()
                .name(format!("stage-{i}"))
                .spawn(move || run_stage(runtime, policy, metric, rx, out, ev))
                .expect("thread spawn cannot fail"),
        );
    }
    drop(final_tx);
    PipelineHandles {
        first_stage: stage_inputs[0].clone(),
        all_stages: stage_inputs,
        results,
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExecMode, ResponsePolicy, VotingPolicy};
    use crate::link::link_pair;
    use mvtee_graph::ValueId;
    use std::time::Duration;

    /// Scripted fake variant behaviours.
    #[derive(Clone, Copy)]
    enum Behaviour {
        /// Return the input unchanged.
        Echo,
        /// Return the input with every element shifted by the offset.
        Corrupt(f32),
        /// Crash on the given batch id, echo otherwise.
        CrashOn(u64),
        /// Echo after sleeping (the lagging variant).
        SlowEcho(u64),
        /// From the given batch on, keep reading but never respond (a
        /// hung-but-alive variant: the channel stays open).
        HangFrom(u64),
    }

    /// Spawns a fake variant thread and returns the monitor-side links.
    fn fake_variant(behaviour: Behaviour) -> (DataLink, DataLink) {
        let (req_monitor, req_variant) = link_pair(false, b"", 0);
        let (resp_variant, resp_monitor) = link_pair(false, b"", 1);
        std::thread::spawn(move || {
            let mut rx = req_variant;
            let mut tx = resp_variant;
            while let Ok(frame) = rx.recv() {
                let Ok(msg) = decode::<StageRequest>(&frame) else { break };
                match msg {
                    StageRequest::Shutdown => break,
                    StageRequest::Input { batch, tensors, .. } => {
                        let resp = match behaviour {
                            Behaviour::Echo => StageResponse::Output { batch, tensors },
                            Behaviour::Corrupt(delta) => StageResponse::Output {
                                batch,
                                tensors: tensors
                                    .iter()
                                    .map(|t| t.map(|v| v + delta))
                                    .collect(),
                            },
                            Behaviour::CrashOn(b) if b == batch => {
                                let _ = tx.send(
                                    &encode(&StageResponse::Crashed {
                                        batch,
                                        reason: "scripted crash".into(),
                                    })
                                    .expect("encodes"),
                                );
                                break;
                            }
                            Behaviour::CrashOn(_) => StageResponse::Output { batch, tensors },
                            Behaviour::SlowEcho(ms) => {
                                std::thread::sleep(Duration::from_millis(ms));
                                StageResponse::Output { batch, tensors }
                            }
                            Behaviour::HangFrom(b) if batch >= b => continue,
                            Behaviour::HangFrom(_) => StageResponse::Output { batch, tensors },
                        };
                        if tx.send(&encode(&resp).expect("encodes")).is_err() {
                            break;
                        }
                    }
                }
            }
        });
        (req_monitor, resp_monitor)
    }

    fn fake_stage(behaviours: &[Behaviour], slow: bool) -> StageRuntime {
        let (merged_tx, merged_rx) = unbounded::<RxEvent>();
        let mut links = Vec::new();
        let mut rx_threads = Vec::new();
        for (i, &b) in behaviours.iter().enumerate() {
            let (tx, rx) = fake_variant(b);
            rx_threads.push(spawn_rx_thread(i, 0, rx, merged_tx.clone()));
            links.push(VariantLink { tx, description: format!("fake-{i}") });
        }
        let mut needed = HashSet::new();
        needed.insert(ValueId(1));
        StageRuntime {
            partition: 0,
            links,
            responses: merged_rx,
            merged_tx,
            rx_threads,
            inputs: vec![ValueId(0)],
            outputs: vec![ValueId(1)],
            needed_downstream: needed,
            slow,
            recovery: None,
            transcript: TranscriptLog::new(),
        }
    }

    fn job(batch: u64, value: f32) -> StageJob {
        let mut env = HashMap::new();
        env.insert(
            ValueId(0),
            Tensor::from_vec(vec![value; 4], &[4]).expect("static shape"),
        );
        StageJob { batch, env, poisoned: None, submitted: Instant::now(), trace: TraceCtx::NONE }
    }

    fn policy(exec: ExecMode, response: ResponsePolicy) -> StagePolicy {
        StagePolicy {
            exec,
            voting: VotingPolicy::Unanimous,
            response,
            degradation: crate::config::DegradationPolicy::Degrade,
            deadline: Duration::from_secs(30),
            drain_window: Duration::from_millis(500),
            drain_poll: Duration::from_millis(50),
            queue_depth: 64,
            late_window: 256,
        }
    }

    /// Runs jobs through one coordinator; returns the results, the event
    /// log, and the time until the *last result* was received (excluding
    /// shutdown/drain).
    fn drive(
        runtime: StageRuntime,
        p: StagePolicy,
        jobs: Vec<StageJob>,
    ) -> (Vec<StageJob>, EventLog, Duration) {
        let metric = Metric::strict();
        let (in_tx, in_rx) = bounded::<CoordMsg>(64);
        let (out_tx, out_rx) = unbounded::<StageJob>();
        let events = EventLog::new();
        let ev = events.clone();
        let n = jobs.len();
        let start = Instant::now();
        let handle =
            std::thread::spawn(move || run_stage(runtime, p, metric, in_rx, out_tx, ev));
        for j in jobs {
            in_tx.send(CoordMsg::Job(j)).expect("sends");
        }
        let mut results = Vec::with_capacity(n);
        for _ in 0..n {
            results.push(out_rx.recv_timeout(Duration::from_secs(10)).expect("result"));
        }
        let results_elapsed = start.elapsed();
        in_tx.send(CoordMsg::Stop).expect("stops");
        let _ = handle.join().expect("joins");
        (results, events, results_elapsed)
    }

    #[test]
    fn fast_path_forwards_single_variant_output() {
        let runtime = fake_stage(&[Behaviour::Echo], false);
        let (results, events, _) =
            drive(runtime, policy(ExecMode::Sync, ResponsePolicy::Halt), vec![job(0, 2.0)]);
        assert!(results[0].poisoned.is_none());
        assert_eq!(results[0].env[&ValueId(1)].data(), &[2.0; 4]);
        assert_eq!(events.detection_count(), 0);
    }

    #[test]
    fn slow_path_detects_corrupt_variant_and_halts() {
        let runtime =
            fake_stage(&[Behaviour::Echo, Behaviour::Corrupt(5.0), Behaviour::Echo], true);
        let (results, events, _) =
            drive(runtime, policy(ExecMode::Sync, ResponsePolicy::Halt), vec![job(0, 1.0)]);
        assert!(results[0].poisoned.is_some());
        assert!(events.detection_count() > 0);
        let dissent = events.events().iter().any(|e| {
            matches!(e, MonitorEvent::DivergenceDetected { dissenting, .. } if dissenting == &vec![1])
        });
        assert!(dissent, "variant 1 must be identified: {:?}", events.events());
    }

    #[test]
    fn slow_path_continue_with_majority_adopts_healthy_output() {
        let runtime =
            fake_stage(&[Behaviour::Echo, Behaviour::Corrupt(9.0), Behaviour::Echo], true);
        let (results, events, _) = drive(
            runtime,
            policy(ExecMode::Sync, ResponsePolicy::ContinueWithMajority),
            vec![job(0, 3.0)],
        );
        assert!(results[0].poisoned.is_none());
        assert_eq!(results[0].env[&ValueId(1)].data(), &[3.0; 4]);
        assert!(events.detection_count() > 0);
    }

    #[test]
    fn crash_is_reported_and_subsequent_batches_continue_with_survivors() {
        let runtime = fake_stage(&[Behaviour::CrashOn(1), Behaviour::Echo], true);
        let p = policy(ExecMode::Sync, ResponsePolicy::ContinueWithMajority);
        let (results, events, _) =
            drive(runtime, p, vec![job(0, 1.0), job(1, 2.0), job(2, 3.0)]);
        assert!(results[0].poisoned.is_none(), "batch 0 healthy");
        // Batch 1: variant 0 crashed; majority-of-panel fails with 1 of 2,
        // but continue policy adopts the surviving output when present.
        let crashes = events
            .events()
            .iter()
            .filter(|e| matches!(e, MonitorEvent::VariantCrashed { .. }))
            .count();
        assert!(crashes >= 1, "crash must be recorded: {:?}", events.events());
        // Batch 2 still produces output from the survivor.
        assert!(results[2].env.contains_key(&ValueId(1)) || results[2].poisoned.is_some());
    }

    #[test]
    fn async_mode_forwards_on_quorum_before_the_laggard() {
        let runtime = fake_stage(
            &[Behaviour::Echo, Behaviour::Echo, Behaviour::SlowEcho(300)],
            true,
        );
        let p = StagePolicy {
            voting: VotingPolicy::Majority,
            ..policy(ExecMode::AsyncCrossValidation, ResponsePolicy::ContinueWithMajority)
        };
        let (results, events, elapsed) = drive(runtime, p, vec![job(0, 4.0)]);
        assert!(results[0].poisoned.is_none());
        assert_eq!(results[0].env[&ValueId(1)].data(), &[4.0; 4]);
        // Forwarded well before the 300 ms laggard (allow wide margins for
        // CI noise; the laggard's reply is validated during drain).
        assert!(
            elapsed < Duration::from_millis(280),
            "async mode waited for the laggard: {elapsed:?}"
        );
        assert_eq!(events.detection_count(), 0, "benign laggard must not alarm");
    }

    #[test]
    fn async_mode_flags_late_dissent() {
        let runtime = fake_stage(
            &[Behaviour::Echo, Behaviour::Echo, Behaviour::SlowEcho(150)],
            true,
        );
        // The laggard echoes (agrees); now use a corrupt laggard instead.
        drop(runtime);
        struct SlowCorrupt;
        let (req_monitor, req_variant) = link_pair(false, b"", 0);
        let (resp_variant, resp_monitor) = link_pair(false, b"", 1);
        std::thread::spawn(move || {
            let _marker = SlowCorrupt;
            let mut rx = req_variant;
            let mut tx = resp_variant;
            while let Ok(frame) = rx.recv() {
                let Ok(msg) = decode::<StageRequest>(&frame) else { break };
                match msg {
                    StageRequest::Shutdown => break,
                    StageRequest::Input { batch, tensors, .. } => {
                        std::thread::sleep(Duration::from_millis(150));
                        let resp = StageResponse::Output {
                            batch,
                            tensors: tensors.iter().map(|t| t.map(|v| v + 7.0)).collect(),
                        };
                        if tx.send(&encode(&resp).expect("encodes")).is_err() {
                            break;
                        }
                    }
                }
            }
        });
        let (merged_tx, merged_rx) = unbounded::<RxEvent>();
        let mut links = Vec::new();
        let mut rx_threads = Vec::new();
        for (i, b) in [Behaviour::Echo, Behaviour::Echo].into_iter().enumerate() {
            let (tx, rx) = fake_variant(b);
            rx_threads.push(spawn_rx_thread(i, 0, rx, merged_tx.clone()));
            links.push(VariantLink { tx, description: format!("fake-{i}") });
        }
        rx_threads.push(spawn_rx_thread(2, 0, resp_monitor, merged_tx.clone()));
        links.push(VariantLink { tx: req_monitor, description: "slow-corrupt".into() });
        let mut needed = HashSet::new();
        needed.insert(ValueId(1));
        let runtime = StageRuntime {
            partition: 0,
            links,
            responses: merged_rx,
            merged_tx,
            rx_threads,
            inputs: vec![ValueId(0)],
            outputs: vec![ValueId(1)],
            needed_downstream: needed,
            slow: true,
            recovery: None,
            transcript: TranscriptLog::new(),
        };
        let p = StagePolicy {
            voting: VotingPolicy::Majority,
            ..policy(ExecMode::AsyncCrossValidation, ResponsePolicy::ContinueWithMajority)
        };
        let (results, events, _) = drive(runtime, p, vec![job(0, 1.0), job(1, 2.0)]);
        assert!(results[0].poisoned.is_none(), "quorum output forwarded");
        let late = events
            .events()
            .iter()
            .any(|e| matches!(e, MonitorEvent::LateDissent { variant: 2, .. }));
        assert!(late, "late dissent must be flagged: {:?}", events.events());
    }

    #[test]
    fn watchdog_escalates_hung_variant_within_deadline() {
        let runtime = fake_stage(
            &[Behaviour::Echo, Behaviour::Echo, Behaviour::HangFrom(1)],
            true,
        );
        let p = StagePolicy {
            deadline: Duration::from_millis(150),
            ..policy(ExecMode::Sync, ResponsePolicy::ContinueWithMajority)
        };
        let start = Instant::now();
        let (results, events, _) =
            drive(runtime, p, vec![job(0, 1.0), job(1, 2.0), job(2, 3.0)]);
        // Batch 0 is healthy; batch 1 hits the watchdog deadline, which
        // escalates the hung variant (late dissent) and continues with
        // the majority of survivors; batch 2 runs on the reduced panel.
        assert!(results[0].poisoned.is_none());
        assert_eq!(results[1].env[&ValueId(1)].data(), &[2.0; 4]);
        assert_eq!(results[2].env[&ValueId(1)].data(), &[3.0; 4]);
        let escalated = events.events().iter().any(
            |e| matches!(e, MonitorEvent::LateDissent { variant: 2, batch: 1, .. }),
        );
        assert!(escalated, "watchdog must flag the hung variant: {:?}", events.events());
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "watchdog must not wait out the old 30 s timeout"
        );
    }

    #[test]
    fn strict_degradation_fails_batches_while_below_strength() {
        let runtime = fake_stage(&[Behaviour::CrashOn(0), Behaviour::Echo], true);
        let p = StagePolicy {
            degradation: crate::config::DegradationPolicy::Strict,
            ..policy(ExecMode::Sync, ResponsePolicy::ContinueWithMajority)
        };
        let (results, events, _) = drive(runtime, p, vec![job(0, 1.0), job(1, 2.0)]);
        // The crash surfaces mid-batch 0; batch 1 then sees the panel
        // below strength and fails outright under Strict.
        assert!(
            results[1].poisoned.as_deref().unwrap_or("").contains("below strength"),
            "strict policy must fail the batch: {:?}",
            results[1].poisoned
        );
        let flagged = events.events().iter().any(|e| {
            matches!(e, MonitorEvent::ResponseTaken { action, .. } if action.contains("strict degradation"))
        });
        assert!(flagged, "strict degradation must be audited: {:?}", events.events());
    }

    #[test]
    fn fast_path_fallback_forwards_flagged_while_below_strength() {
        let runtime =
            fake_stage(&[Behaviour::CrashOn(0), Behaviour::Echo, Behaviour::Echo], true);
        let p = StagePolicy {
            degradation: crate::config::DegradationPolicy::FastPathFallback,
            ..policy(ExecMode::Sync, ResponsePolicy::ContinueWithMajority)
        };
        let (results, events, _) = drive(runtime, p, vec![job(0, 1.0), job(1, 2.0)]);
        // Batch 1 falls through unvoted but flagged.
        assert!(results[1].poisoned.is_none());
        assert_eq!(results[1].env[&ValueId(1)].data(), &[2.0; 4]);
        let flagged = events.events().iter().any(|e| {
            matches!(e, MonitorEvent::ResponseTaken { action, .. } if action.contains("fast-path fallback"))
        });
        assert!(flagged, "fallback must be audited: {:?}", events.events());
        // No checkpoint-pass claim for the unvoted batch.
        assert!(
            !events.checkpoint_passes().iter().any(|&(_, b, _)| b == 1),
            "an unvoted batch must not claim a passed checkpoint"
        );
    }

    #[test]
    fn poisoned_jobs_pass_through_untouched() {
        let runtime = fake_stage(&[Behaviour::Echo], false);
        let mut j = job(0, 1.0);
        j.poisoned = Some("upstream failure".into());
        let (results, events, _) =
            drive(runtime, policy(ExecMode::Sync, ResponsePolicy::Halt), vec![j]);
        assert_eq!(results[0].poisoned.as_deref(), Some("upstream failure"));
        assert_eq!(events.len(), 0);
    }

    #[test]
    fn missing_boundary_value_poisons_the_job() {
        let runtime = fake_stage(&[Behaviour::Echo], false);
        let j = StageJob {
            batch: 0,
            env: HashMap::new(), // ValueId(0) missing
            poisoned: None,
            submitted: Instant::now(),
            trace: TraceCtx::NONE,
        };
        let (results, _, _) =
            drive(runtime, policy(ExecMode::Sync, ResponsePolicy::Halt), vec![j]);
        assert!(results[0].poisoned.as_deref().unwrap_or("").contains("missing"));
    }

    #[test]
    fn pipeline_of_two_stages_chains_jobs() {
        let s0 = fake_stage(&[Behaviour::Echo], false);
        // Second stage consumes ValueId(1) and emits ValueId(2).
        let (merged_tx, merged_rx) = unbounded::<RxEvent>();
        let (tx, rx) = fake_variant(Behaviour::Echo);
        let rx_threads = vec![spawn_rx_thread(0, 0, rx, merged_tx.clone())];
        let mut needed = HashSet::new();
        needed.insert(ValueId(2));
        let s1 = StageRuntime {
            partition: 1,
            links: vec![VariantLink { tx, description: "fake".into() }],
            responses: merged_rx,
            merged_tx,
            rx_threads,
            inputs: vec![ValueId(1)],
            outputs: vec![ValueId(2)],
            needed_downstream: needed,
            slow: false,
            recovery: None,
            transcript: TranscriptLog::new(),
        };
        let handles = spawn_pipeline(
            vec![s0, s1],
            policy(ExecMode::Sync, ResponsePolicy::Halt),
            vec![Metric::strict(), Metric::strict()],
            EventLog::new(),
        );
        handles.first_stage.send(CoordMsg::Job(job(0, 6.0))).expect("sends");
        let result = handles.results.recv_timeout(Duration::from_secs(10)).expect("result");
        assert!(result.poisoned.is_none());
        assert_eq!(result.env[&ValueId(2)].data(), &[6.0; 4]);
        for tx in &handles.all_stages {
            let _ = tx.send(CoordMsg::Stop);
        }
        for t in handles.threads {
            let _ = t.join();
        }
    }
}
