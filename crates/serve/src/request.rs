//! Request/response envelopes for the serving frontend.

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use mvtee_telemetry::trace::TraceCtx;
use mvtee_tensor::Tensor;
use std::time::{Duration, Instant};

/// One tenant's inference request as it flows queue → batcher → pool.
pub struct InferRequest {
    /// Frontend-assigned id, unique per frontend; echoed in the
    /// response so callers (and the loss-accounting tests) can match
    /// every admitted request to exactly one answer.
    pub id: u64,
    /// Submitting tenant.
    pub tenant: String,
    /// Model/deployment key — only requests with equal keys may share a
    /// micro-batch.
    pub model_key: String,
    /// The input tensor.
    pub input: Tensor,
    /// Admission timestamp (end-to-end latency baseline).
    pub submitted: Instant,
    /// Absolute deadline; the dispatcher drops the request unserved
    /// once this passes (observable as `serve.expired_total`).
    pub deadline: Instant,
    /// Root trace context for this request, derived deterministically
    /// from `id`; propagated through batcher → pool → core pipeline.
    pub trace: TraceCtx,
    /// Response channel back to the caller's ticket.
    pub(crate) respond: Sender<InferResponse>,
}

impl InferRequest {
    /// Delivers the outcome to the caller's ticket; a dropped ticket
    /// (caller gave up) is not an error.
    pub(crate) fn resolve(self, replica: Option<usize>, outcome: RequestOutcome) {
        let latency = self.submitted.elapsed();
        let tracer = mvtee_telemetry::trace::recorder();
        if tracer.is_enabled() {
            let outcome_tag = match &outcome {
                RequestOutcome::Ok(_) => "ok",
                RequestOutcome::Failed(_) => "failed",
                RequestOutcome::Expired => "expired",
            };
            tracer
                .complete(self.trace, "serve.request", "serve", self.submitted)
                .arg("id", self.id)
                .arg("tenant", &self.tenant)
                .arg("outcome", outcome_tag);
        }
        let _ = self.respond.send(InferResponse {
            id: self.id,
            tenant: self.tenant,
            replica,
            latency,
            outcome,
        });
    }
}

/// How a request ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestOutcome {
    /// The model output, byte-identical to a serial single-request run
    /// on the serving replica's configuration.
    Ok(Tensor),
    /// A checkpoint halted the request, or the replica lost its
    /// pipeline; the detail string carries the monitor's reason.
    Failed(String),
    /// The deadline passed before the request was dispatched.
    Expired,
}

impl RequestOutcome {
    /// Is this a successful completion?
    pub fn is_ok(&self) -> bool {
        matches!(self, RequestOutcome::Ok(_))
    }
}

/// The terminal answer for one request.
#[derive(Debug, Clone)]
pub struct InferResponse {
    /// The request id.
    pub id: u64,
    /// The submitting tenant (echoed for per-tenant accounting).
    pub tenant: String,
    /// Which pool replica served it (`None` when never dispatched).
    pub replica: Option<usize>,
    /// End-to-end latency, admission → resolution.
    pub latency: Duration,
    /// The outcome.
    pub outcome: RequestOutcome,
}

/// A caller's handle on one in-flight request.
pub struct Ticket {
    /// The request id (matches [`InferResponse::id`]).
    pub id: u64,
    pub(crate) rx: Receiver<InferResponse>,
}

impl Ticket {
    /// Blocks until the response arrives. Every admitted request is
    /// resolved — served, failed, or expired — even across replica
    /// recovery and frontend shutdown, so this cannot wait forever
    /// while the frontend lives.
    ///
    /// # Errors
    ///
    /// Returns an error only when the frontend was torn down without
    /// resolving the request (infrastructure loss).
    pub fn wait(self) -> Result<InferResponse, String> {
        self.rx.recv().map_err(|_| "serving frontend dropped the request".to_string())
    }

    /// [`Ticket::wait`] with an upper bound.
    ///
    /// # Errors
    ///
    /// Returns an error on timeout or frontend teardown.
    pub fn wait_timeout(self, timeout: Duration) -> Result<InferResponse, String> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => "timed out waiting for a response".to_string(),
            RecvTimeoutError::Disconnected => {
                "serving frontend dropped the request".to_string()
            }
        })
    }
}
