//! On-demand model cold start for the serving frontend.
//!
//! The frontend starts with a fixed set of replica pools; the encrypted
//! model registry makes the model population dynamic. A
//! [`ColdStartProvider`] bridges the two without making this crate
//! depend on the registry: when a request names a model key with no
//! pool, the dispatcher asks the provider to build one (checkout from
//! sealed storage, warm the session caches, spin up replicas), and the
//! submission handle sheds [`ShedReason::ColdStart`] at the door when
//! the provider reports it cannot start anything right now.
//!
//! [`ShedReason::ColdStart`]: crate::queue::ShedReason::ColdStart

use crate::pool::ReplicaPool;

/// Builds replica pools on demand for model keys the frontend does not
/// yet serve. Implementations are expected to be backed by the
/// encrypted model registry (`mvtee-registry`), but anything that can
/// turn a model key into a [`ReplicaPool`] works.
pub trait ColdStartProvider: Send + Sync {
    /// Builds a pool for `model_key`.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the key is unknown, the sealed
    /// bundle fails verification, or the deployment cannot be built;
    /// the dispatcher fails the triggering request with it.
    fn cold_start(&self, model_key: &str) -> Result<ReplicaPool, String>;

    /// True when no cold start can begin right now (registry at
    /// capacity). Unknown-key submissions shed with
    /// [`ShedReason::ColdStart`](crate::queue::ShedReason::ColdStart)
    /// instead of queuing toward certain expiry.
    fn saturated(&self) -> bool;
}
