//! The serving frontend: one dispatcher thread pumping the admission
//! queue through the micro-batcher into per-model replica pools.

use crate::batcher::MicroBatcher;
use crate::config::ServeConfig;
use crate::pool::{PoolStats, ReplicaPool};
use crate::queue::{AdmissionQueue, QueueStats, ShedReason};
use crate::request::{InferRequest, RequestOutcome, Ticket};
use crossbeam::channel::bounded;
use mvtee::EventLog;
use mvtee_telemetry::trace::TraceCtx;
use mvtee_tensor::Tensor;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the dispatcher sleeps waiting for work when the batcher is
/// empty (it wakes immediately on arrival; this only bounds the
/// shutdown-latency of an idle frontend).
const IDLE_WAIT: Duration = Duration::from_millis(50);

/// The submission side of the frontend. Cheap to clone; one per client
/// thread.
#[derive(Clone)]
pub struct ServeHandle {
    queue: Arc<AdmissionQueue>,
    next_id: Arc<AtomicU64>,
    default_deadline: Duration,
}

impl ServeHandle {
    /// Submits a request under the config's default deadline.
    ///
    /// # Errors
    ///
    /// The [`ShedReason`] when admission control rejects the request;
    /// nothing was queued and no ticket exists.
    pub fn submit(
        &self,
        tenant: &str,
        model_key: &str,
        input: Tensor,
    ) -> Result<Ticket, ShedReason> {
        self.submit_with_deadline(tenant, model_key, input, self.default_deadline)
    }

    /// Submits a request that expires `deadline` from now.
    ///
    /// # Errors
    ///
    /// The [`ShedReason`] when admission control rejects the request.
    pub fn submit_with_deadline(
        &self,
        tenant: &str,
        model_key: &str,
        input: Tensor,
        deadline: Duration,
    ) -> Result<Ticket, ShedReason> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        let now = Instant::now();
        let trace = TraceCtx::for_request(id);
        let tracer = mvtee_telemetry::trace::recorder();
        if tracer.is_enabled() {
            tracer
                .instant(trace, "serve.submit", "serve")
                .arg("id", id)
                .arg("tenant", tenant)
                .arg("model_key", model_key);
        }
        let req = InferRequest {
            id,
            tenant: tenant.to_string(),
            model_key: model_key.to_string(),
            input,
            submitted: now,
            deadline: now + deadline,
            trace,
            respond: tx,
        };
        match self.queue.offer(req) {
            Ok(()) => Ok(Ticket { id, rx }),
            Err((_req, reason)) => Err(reason),
        }
    }

    /// Admission counters.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }
}

/// Owns the dispatcher thread and the replica pools.
pub struct ServeFrontend {
    handle: ServeHandle,
    queue: Arc<AdmissionQueue>,
    pools: Arc<BTreeMap<String, ReplicaPool>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl ServeFrontend {
    /// Starts a frontend over the given pools (one per model key).
    pub fn start(pools: Vec<ReplicaPool>, cfg: ServeConfig) -> Self {
        let queue = Arc::new(AdmissionQueue::new(
            cfg.max_queue_depth,
            cfg.per_tenant_quota,
        ));
        let pools: Arc<BTreeMap<String, ReplicaPool>> = Arc::new(
            pools
                .into_iter()
                .map(|p| (p.model_key().to_string(), p))
                .collect(),
        );
        let handle = ServeHandle {
            queue: Arc::clone(&queue),
            next_id: Arc::new(AtomicU64::new(0)),
            default_deadline: cfg.default_deadline(),
        };
        let dispatcher = {
            let queue = Arc::clone(&queue);
            let pools = Arc::clone(&pools);
            let batcher_cfg = cfg.batcher();
            std::thread::Builder::new()
                .name("serve-dispatcher".to_string())
                .spawn(move || dispatch_loop(&queue, &pools, MicroBatcher::new(batcher_cfg)))
                .expect("spawn serve dispatcher")
        };
        Self {
            handle,
            queue,
            pools,
            dispatcher: Some(dispatcher),
        }
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Admission counters.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Per-replica counters for one model key's pool.
    pub fn pool_stats(&self, model_key: &str) -> Option<PoolStats> {
        self.pools.get(model_key).map(ReplicaPool::stats)
    }

    /// Replica count for one model key's pool.
    pub fn pool_replicas(&self, model_key: &str) -> Option<usize> {
        self.pools.get(model_key).map(ReplicaPool::replicas)
    }

    /// The monitor event log of one replica — lets callers watch core
    /// quarantine/recovery activity while the pool serves.
    pub fn replica_events(&self, model_key: &str, replica: usize) -> Option<EventLog> {
        self.pools
            .get(model_key)
            .filter(|p| replica < p.replicas())
            .map(|p| p.replica_events(replica).clone())
    }

    /// Closes intake, drains everything already admitted (every queued
    /// request is resolved — served, failed, or expired), then stops
    /// the pools and joins all worker threads.
    pub fn shutdown(mut self) {
        self.queue.close();
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
        let pools = Arc::try_unwrap(self.pools)
            .unwrap_or_else(|_| panic!("pools still shared after dispatcher join"));
        for (_, pool) in pools {
            pool.shutdown();
        }
    }
}

fn dispatch_loop(
    queue: &AdmissionQueue,
    pools: &BTreeMap<String, ReplicaPool>,
    mut batcher: MicroBatcher,
) {
    let batches_total = mvtee_telemetry::counter("serve.batches_total");
    let batch_size = mvtee_telemetry::histogram("serve.batch_size");
    let expired = mvtee_telemetry::counter("serve.expired_total");
    loop {
        let now = Instant::now();
        let wait = batcher
            .next_flush_at()
            .map(|at| at.saturating_duration_since(now))
            .unwrap_or(IDLE_WAIT)
            .min(IDLE_WAIT);
        let drained = queue.drain(wait);
        let now = Instant::now();
        for req in drained.requests {
            match pools.get(&req.model_key) {
                Some(_) => batcher.push(req, now),
                None => {
                    let detail = format!("unknown model key {:?}", req.model_key);
                    req.resolve(None, RequestOutcome::Failed(detail));
                }
            }
        }
        for batch in batcher.ready(Instant::now()) {
            dispatch(pools, batch, &batches_total, &batch_size, &expired);
        }
        if drained.finished {
            for batch in batcher.flush_all() {
                dispatch(pools, batch, &batches_total, &batch_size, &expired);
            }
            return;
        }
    }
}

fn dispatch(
    pools: &BTreeMap<String, ReplicaPool>,
    batch: crate::batcher::MicroBatch,
    batches_total: &mvtee_telemetry::Counter,
    batch_size: &mvtee_telemetry::Histogram,
    expired: &mvtee_telemetry::Counter,
) {
    // Re-check deadlines at dispatch: a request can age out while its
    // batch waited for peers.
    let now = Instant::now();
    let key = batch.key.clone();
    let mut live = Vec::with_capacity(batch.requests.len());
    for req in batch.requests {
        if req.deadline <= now {
            expired.inc();
            req.resolve(None, RequestOutcome::Expired);
        } else {
            live.push(req);
        }
    }
    if live.is_empty() {
        return;
    }
    batches_total.inc();
    batch_size.record(live.len() as u64);
    let tracer = mvtee_telemetry::trace::recorder();
    if tracer.is_enabled() {
        for req in &live {
            tracer
                .instant(req.trace, "serve.dispatch", "serve")
                .arg("id", req.id)
                .arg("batch_size", live.len());
        }
    }
    let pool = pools.get(&key).expect("dispatch only for known keys");
    if let Err(returned) = pool.submit(crate::batcher::MicroBatch {
        key,
        requests: live,
    }) {
        for req in returned.requests {
            req.resolve(
                None,
                RequestOutcome::Failed("replica pool shut down".to_string()),
            );
        }
    }
}
