//! The serving frontend: one dispatcher thread pumping the admission
//! queue through the micro-batcher into per-model replica pools.

use crate::batcher::MicroBatcher;
use crate::coldstart::ColdStartProvider;
use crate::config::ServeConfig;
use crate::pool::{PoolStats, ReplicaPool};
use crate::queue::{AdmissionQueue, QueueStats, ShedReason};
use crate::request::{InferRequest, RequestOutcome, Ticket};
use crossbeam::channel::bounded;
use mvtee::EventLog;
use mvtee_telemetry::trace::TraceCtx;
use mvtee_tensor::Tensor;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the dispatcher sleeps waiting for work when the batcher is
/// empty (it wakes immediately on arrival; this only bounds the
/// shutdown-latency of an idle frontend).
const IDLE_WAIT: Duration = Duration::from_millis(50);

/// The pool map, shared between handles (membership checks), the
/// dispatcher (routing + cold-start inserts) and the frontend (stats).
type PoolMap = Arc<RwLock<BTreeMap<String, ReplicaPool>>>;

/// The submission side of the frontend. Cheap to clone; one per client
/// thread.
#[derive(Clone)]
pub struct ServeHandle {
    queue: Arc<AdmissionQueue>,
    pools: PoolMap,
    provider: Option<Arc<dyn ColdStartProvider>>,
    next_id: Arc<AtomicU64>,
    default_deadline: Duration,
}

impl ServeHandle {
    /// Submits a request under the config's default deadline.
    ///
    /// # Errors
    ///
    /// The [`ShedReason`] when admission control rejects the request;
    /// nothing was queued and no ticket exists.
    pub fn submit(
        &self,
        tenant: &str,
        model_key: &str,
        input: Tensor,
    ) -> Result<Ticket, ShedReason> {
        self.submit_with_deadline(tenant, model_key, input, self.default_deadline)
    }

    /// Submits a request that expires `deadline` from now.
    ///
    /// # Errors
    ///
    /// The [`ShedReason`] when admission control rejects the request.
    pub fn submit_with_deadline(
        &self,
        tenant: &str,
        model_key: &str,
        input: Tensor,
        deadline: Duration,
    ) -> Result<Ticket, ShedReason> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        let now = Instant::now();
        let trace = TraceCtx::for_request(id);
        let tracer = mvtee_telemetry::trace::recorder();
        if tracer.is_enabled() {
            tracer
                .instant(trace, "serve.submit", "serve")
                .arg("id", id)
                .arg("tenant", tenant)
                .arg("model_key", model_key);
        }
        let req = InferRequest {
            id,
            tenant: tenant.to_string(),
            model_key: model_key.to_string(),
            input,
            submitted: now,
            deadline: now + deadline,
            trace,
            respond: tx,
        };
        // An unknown key means the dispatcher would have to cold-start
        // the model from the registry. When the registry cannot begin
        // one, queuing would only let the request expire — shed now so
        // the caller can retry elsewhere.
        if let Some(provider) = &self.provider {
            let known = self
                .pools
                .read()
                .expect("pool map poisoned")
                .contains_key(model_key);
            if !known && provider.saturated() {
                self.queue.record_coldstart_shed(&req);
                return Err(ShedReason::ColdStart);
            }
        }
        match self.queue.offer(req) {
            Ok(()) => Ok(Ticket { id, rx }),
            Err((_req, reason)) => Err(reason),
        }
    }

    /// Admission counters.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }
}

/// Owns the dispatcher thread and the replica pools.
pub struct ServeFrontend {
    handle: ServeHandle,
    queue: Arc<AdmissionQueue>,
    pools: PoolMap,
    dispatcher: Option<JoinHandle<()>>,
}

impl ServeFrontend {
    /// Starts a frontend over the given pools (one per model key).
    /// Requests for keys outside this set fail; see
    /// [`ServeFrontend::start_with_cold_start`] for dynamic models.
    pub fn start(pools: Vec<ReplicaPool>, cfg: ServeConfig) -> Self {
        Self::launch(pools, cfg, None)
    }

    /// Starts a frontend that cold-starts unknown model keys through
    /// `provider` (typically backed by the encrypted model registry).
    /// The first request for an unknown key triggers a build on a
    /// dedicated worker thread — requests for the key park until the
    /// build lands, and other models' batching and dispatch continue
    /// unstalled; while the provider is saturated, unknown-key
    /// submissions shed with [`ShedReason::ColdStart`].
    pub fn start_with_cold_start(
        pools: Vec<ReplicaPool>,
        cfg: ServeConfig,
        provider: Arc<dyn ColdStartProvider>,
    ) -> Self {
        Self::launch(pools, cfg, Some(provider))
    }

    fn launch(
        pools: Vec<ReplicaPool>,
        cfg: ServeConfig,
        provider: Option<Arc<dyn ColdStartProvider>>,
    ) -> Self {
        let queue = Arc::new(AdmissionQueue::new(
            cfg.max_queue_depth,
            cfg.per_tenant_quota,
        ));
        let pools: PoolMap = Arc::new(RwLock::new(
            pools
                .into_iter()
                .map(|p| (p.model_key().to_string(), p))
                .collect(),
        ));
        let handle = ServeHandle {
            queue: Arc::clone(&queue),
            pools: Arc::clone(&pools),
            provider: provider.clone(),
            next_id: Arc::new(AtomicU64::new(0)),
            default_deadline: cfg.default_deadline(),
        };
        let dispatcher = {
            let queue = Arc::clone(&queue);
            let pools = Arc::clone(&pools);
            let batcher_cfg = cfg.batcher();
            std::thread::Builder::new()
                .name("serve-dispatcher".to_string())
                .spawn(move || {
                    dispatch_loop(&queue, &pools, provider, MicroBatcher::new(batcher_cfg));
                })
                .expect("spawn serve dispatcher")
        };
        Self {
            handle,
            queue,
            pools,
            dispatcher: Some(dispatcher),
        }
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Admission counters.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Model keys currently served (static pools plus cold starts).
    pub fn model_keys(&self) -> Vec<String> {
        self.pools
            .read()
            .expect("pool map poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Per-replica counters for one model key's pool.
    pub fn pool_stats(&self, model_key: &str) -> Option<PoolStats> {
        self.pools
            .read()
            .expect("pool map poisoned")
            .get(model_key)
            .map(ReplicaPool::stats)
    }

    /// Replica count for one model key's pool.
    pub fn pool_replicas(&self, model_key: &str) -> Option<usize> {
        self.pools
            .read()
            .expect("pool map poisoned")
            .get(model_key)
            .map(ReplicaPool::replicas)
    }

    /// The monitor event log of one replica — lets callers watch core
    /// quarantine/recovery activity while the pool serves.
    pub fn replica_events(&self, model_key: &str, replica: usize) -> Option<EventLog> {
        self.pools
            .read()
            .expect("pool map poisoned")
            .get(model_key)
            .filter(|p| replica < p.replicas())
            .map(|p| p.replica_events(replica).clone())
    }

    /// Closes intake, drains everything already admitted (every queued
    /// request is resolved — served, failed, or expired), then stops
    /// the pools and joins all worker threads.
    pub fn shutdown(mut self) {
        self.queue.close();
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
        // Handles may outlive the frontend; take the pools out from
        // under the shared map instead of unwrapping the Arc. Late
        // submissions shed ShuttingDown at the closed queue.
        let pools = std::mem::take(&mut *self.pools.write().expect("pool map poisoned"));
        for (_, pool) in pools {
            pool.shutdown();
        }
    }
}

/// How often the dispatcher re-checks the build channel while cold
/// starts are in flight — short, so a finished build releases its parked
/// requests promptly instead of waiting out a full [`IDLE_WAIT`].
const BUILD_WAIT: Duration = Duration::from_millis(1);

fn dispatch_loop(
    queue: &AdmissionQueue,
    pools: &RwLock<BTreeMap<String, ReplicaPool>>,
    provider: Option<Arc<dyn ColdStartProvider>>,
    mut batcher: MicroBatcher,
) {
    let batches_total = mvtee_telemetry::counter("serve.batches_total");
    let batch_size = mvtee_telemetry::histogram("serve.batch_size");
    let expired = mvtee_telemetry::counter("serve.expired_total");
    // Cold starts run on their own worker threads so an expensive
    // unseal+build for one model never stalls batching and dispatch for
    // every other model's queued requests. Requests that triggered (or
    // arrived during) a build are parked under their key and released
    // when the build lands on `built_rx`.
    let (built_tx, built_rx) =
        crossbeam::channel::unbounded::<(String, Result<ReplicaPool, String>)>();
    let mut parked: BTreeMap<String, Vec<InferRequest>> = BTreeMap::new();
    loop {
        let now = Instant::now();
        let wait = batcher
            .next_flush_at()
            .map(|at| at.saturating_duration_since(now))
            .unwrap_or(IDLE_WAIT)
            .min(if parked.is_empty() { IDLE_WAIT } else { BUILD_WAIT });
        let drained = queue.drain(wait);
        let now = Instant::now();
        // Install finished cold starts and release their parked requests.
        while let Ok((key, outcome)) = built_rx.try_recv() {
            settle_cold_start(pools, &mut batcher, &mut parked, key, outcome, now);
        }
        for req in drained.requests {
            let known = pools
                .read()
                .expect("pool map poisoned")
                .contains_key(&req.model_key);
            if known {
                batcher.push(req, now);
                continue;
            }
            if let Some(waiting) = parked.get_mut(&req.model_key) {
                // A build for this key is already in flight.
                waiting.push(req);
                continue;
            }
            match provider.clone() {
                Some(provider) => {
                    let key = req.model_key.clone();
                    parked.insert(key.clone(), vec![req]);
                    spawn_cold_start(provider, key, built_tx.clone());
                }
                None => {
                    let detail = format!("unknown model key {:?}", req.model_key);
                    req.resolve(None, RequestOutcome::Failed(detail));
                }
            }
        }
        for batch in batcher.ready(Instant::now()) {
            dispatch(pools, batch, &batches_total, &batch_size, &expired);
        }
        if drained.finished {
            // Intake is closed but builds may still be in flight; every
            // admitted request must resolve, so wait them out.
            while !parked.is_empty() {
                match built_rx.recv() {
                    Ok((key, outcome)) => settle_cold_start(
                        pools,
                        &mut batcher,
                        &mut parked,
                        key,
                        outcome,
                        Instant::now(),
                    ),
                    Err(_) => break,
                }
            }
            for batch in batcher.flush_all() {
                dispatch(pools, batch, &batches_total, &batch_size, &expired);
            }
            return;
        }
    }
}

/// Runs one cold-start build on its own worker thread and reports the
/// outcome back to the dispatcher over `done`.
fn spawn_cold_start(
    provider: Arc<dyn ColdStartProvider>,
    model_key: String,
    done: crossbeam::channel::Sender<(String, Result<ReplicaPool, String>)>,
) {
    std::thread::Builder::new()
        .name("serve-coldstart".to_string())
        .spawn(move || {
            mvtee_telemetry::counter("serve.coldstart.requests").inc();
            let timer = mvtee_telemetry::histogram("serve.coldstart.build_ns").start();
            let outcome = provider.cold_start(&model_key);
            match &outcome {
                Ok(_) => {
                    timer.finish();
                    mvtee_telemetry::counter("serve.coldstart.built").inc();
                }
                Err(_) => {
                    timer.cancel();
                    mvtee_telemetry::counter("serve.coldstart.failed").inc();
                }
            }
            // The dispatcher may already be gone at shutdown; the pool
            // (if any) is dropped with the unsent message.
            let _ = done.send((model_key, outcome));
        })
        .expect("spawn serve cold-start worker");
}

/// Installs a finished cold start (the dispatcher thread is the single
/// writer of the pool map) and releases or fails its parked requests.
fn settle_cold_start(
    pools: &RwLock<BTreeMap<String, ReplicaPool>>,
    batcher: &mut MicroBatcher,
    parked: &mut BTreeMap<String, Vec<InferRequest>>,
    key: String,
    outcome: Result<ReplicaPool, String>,
    now: Instant,
) {
    let waiting = parked.remove(&key).unwrap_or_default();
    match outcome {
        Ok(pool) => {
            pools
                .write()
                .expect("pool map poisoned")
                .insert(key, pool);
            for req in waiting {
                batcher.push(req, now);
            }
        }
        Err(detail) => {
            let detail = format!("cold start failed for {key:?}: {detail}");
            for req in waiting {
                req.resolve(None, RequestOutcome::Failed(detail.clone()));
            }
        }
    }
}

fn dispatch(
    pools: &RwLock<BTreeMap<String, ReplicaPool>>,
    batch: crate::batcher::MicroBatch,
    batches_total: &mvtee_telemetry::Counter,
    batch_size: &mvtee_telemetry::Histogram,
    expired: &mvtee_telemetry::Counter,
) {
    // Re-check deadlines at dispatch: a request can age out while its
    // batch waited for peers.
    let now = Instant::now();
    let key = batch.key.clone();
    let mut live = Vec::with_capacity(batch.requests.len());
    for req in batch.requests {
        if req.deadline <= now {
            expired.inc();
            req.resolve(None, RequestOutcome::Expired);
        } else {
            live.push(req);
        }
    }
    if live.is_empty() {
        return;
    }
    batches_total.inc();
    batch_size.record(live.len() as u64);
    let tracer = mvtee_telemetry::trace::recorder();
    if tracer.is_enabled() {
        for req in &live {
            tracer
                .instant(req.trace, "serve.dispatch", "serve")
                .arg("id", req.id)
                .arg("batch_size", live.len());
        }
    }
    let guard = pools.read().expect("pool map poisoned");
    let pool = guard.get(&key).expect("dispatch only for known keys");
    if let Err(returned) = pool.submit(crate::batcher::MicroBatch {
        key,
        requests: live,
    }) {
        for req in returned.requests {
            req.resolve(
                None,
                RequestOutcome::Failed("replica pool shut down".to_string()),
            );
        }
    }
}
