//! The MVTEE serving frontend: many concurrent tenants, one MVX fleet.
//!
//! The `mvtee` crate serves exactly one caller per [`Deployment`]; the
//! ROADMAP's north star is heavy concurrent traffic. This crate adds the
//! layer between the two:
//!
//! ```text
//!  clients ──▶ AdmissionQueue ──▶ MicroBatcher ──▶ ReplicaPool ──▶ clients
//!             (per-tenant quotas,  (coalesce same-   (N diversified
//!              bounded depth,       key requests up   Deployments,
//!              deadline shedding)   to max_batch /    least-outstanding
//!                                   max_wait_ms)      scheduling)
//! ```
//!
//! * [`AdmissionQueue`] — bounded, quota'd intake. Overload is shed at
//!   the door (`serve.shed_*`), expired deadlines are dropped at
//!   dequeue (`serve.expired_total`); both are observable, never silent.
//! * [`MicroBatcher`] — groups compatible requests (same model key) into
//!   micro-batches, flushing on size or age. A micro-batch is submitted
//!   through the deployment's pipelined stream path, so coalescing
//!   amortises per-dispatch cost **without** fusing tensors: every
//!   request stays its own pipeline batch with its own checkpoint
//!   verdict, which is why serving outputs are byte-identical to serial
//!   single-request runs.
//! * [`ReplicaPool`] — N independently diversified [`Deployment`]s built
//!   via [`DeploymentBuilder::build_many`], scheduled by least
//!   outstanding requests. Replicas heal through the core
//!   quarantine/recovery path while queued work keeps flowing.
//! * [`ServeFrontend`] — ties the three together behind a cloneable
//!   [`ServeHandle`] that client threads submit to.
//!
//! [`Deployment`]: mvtee::Deployment
//! [`DeploymentBuilder::build_many`]: mvtee::DeploymentBuilder::build_many

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod batcher;
mod coldstart;
mod config;
mod frontend;
mod pool;
mod queue;
mod request;

pub use backend::ReplicaBackend;
pub use batcher::{BatcherConfig, MicroBatch, MicroBatcher};
pub use coldstart::ColdStartProvider;
pub use config::ServeConfig;
pub use frontend::{ServeHandle, ServeFrontend};
pub use pool::{PoolStats, ReplicaPool};
pub use queue::{AdmissionQueue, QueueStats, ShedReason};
pub use request::{InferRequest, InferResponse, RequestOutcome, Ticket};

/// Registers every `serve.*` metric on the global telemetry registry so
/// reports show explicit zeros (the PR-1 eager-registration pattern)
/// rather than omitting counters that never fired.
pub fn register_serve_metrics() {
    for name in [
        "serve.submitted_total",
        "serve.admitted_total",
        "serve.shed_total",
        "serve.shed_queue_full",
        "serve.shed_quota",
        "serve.shed_coldstart",
        "serve.coldstart.requests",
        "serve.coldstart.built",
        "serve.coldstart.failed",
        "serve.expired_total",
        "serve.completed_total",
        "serve.failed_total",
        "serve.batches_total",
        "serve.pool.dispatched_total",
        "serve.pool.stream_failures",
    ] {
        mvtee_telemetry::counter(name);
    }
    mvtee_telemetry::gauge("serve.queue_depth");
    mvtee_telemetry::gauge("serve.pool.outstanding");
    mvtee_telemetry::histogram("serve.batch_size");
    mvtee_telemetry::histogram("serve.coldstart.build_ns");
    mvtee_telemetry::histogram("serve.queue_wait_ns");
    mvtee_telemetry::histogram("serve.e2e_latency_ns");
}
