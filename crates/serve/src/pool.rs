//! The MVX replica pool: N diversified deployments behind a
//! least-outstanding-requests scheduler.

use crate::backend::ReplicaBackend;
use crate::batcher::MicroBatch;
use crate::request::RequestOutcome;
use crossbeam::channel::{unbounded, Receiver, Sender};
use mvtee::{Deployment, DeploymentBuilder, EventLog, MvxError};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Point-in-time pool counters, one slot per replica.
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    /// Requests dispatched to each replica and not yet resolved.
    pub outstanding: Vec<i64>,
    /// Micro-batches each replica has served.
    pub served_batches: Vec<u64>,
    /// Requests each replica has served (across its batches).
    pub served_requests: Vec<u64>,
}

struct ReplicaWorker {
    tx: Sender<MicroBatch>,
    outstanding: Arc<AtomicI64>,
    served_batches: Arc<AtomicU64>,
    served_requests: Arc<AtomicU64>,
    events: EventLog,
    handle: JoinHandle<()>,
}

/// N independent MVX replicas serving one model key — concrete
/// [`Deployment`]s (whatever their variant placements: in-process
/// threads, out-of-process `mvtee-variantd` workers, or a mix) or any
/// other [`ReplicaBackend`].
///
/// Scheduling is least-outstanding-requests with lowest-index
/// tie-break: a replica wedged in quarantine/recovery keeps its
/// outstanding count high and naturally stops attracting new work until
/// the core recovery path brings it back — queued work keeps flowing to
/// its siblings the whole time.
pub struct ReplicaPool {
    model_key: String,
    workers: Vec<ReplicaWorker>,
}

impl ReplicaPool {
    /// Wraps already-built deployments (typically from
    /// [`DeploymentBuilder::build_many`]) in worker threads.
    ///
    /// # Errors
    ///
    /// [`MvxError::InvalidConfig`] when `deployments` is empty.
    pub fn new(
        model_key: impl Into<String>,
        deployments: Vec<Deployment>,
    ) -> Result<Self, MvxError> {
        Self::from_backends(
            model_key,
            deployments
                .into_iter()
                .map(|d| Box::new(d) as Box<dyn ReplicaBackend>)
                .collect(),
        )
    }

    /// Wraps arbitrary replica backends in worker threads — the
    /// placement-agnostic constructor ([`ReplicaPool::new`] is the
    /// all-[`Deployment`] special case).
    ///
    /// # Errors
    ///
    /// [`MvxError::InvalidConfig`] when `backends` is empty.
    pub fn from_backends(
        model_key: impl Into<String>,
        backends: Vec<Box<dyn ReplicaBackend>>,
    ) -> Result<Self, MvxError> {
        if backends.is_empty() {
            return Err(MvxError::InvalidConfig(
                "a replica pool needs at least one replica backend".into(),
            ));
        }
        let model_key = model_key.into();
        let workers = backends
            .into_iter()
            .enumerate()
            .map(|(index, backend)| Self::spawn_worker(&model_key, index, backend))
            .collect();
        Ok(Self { model_key, workers })
    }

    /// Builds `n` replicas via [`DeploymentBuilder::build_many`] and
    /// wraps them. All replicas share the builder's partition seed (so
    /// replicated panels answer byte-identically and engine pre-packing
    /// is reused via the global session cache) while variant seeds are
    /// derived per replica.
    ///
    /// # Errors
    ///
    /// Propagates builder failures; `n == 0` is rejected.
    pub fn from_builder(
        model_key: impl Into<String>,
        builder: DeploymentBuilder,
        n: usize,
    ) -> Result<Self, MvxError> {
        Self::new(model_key, builder.build_many(n)?)
    }

    fn spawn_worker(
        model_key: &str,
        index: usize,
        mut backend: Box<dyn ReplicaBackend>,
    ) -> ReplicaWorker {
        let (tx, rx): (Sender<MicroBatch>, Receiver<MicroBatch>) = unbounded();
        let outstanding = Arc::new(AtomicI64::new(0));
        let served_batches = Arc::new(AtomicU64::new(0));
        let served_requests = Arc::new(AtomicU64::new(0));
        let events = backend.events();
        let worker_outstanding = Arc::clone(&outstanding);
        let worker_batches = Arc::clone(&served_batches);
        let worker_requests = Arc::clone(&served_requests);
        let name = format!("serve-replica-{model_key}-{index}");
        let handle = std::thread::Builder::new()
            .name(name)
            .spawn(move || {
                let completed = mvtee_telemetry::counter("serve.completed_total");
                let failed = mvtee_telemetry::counter("serve.failed_total");
                let stream_failures = mvtee_telemetry::counter("serve.pool.stream_failures");
                let outstanding_gauge = mvtee_telemetry::gauge("serve.pool.outstanding");
                let e2e = mvtee_telemetry::histogram("serve.e2e_latency_ns");
                while let Ok(batch) = rx.recv() {
                    let size = batch.len() as i64;
                    let inputs: Vec<mvtee_tensor::Tensor> =
                        batch.requests.iter().map(|r| r.input.clone()).collect();
                    let traces: Vec<mvtee_telemetry::trace::TraceCtx> =
                        batch.requests.iter().map(|r| r.trace).collect();
                    let result = backend.infer_stream_traced(&inputs, &traces);
                    match result {
                        Ok(stats) => {
                            for (req, out) in
                                batch.requests.into_iter().zip(stats.outputs)
                            {
                                e2e.record(req.submitted.elapsed().as_nanos() as u64);
                                match out {
                                    Ok(tensor) => {
                                        completed.inc();
                                        req.resolve(Some(index), RequestOutcome::Ok(tensor));
                                    }
                                    Err(detail) => {
                                        failed.inc();
                                        req.resolve(
                                            Some(index),
                                            RequestOutcome::Failed(detail),
                                        );
                                    }
                                }
                            }
                        }
                        Err(err) => {
                            // Whole-stream infrastructure loss: every
                            // member still gets a terminal answer, so
                            // admitted requests are never silently lost.
                            stream_failures.inc();
                            let detail = format!("replica {index} stream failed: {err}");
                            for req in batch.requests {
                                e2e.record(req.submitted.elapsed().as_nanos() as u64);
                                failed.inc();
                                req.resolve(Some(index), RequestOutcome::Failed(detail.clone()));
                            }
                        }
                    }
                    worker_batches.fetch_add(1, Ordering::Relaxed);
                    worker_requests.fetch_add(size as u64, Ordering::Relaxed);
                    worker_outstanding.fetch_sub(size, Ordering::Release);
                    outstanding_gauge.add(-size);
                }
                backend.shutdown();
            })
            .expect("spawn replica worker");
        ReplicaWorker {
            tx,
            outstanding,
            served_batches,
            served_requests,
            events,
            handle,
        }
    }

    /// The model key this pool serves.
    pub fn model_key(&self) -> &str {
        &self.model_key
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.workers.len()
    }

    /// The monitor event log of one replica (alive even while the
    /// replica's worker owns the deployment) — how callers observe
    /// quarantines and recoveries under load.
    pub fn replica_events(&self, replica: usize) -> &EventLog {
        &self.workers[replica].events
    }

    /// Dispatches a micro-batch to the replica with the fewest
    /// outstanding requests (lowest index wins ties).
    ///
    /// # Errors
    ///
    /// Hands the batch back if every worker has hung up (pool shut
    /// down), so the caller can resolve the member tickets.
    pub fn submit(&self, batch: MicroBatch) -> Result<(), MicroBatch> {
        let size = batch.len() as i64;
        let target = self
            .workers
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.outstanding.load(Ordering::Acquire))
            .map(|(i, _)| i)
            .expect("pool has at least one replica");
        let worker = &self.workers[target];
        worker.outstanding.fetch_add(size, Ordering::AcqRel);
        mvtee_telemetry::gauge("serve.pool.outstanding").add(size);
        mvtee_telemetry::counter("serve.pool.dispatched_total").add(size as u64);
        worker.tx.send(batch).map_err(|e| {
            worker.outstanding.fetch_sub(size, Ordering::AcqRel);
            mvtee_telemetry::gauge("serve.pool.outstanding").add(-size);
            e.0
        })
    }

    /// Per-replica counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            outstanding: self
                .workers
                .iter()
                .map(|w| w.outstanding.load(Ordering::Acquire))
                .collect(),
            served_batches: self
                .workers
                .iter()
                .map(|w| w.served_batches.load(Ordering::Relaxed))
                .collect(),
            served_requests: self
                .workers
                .iter()
                .map(|w| w.served_requests.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Stops intake, drains every replica's queued batches, and joins
    /// the workers (each shuts its deployment down before exiting).
    pub fn shutdown(self) {
        let mut handles = Vec::with_capacity(self.workers.len());
        for worker in self.workers {
            drop(worker.tx);
            handles.push(worker.handle);
        }
        for handle in handles {
            let _ = handle.join();
        }
    }
}
