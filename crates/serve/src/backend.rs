//! The replica backend abstraction: what the pool schedules over.
//!
//! A pool replica used to be a concrete [`Deployment`]. With
//! distributed MVX a replica's variant hosts may live in this process
//! (threads) or in separate `mvtee-variantd` worker processes — and a
//! future frontend may proxy a replica on another machine entirely.
//! [`ReplicaBackend`] is the narrow waist: the pool only needs to
//! stream traced micro-batches, observe monitor events, and shut the
//! replica down. [`Deployment`] implements it directly (whatever its
//! variant placements), so `ReplicaPool::new` keeps its signature while
//! `ReplicaPool::from_backends` accepts anything behind the trait.

use mvtee::deployment::StreamStats;
use mvtee::{Deployment, EventLog, MvxError};
use mvtee_telemetry::trace::TraceCtx;
use mvtee_tensor::Tensor;

/// One schedulable MVX replica, placement-agnostic.
pub trait ReplicaBackend: Send {
    /// Streams a traced micro-batch through the replica's pipeline;
    /// per-request outcomes come back in submission order.
    ///
    /// # Errors
    ///
    /// Whole-stream infrastructure failure (the pool resolves every
    /// member request with the error).
    fn infer_stream_traced(
        &mut self,
        inputs: &[Tensor],
        traces: &[TraceCtx],
    ) -> Result<StreamStats, MvxError>;

    /// The replica's monitor event log — how the pool's callers observe
    /// quarantines and recoveries while the backend is owned by a
    /// worker thread.
    fn events(&self) -> EventLog;

    /// Stops the replica, joining whatever hosts it runs (threads or
    /// worker processes).
    fn shutdown(&mut self);
}

impl ReplicaBackend for Deployment {
    fn infer_stream_traced(
        &mut self,
        inputs: &[Tensor],
        traces: &[TraceCtx],
    ) -> Result<StreamStats, MvxError> {
        Deployment::infer_stream_traced(self, inputs, traces)
    }

    fn events(&self) -> EventLog {
        Deployment::events(self).clone()
    }

    fn shutdown(&mut self) {
        Deployment::shutdown(self);
    }
}
