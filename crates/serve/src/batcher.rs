//! Dynamic micro-batching: coalesce compatible requests, bounded by
//! size and age.
//!
//! The batcher is pure bookkeeping — no threads, no clocks of its own
//! (callers pass `Instant`s) — so batching policy is unit-testable
//! without building deployments.

use crate::request::{InferRequest, RequestOutcome};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Micro-batching policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherConfig {
    /// Flush a key as soon as this many requests are pending for it.
    pub max_batch: usize,
    /// Flush a key once its oldest pending request has waited this
    /// long, even if the batch holds a single request.
    pub max_wait: Duration,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// A flushed group of same-key requests, dispatched together through
/// one replica's pipelined stream path. Members keep their own pipeline
/// batch ids and checkpoint verdicts — the batcher never fuses tensors.
pub struct MicroBatch {
    /// The shared model/deployment key.
    pub key: String,
    /// Members, in admission order.
    pub requests: Vec<InferRequest>,
}

impl MicroBatch {
    /// Number of member requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the batch holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

struct Pending {
    requests: VecDeque<InferRequest>,
    /// When the current oldest member entered the batcher.
    oldest_since: Instant,
}

/// Groups requests by model key and decides when each group flushes.
///
/// Keys are kept in a `BTreeMap` so flush order is deterministic for a
/// given arrival sequence.
pub struct MicroBatcher {
    cfg: BatcherConfig,
    pending: BTreeMap<String, Pending>,
    pending_len: usize,
}

impl MicroBatcher {
    /// A batcher with the given policy (`max_batch` clamped to ≥ 1).
    pub fn new(mut cfg: BatcherConfig) -> Self {
        cfg.max_batch = cfg.max_batch.max(1);
        Self {
            cfg,
            pending: BTreeMap::new(),
            pending_len: 0,
        }
    }

    /// Adds a request to its key's pending group. Requests whose
    /// deadline has already passed are resolved as
    /// [`RequestOutcome::Expired`] instead of queued
    /// (`serve.expired_total`).
    pub fn push(&mut self, req: InferRequest, now: Instant) {
        if req.deadline <= now {
            mvtee_telemetry::counter("serve.expired_total").inc();
            req.resolve(None, RequestOutcome::Expired);
            return;
        }
        let entry = self
            .pending
            .entry(req.model_key.clone())
            .or_insert_with(|| Pending {
                requests: VecDeque::new(),
                oldest_since: now,
            });
        if entry.requests.is_empty() {
            entry.oldest_since = now;
        }
        entry.requests.push_back(req);
        self.pending_len += 1;
    }

    /// Flushes every group that is due at `now`: full groups always,
    /// partial groups once their oldest member has waited `max_wait`.
    /// A lone queued request therefore still flushes on deadline.
    pub fn ready(&mut self, now: Instant) -> Vec<MicroBatch> {
        let mut flushed = Vec::new();
        let keys: Vec<String> = self.pending.keys().cloned().collect();
        for key in keys {
            loop {
                let due = {
                    let entry = &self.pending[&key];
                    entry.requests.len() >= self.cfg.max_batch
                        || (!entry.requests.is_empty()
                            && now.saturating_duration_since(entry.oldest_since)
                                >= self.cfg.max_wait)
                };
                if !due {
                    break;
                }
                let entry = self.pending.get_mut(&key).expect("key present");
                let take = entry.requests.len().min(self.cfg.max_batch);
                let requests: Vec<InferRequest> =
                    entry.requests.drain(..take).collect();
                entry.oldest_since = now;
                self.pending_len -= requests.len();
                flushed.push(MicroBatch {
                    key: key.clone(),
                    requests,
                });
                if self.pending[&key].requests.is_empty() {
                    self.pending.remove(&key);
                    break;
                }
            }
        }
        flushed
    }

    /// Flushes everything regardless of size or age (shutdown path).
    pub fn flush_all(&mut self) -> Vec<MicroBatch> {
        let mut flushed = Vec::new();
        let pending = std::mem::take(&mut self.pending);
        for (key, mut entry) in pending {
            while !entry.requests.is_empty() {
                let take = entry.requests.len().min(self.cfg.max_batch);
                let requests: Vec<InferRequest> =
                    entry.requests.drain(..take).collect();
                flushed.push(MicroBatch {
                    key: key.clone(),
                    requests,
                });
            }
        }
        self.pending_len = 0;
        flushed
    }

    /// When the earliest pending group will flush by age, if any group
    /// is pending — the dispatcher sleeps no longer than this.
    pub fn next_flush_at(&self) -> Option<Instant> {
        self.pending
            .values()
            .filter(|p| !p.requests.is_empty())
            .map(|p| p.oldest_since + self.cfg.max_wait)
            .min()
    }

    /// Total requests currently pending across all keys.
    pub fn pending_len(&self) -> usize {
        self.pending_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::InferResponse;
    use crossbeam::channel::{bounded, Receiver};
    use mvtee_tensor::Tensor;

    fn request(
        id: u64,
        key: &str,
        now: Instant,
        deadline: Duration,
    ) -> (InferRequest, Receiver<InferResponse>) {
        let (tx, rx) = bounded(1);
        (
            InferRequest {
                id,
                tenant: "t".to_string(),
                model_key: key.to_string(),
                input: Tensor::zeros(&[1]),
                submitted: now,
                deadline: now + deadline,
                trace: mvtee_telemetry::trace::TraceCtx::for_request(id),
                respond: tx,
            },
            rx,
        )
    }

    fn cfg(max_batch: usize, max_wait_ms: u64) -> BatcherConfig {
        BatcherConfig {
            max_batch,
            max_wait: Duration::from_millis(max_wait_ms),
        }
    }

    #[test]
    fn flushes_full_batch_immediately() {
        let mut b = MicroBatcher::new(cfg(2, 1_000));
        let now = Instant::now();
        let (r0, _k0) = request(0, "m", now, Duration::from_secs(5));
        let (r1, _k1) = request(1, "m", now, Duration::from_secs(5));
        b.push(r0, now);
        assert!(b.ready(now).is_empty(), "half-full batch must wait");
        b.push(r1, now);
        let flushed = b.ready(now);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].len(), 2);
        assert_eq!(b.pending_len(), 0);
    }

    #[test]
    fn single_request_flushes_on_age_deadline() {
        // The edge case from the issue: one queued request, nobody else
        // arrives, the batch must still flush once max_wait elapses.
        let mut b = MicroBatcher::new(cfg(8, 2));
        let now = Instant::now();
        let (r0, _k0) = request(0, "m", now, Duration::from_secs(5));
        b.push(r0, now);
        assert!(b.ready(now).is_empty());
        let later = now + Duration::from_millis(3);
        let flushed = b.ready(later);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].len(), 1);
        assert_eq!(flushed[0].requests[0].id, 0);
    }

    #[test]
    fn keys_never_mix_and_flush_deterministically() {
        let mut b = MicroBatcher::new(cfg(4, 0));
        let now = Instant::now();
        let mut keep = Vec::new();
        for (id, key) in [(0, "b"), (1, "a"), (2, "b"), (3, "a")] {
            let (r, k) = request(id, key, now, Duration::from_secs(5));
            keep.push(k);
            b.push(r, now);
        }
        let flushed = b.ready(now);
        assert_eq!(flushed.len(), 2);
        // BTreeMap order: "a" before "b"; members in admission order.
        assert_eq!(flushed[0].key, "a");
        assert_eq!(
            flushed[0].requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![1, 3]
        );
        assert_eq!(flushed[1].key, "b");
        assert_eq!(
            flushed[1].requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 2]
        );
    }

    #[test]
    fn oversized_backlog_splits_into_max_batch_chunks() {
        let mut b = MicroBatcher::new(cfg(3, 1_000));
        let now = Instant::now();
        let mut keep = Vec::new();
        for id in 0..7 {
            let (r, k) = request(id, "m", now, Duration::from_secs(5));
            keep.push(k);
            b.push(r, now);
        }
        let flushed = b.ready(now);
        assert_eq!(
            flushed.iter().map(MicroBatch::len).collect::<Vec<_>>(),
            vec![3, 3],
            "the trailing partial chunk waits for age or peers"
        );
        assert_eq!(b.pending_len(), 1);
        let rest = b.flush_all();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].requests[0].id, 6);
    }

    #[test]
    fn expired_requests_resolve_instead_of_queueing() {
        let mut b = MicroBatcher::new(cfg(8, 2));
        let now = Instant::now();
        let (r0, rx) = request(0, "m", now, Duration::from_millis(1));
        b.push(r0, now + Duration::from_millis(2));
        assert_eq!(b.pending_len(), 0);
        let resp = rx.recv().unwrap();
        assert_eq!(resp.outcome, RequestOutcome::Expired);
    }
}
