//! Serving-frontend configuration.

use crate::batcher::BatcherConfig;
use std::time::Duration;

/// Tuning knobs for the serving frontend.
///
/// The defaults favour the repo's smoke workloads (tiny models, a few
/// hundred requests); production-sized deployments would raise the
/// queue bound and deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum requests waiting in the admission queue; submissions
    /// beyond this are shed with [`ShedReason::QueueFull`].
    ///
    /// [`ShedReason::QueueFull`]: crate::ShedReason::QueueFull
    pub max_queue_depth: usize,
    /// Maximum *queued* (not yet dispatched) requests per tenant;
    /// submissions beyond this are shed with [`ShedReason::Quota`] so a
    /// single hot tenant cannot starve the rest of the fleet.
    ///
    /// [`ShedReason::Quota`]: crate::ShedReason::Quota
    pub per_tenant_quota: usize,
    /// Largest micro-batch the batcher will form for one model key.
    pub max_batch: usize,
    /// Longest a request may sit in the batcher waiting for peers
    /// before the partial (possibly single-request) batch flushes.
    pub max_wait_ms: u64,
    /// Deadline applied by [`ServeHandle::submit`] when the caller does
    /// not pick one; requests still queued past their deadline are
    /// dropped as [`RequestOutcome::Expired`].
    ///
    /// [`ServeHandle::submit`]: crate::ServeHandle::submit
    /// [`RequestOutcome::Expired`]: crate::RequestOutcome::Expired
    pub default_deadline_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_queue_depth: 256,
            per_tenant_quota: 64,
            max_batch: 8,
            max_wait_ms: 2,
            default_deadline_ms: 30_000,
        }
    }
}

impl ServeConfig {
    /// The batcher view of this configuration.
    pub fn batcher(&self) -> BatcherConfig {
        BatcherConfig {
            max_batch: self.max_batch.max(1),
            max_wait: Duration::from_millis(self.max_wait_ms),
        }
    }

    /// The default per-request deadline as a [`Duration`].
    pub fn default_deadline(&self) -> Duration {
        Duration::from_millis(self.default_deadline_ms)
    }
}
