//! Bounded, quota'd admission queue with observable load shedding.

use crate::request::InferRequest;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a submission was rejected at the door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShedReason {
    /// The queue already holds `max_queue_depth` requests.
    QueueFull,
    /// The tenant already has `per_tenant_quota` requests queued.
    Quota,
    /// The frontend is shutting down.
    ShuttingDown,
    /// The model key needs a registry cold start and the registry is
    /// saturated — admitting the request would only let it expire in the
    /// queue while no cold start can begin.
    ColdStart,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "admission queue full"),
            ShedReason::Quota => write!(f, "per-tenant quota exhausted"),
            ShedReason::ShuttingDown => write!(f, "frontend shutting down"),
            ShedReason::ColdStart => write!(f, "model cold start required and registry saturated"),
        }
    }
}

/// Point-in-time admission counters (cheap snapshot for tests/benches;
/// the same numbers flow to the global registry as `serve.*`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Requests offered via [`AdmissionQueue::offer`].
    pub submitted: u64,
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests rejected because the queue was full.
    pub shed_queue_full: u64,
    /// Requests rejected because the tenant's quota was exhausted.
    pub shed_quota: u64,
    /// Requests rejected because the model needed a cold start and the
    /// registry was saturated.
    pub shed_coldstart: u64,
    /// Current queue depth.
    pub depth: usize,
}

struct QueueInner {
    queue: VecDeque<InferRequest>,
    per_tenant: HashMap<String, usize>,
    stats: QueueStats,
    closed: bool,
}

/// What [`AdmissionQueue::drain`] observed.
pub(crate) struct Drained {
    pub requests: Vec<InferRequest>,
    /// True once the queue is closed *and* empty — the dispatcher's
    /// signal to flush and exit.
    pub finished: bool,
}

/// The intake side of the frontend: a bounded MPSC queue with
/// per-tenant quotas. Producers shed synchronously (the caller learns
/// the [`ShedReason`] immediately); the single dispatcher drains.
pub struct AdmissionQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    max_depth: usize,
    per_tenant_quota: usize,
}

impl AdmissionQueue {
    /// A queue bounded at `max_depth` total and `per_tenant_quota`
    /// queued requests per tenant (both clamped to at least 1).
    pub fn new(max_depth: usize, per_tenant_quota: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                queue: VecDeque::new(),
                per_tenant: HashMap::new(),
                stats: QueueStats::default(),
                closed: false,
            }),
            ready: Condvar::new(),
            max_depth: max_depth.max(1),
            per_tenant_quota: per_tenant_quota.max(1),
        }
    }

    /// Offers a request for admission. Rejections hand the request back
    /// so the caller can resolve its ticket with the shed reason.
    ///
    /// # Errors
    ///
    /// The request plus a [`ShedReason`] when the queue is full, the
    /// tenant's quota is exhausted, or the queue is closed.
    #[allow(clippy::result_large_err)] // the rejected request must travel back
    pub fn offer(&self, req: InferRequest) -> Result<(), (InferRequest, ShedReason)> {
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        inner.stats.submitted += 1;
        mvtee_telemetry::counter("serve.submitted_total").inc();
        if inner.closed {
            return Err((req, ShedReason::ShuttingDown));
        }
        if inner.queue.len() >= self.max_depth {
            inner.stats.shed_queue_full += 1;
            mvtee_telemetry::counter("serve.shed_total").inc();
            mvtee_telemetry::counter("serve.shed_queue_full").inc();
            shed_trace(&req, "queue_full");
            return Err((req, ShedReason::QueueFull));
        }
        let tenant_load = inner.per_tenant.get(&req.tenant).copied().unwrap_or(0);
        if tenant_load >= self.per_tenant_quota {
            inner.stats.shed_quota += 1;
            mvtee_telemetry::counter("serve.shed_total").inc();
            mvtee_telemetry::counter("serve.shed_quota").inc();
            shed_trace(&req, "quota");
            return Err((req, ShedReason::Quota));
        }
        *inner.per_tenant.entry(req.tenant.clone()).or_insert(0) += 1;
        inner.queue.push_back(req);
        inner.stats.admitted += 1;
        let depth = inner.queue.len();
        inner.stats.depth = depth;
        mvtee_telemetry::counter("serve.admitted_total").inc();
        mvtee_telemetry::gauge("serve.queue_depth").set(depth as i64);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Drains everything currently queued, blocking up to `timeout`
    /// for the first arrival. Returns immediately once the queue is
    /// closed and empty.
    pub(crate) fn drain(&self, timeout: Duration) -> Drained {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        while inner.queue.is_empty() && !inner.closed {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(inner, deadline - now)
                .expect("admission queue poisoned");
            inner = guard;
        }
        let requests: Vec<InferRequest> = inner.queue.drain(..).collect();
        for req in &requests {
            if let Some(count) = inner.per_tenant.get_mut(&req.tenant) {
                *count = count.saturating_sub(1);
                if *count == 0 {
                    inner.per_tenant.remove(&req.tenant);
                }
            }
        }
        inner.stats.depth = 0;
        mvtee_telemetry::gauge("serve.queue_depth").set(0);
        let wait_hist = mvtee_telemetry::histogram("serve.queue_wait_ns");
        for req in &requests {
            wait_hist.record(req.submitted.elapsed().as_nanos() as u64);
        }
        Drained {
            finished: inner.closed && requests.is_empty(),
            requests,
        }
    }

    /// Records a cold-start shed decided by the caller *before* the
    /// request reached the queue (the handle sheds at submit when the
    /// model key is unknown and the registry cannot start a cold start),
    /// keeping `submitted`/`shed_*` coherent with queue-side sheds.
    pub(crate) fn record_coldstart_shed(&self, req: &InferRequest) {
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        inner.stats.submitted += 1;
        inner.stats.shed_coldstart += 1;
        drop(inner);
        mvtee_telemetry::counter("serve.submitted_total").inc();
        mvtee_telemetry::counter("serve.shed_total").inc();
        mvtee_telemetry::counter("serve.shed_coldstart").inc();
        shed_trace(req, "coldstart");
    }

    /// Closes the intake; queued requests still drain, new offers shed
    /// with [`ShedReason::ShuttingDown`].
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }

    /// Current admission counters.
    pub fn stats(&self) -> QueueStats {
        let inner = self.inner.lock().expect("admission queue poisoned");
        let mut stats = inner.stats.clone();
        stats.depth = inner.queue.len();
        stats
    }
}

/// Records a shed as a trace instant and snapshots the flight recorder
/// — a shed under load is exactly the moment the recent span history
/// explains why the queue was full.
fn shed_trace(req: &InferRequest, reason: &str) {
    let tracer = mvtee_telemetry::trace::recorder();
    if !tracer.is_enabled() {
        return;
    }
    tracer
        .instant(req.trace, "serve.shed", "serve")
        .arg("id", req.id)
        .arg("tenant", &req.tenant)
        .arg("reason", reason);
    tracer.dump(&format!("serve shed: {reason}"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{InferResponse, RequestOutcome};
    use crossbeam::channel::{bounded, Receiver};
    use mvtee_tensor::Tensor;

    fn request(id: u64, tenant: &str) -> (InferRequest, Receiver<InferResponse>) {
        let (tx, rx) = bounded(1);
        let now = Instant::now();
        (
            InferRequest {
                id,
                tenant: tenant.to_string(),
                model_key: "m".to_string(),
                input: Tensor::zeros(&[1]),
                submitted: now,
                deadline: now + Duration::from_secs(5),
                trace: mvtee_telemetry::trace::TraceCtx::for_request(id),
                respond: tx,
            },
            rx,
        )
    }

    #[test]
    fn sheds_when_full_and_over_quota() {
        let q = AdmissionQueue::new(2, 1);
        let (r0, _k0) = request(0, "a");
        let (r1, _k1) = request(1, "b");
        let (r2, _k2) = request(2, "a");
        let (r3, _k3) = request(3, "c");
        assert!(q.offer(r0).is_ok());
        // Tenant "a" already has its one slot.
        let (_, reason) = q.offer(r2).unwrap_err();
        assert_eq!(reason, ShedReason::Quota);
        assert!(q.offer(r1).is_ok());
        // Queue depth 2 == max: full beats everything.
        let (_, reason) = q.offer(r3).unwrap_err();
        assert_eq!(reason, ShedReason::QueueFull);
        let stats = q.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.shed_quota, 1);
        assert_eq!(stats.shed_queue_full, 1);
    }

    #[test]
    fn quota_frees_after_drain() {
        let q = AdmissionQueue::new(8, 1);
        let (r0, _k0) = request(0, "a");
        assert!(q.offer(r0).is_ok());
        let drained = q.drain(Duration::from_millis(1));
        assert_eq!(drained.requests.len(), 1);
        let (r1, _k1) = request(1, "a");
        assert!(q.offer(r1).is_ok(), "quota must release once dequeued");
    }

    #[test]
    fn close_sheds_new_offers_and_finishes_drain() {
        let q = AdmissionQueue::new(8, 8);
        q.close();
        let (r0, rx) = request(0, "a");
        let (req, reason) = q.offer(r0).unwrap_err();
        assert_eq!(reason, ShedReason::ShuttingDown);
        req.resolve(None, RequestOutcome::Failed(reason.to_string()));
        assert!(matches!(
            rx.recv().unwrap().outcome,
            RequestOutcome::Failed(_)
        ));
        let drained = q.drain(Duration::from_millis(1));
        assert!(drained.finished);
        assert!(drained.requests.is_empty());
    }
}
