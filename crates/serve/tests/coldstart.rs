//! Cold-start integration: unknown model keys are built on demand
//! through a [`ColdStartProvider`], saturated providers shed
//! [`ShedReason::ColdStart`] at the door, and failed builds surface as
//! precise request outcomes instead of hanging tickets.

use mvtee::Deployment;
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_serve::{
    ColdStartProvider, ReplicaPool, RequestOutcome, ServeConfig, ServeFrontend, ShedReason,
};
use mvtee_tensor::Tensor;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

fn pool_for(key: &str) -> ReplicaPool {
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 7).unwrap();
    let builder = Deployment::builder(model).partitions(2);
    ReplicaPool::from_builder(key, builder, 1).unwrap()
}

fn input() -> Tensor {
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 7).unwrap();
    Tensor::zeros(model.input_shape.dims())
}

/// A provider the tests can saturate or break at will.
struct TestProvider {
    saturated: AtomicBool,
    builds: AtomicUsize,
    fail: bool,
}

impl TestProvider {
    fn new(fail: bool) -> Self {
        Self {
            saturated: AtomicBool::new(false),
            builds: AtomicUsize::new(0),
            fail,
        }
    }
}

impl ColdStartProvider for TestProvider {
    fn cold_start(&self, model_key: &str) -> Result<ReplicaPool, String> {
        self.builds.fetch_add(1, Ordering::SeqCst);
        if self.fail {
            return Err(format!("no sealed bundle for {model_key}"));
        }
        Ok(pool_for(model_key))
    }

    fn saturated(&self) -> bool {
        self.saturated.load(Ordering::SeqCst)
    }
}

#[test]
fn unknown_key_cold_starts_once_then_serves() {
    let provider = Arc::new(TestProvider::new(false));
    let frontend =
        ServeFrontend::start_with_cold_start(Vec::new(), ServeConfig::default(), provider.clone());
    let handle = frontend.handle();

    let tickets: Vec<_> = (0..3)
        .map(|i| {
            handle
                .submit(&format!("tenant-{i}"), "zoo/mnasnet", input())
                .expect("unsaturated provider must admit")
        })
        .collect();
    for ticket in tickets {
        let resp = ticket.wait().unwrap();
        assert!(
            matches!(resp.outcome, RequestOutcome::Ok(_)),
            "cold-started model must serve: {:?}",
            resp.outcome
        );
    }
    assert_eq!(provider.builds.load(Ordering::SeqCst), 1, "one build per key");
    assert_eq!(frontend.pool_replicas("zoo/mnasnet"), Some(1));
    assert_eq!(frontend.model_keys(), vec!["zoo/mnasnet".to_string()]);
    frontend.shutdown();
}

#[test]
fn saturated_registry_sheds_unknown_keys_but_serves_known_ones() {
    let provider = Arc::new(TestProvider::new(false));
    provider.saturated.store(true, Ordering::SeqCst);
    let frontend = ServeFrontend::start_with_cold_start(
        vec![pool_for("warm/model")],
        ServeConfig::default(),
        provider.clone(),
    );
    let handle = frontend.handle();

    match handle.submit("t", "cold/model", input()) {
        Err(reason) => assert_eq!(reason, ShedReason::ColdStart),
        Ok(_) => panic!("saturated provider must shed unknown keys"),
    }
    assert_eq!(provider.builds.load(Ordering::SeqCst), 0, "shed before any build");

    let resp = handle
        .submit("t", "warm/model", input())
        .expect("known keys are unaffected by saturation")
        .wait()
        .unwrap();
    assert!(matches!(resp.outcome, RequestOutcome::Ok(_)));

    let stats = frontend.queue_stats();
    assert_eq!(stats.shed_coldstart, 1);
    assert_eq!(stats.submitted, 2, "shed submissions still count");
    frontend.shutdown();
}

#[test]
fn failed_cold_start_fails_the_request_with_the_reason() {
    let provider = Arc::new(TestProvider::new(true));
    let frontend =
        ServeFrontend::start_with_cold_start(Vec::new(), ServeConfig::default(), provider);
    let resp = frontend
        .handle()
        .submit("t", "ghost/model", input())
        .expect("admitted — saturation is the only door-time shed")
        .wait()
        .unwrap();
    match resp.outcome {
        RequestOutcome::Failed(detail) => {
            assert!(detail.contains("cold start failed"), "got {detail:?}");
            assert!(detail.contains("no sealed bundle"), "got {detail:?}");
        }
        other => panic!("expected failure, got {other:?}"),
    }
    frontend.shutdown();
}

/// A provider whose builds block until the test releases them.
struct GatedProvider {
    release: crossbeam::channel::Receiver<()>,
}

impl ColdStartProvider for GatedProvider {
    fn cold_start(&self, model_key: &str) -> Result<ReplicaPool, String> {
        self.release.recv().map_err(|_| "gate dropped".to_string())?;
        Ok(pool_for(model_key))
    }

    fn saturated(&self) -> bool {
        false
    }
}

#[test]
fn blocked_cold_start_does_not_stall_other_models() {
    let (gate, release) = crossbeam::channel::unbounded();
    let frontend = ServeFrontend::start_with_cold_start(
        vec![pool_for("warm/model")],
        ServeConfig::default(),
        Arc::new(GatedProvider { release }),
    );
    let handle = frontend.handle();

    // This build blocks on the gate; the request parks behind it.
    let cold_ticket = handle.submit("t", "cold/model", input()).expect("admitted");
    // While the build is stuck, the warm model must keep serving.
    let warm = handle
        .submit("t", "warm/model", input())
        .expect("admitted")
        .wait_timeout(std::time::Duration::from_secs(10))
        .expect("warm model must serve while a cold start is in flight");
    assert!(matches!(warm.outcome, RequestOutcome::Ok(_)), "got {:?}", warm.outcome);

    // Release the build: the parked request resolves.
    gate.send(()).unwrap();
    let cold = cold_ticket.wait().unwrap();
    assert!(matches!(cold.outcome, RequestOutcome::Ok(_)), "got {:?}", cold.outcome);
    frontend.shutdown();
}

#[test]
fn without_a_provider_unknown_keys_still_fail_fast() {
    let frontend = ServeFrontend::start(vec![pool_for("only/model")], ServeConfig::default());
    let resp = frontend
        .handle()
        .submit("t", "missing/model", input())
        .expect("no provider: admission cannot shed on cold start")
        .wait()
        .unwrap();
    assert!(
        matches!(resp.outcome, RequestOutcome::Failed(ref d) if d.contains("unknown model key")),
        "got {:?}",
        resp.outcome
    );
    frontend.shutdown();
}
