//! Table 1 benchmarks: the cost of the exploit-detection machinery — the
//! instrumented exploit path, the checkpoint evaluation that catches it,
//! and a full real-system detection round trip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvtee::prelude::*;
use mvtee::voting::{evaluate, VariantOutput};
use mvtee_faults::{Attack, CveClass};
use mvtee_diversify::VariantSpec;
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_runtime::{Engine, EngineConfig, EngineKind};
use mvtee_tensor::metrics::Metric;
use mvtee_tensor::Tensor;
use std::hint::black_box;

fn bench_exploited_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/exploited_inference");
    group.sample_size(10);
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 1).expect("builds");
    let input = Tensor::ones(model.input_shape.dims());
    let spec = VariantSpec::replicated(0, EngineKind::OrtLike);
    for class in [CveClass::Oob, CveClass::Io, CveClass::Fpe] {
        let prepared = Engine::new(EngineConfig::of_kind(EngineKind::OrtLike))
            .prepare(&model.graph)
            .expect("prepares");
        let attacked = Attack::new(class).instrument(prepared, &spec);
        group.bench_function(BenchmarkId::new("class", class.to_string()), |b| {
            b.iter(|| black_box(attacked.run(std::slice::from_ref(&input)).expect("corrupts")))
        });
    }
    group.finish();
}

fn bench_divergence_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/divergence_evaluation");
    group.sample_size(20);
    // A healthy/corrupted output pair as produced by a real OOB exploit.
    let healthy = Tensor::from_vec((0..4096).map(|i| (i as f32).cos()).collect(), &[1, 4096])
        .expect("consistent");
    let mut corrupted = healthy.clone();
    for v in corrupted.data_mut().iter_mut().take(1024) {
        *v = 999.0;
    }
    let outputs = [
        VariantOutput::Ok(vec![healthy.clone()]),
        VariantOutput::Ok(vec![corrupted]),
    ];
    group.bench_function("detect_corruption", |b| {
        b.iter(|| black_box(evaluate(&outputs, Metric::relaxed(), VotingPolicy::Unanimous)))
    });
    let agreeing = [
        VariantOutput::Ok(vec![healthy.clone()]),
        VariantOutput::Ok(vec![healthy.clone()]),
    ];
    group.bench_function("pass_benign", |b| {
        b.iter(|| black_box(evaluate(&agreeing, Metric::relaxed(), VotingPolicy::Unanimous)))
    });
    group.finish();
}

fn bench_full_detection_round_trip(c: &mut Criterion) {
    // One inference through the real system with an active exploit: the
    // detection latency the monitor pays end to end.
    let mut group = c.benchmark_group("table1/real_detection");
    group.sample_size(10);
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 1).expect("builds");
    let input = Tensor::ones(model.input_shape.dims());
    let mut d = Deployment::builder(model)
        .partitions(2)
        .mvx_on_partition(1, 2)
        .engine_override(1, 1, EngineConfig::of_kind(EngineKind::TvmLike))
        .response(ResponsePolicy::ContinueWithMajority)
        .voting(VotingPolicy::Majority)
        .attack(Attack::new(CveClass::Io))
        .build()
        .expect("deploys");
    group.bench_function("detect_and_continue", |b| {
        b.iter(|| black_box(d.infer(&input)))
    });
    assert!(d.events().detection_count() > 0, "exploit must have been detected");
    d.shutdown();
    group.finish();
}

criterion_group!(
    benches,
    bench_exploited_inference,
    bench_divergence_evaluation,
    bench_full_detection_round_trip
);
criterion_main!(benches);
