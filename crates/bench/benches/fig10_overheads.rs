//! Fig 10 micro-benchmarks: the cryptographic and checkpoint-verification
//! costs behind the encryption/checkpointing overhead experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mvtee::voting::{evaluate, VariantOutput};
use mvtee::VotingPolicy;
use mvtee_crypto::gcm::AesGcm;
use mvtee_tensor::metrics::Metric;
use mvtee_tensor::Tensor;
use std::hint::black_box;

fn bench_aes_gcm(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10/aes_gcm_256");
    group.sample_size(20);
    let cipher = AesGcm::new_256(&[7u8; 32]);
    // Checkpoint payload sizes observed at bench scale: 16 KiB – 1 MiB.
    for size in [16 * 1024usize, 128 * 1024, 1024 * 1024] {
        let payload = vec![0xa5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("seal", size), &payload, |b, p| {
            b.iter(|| black_box(cipher.seal(&[0u8; 12], p, b"aad")))
        });
        let sealed = cipher.seal(&[0u8; 12], &payload, b"aad");
        group.bench_with_input(BenchmarkId::new("open", size), &sealed, |b, s| {
            b.iter(|| black_box(cipher.open(&[0u8; 12], s, b"aad").expect("authentic")))
        });
    }
    group.finish();
}

fn bench_checkpoint_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10/checkpoint_verify");
    group.sample_size(20);
    for elems in [4096usize, 65_536] {
        let base: Vec<f32> = (0..elems).map(|i| (i as f32).sin()).collect();
        let outputs: Vec<VariantOutput> = (0..3)
            .map(|v| {
                let t = Tensor::from_vec(
                    base.iter().map(|x| x + v as f32 * 1e-7).collect(),
                    &[1, elems],
                )
                .expect("consistent");
                VariantOutput::Ok(vec![t])
            })
            .collect();
        group.throughput(Throughput::Elements(elems as u64));
        group.bench_with_input(BenchmarkId::new("3_variants", elems), &outputs, |b, o| {
            b.iter(|| black_box(evaluate(o, Metric::relaxed(), VotingPolicy::Unanimous)))
        });
    }
    group.finish();
}

fn bench_payload_serialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10/payload_codec");
    group.sample_size(20);
    let tensor = Tensor::ones(&[1, 64, 32, 32]);
    let msg = mvtee::messages::StageRequest::Input { batch: 0, trace: (0, 0), tensors: vec![tensor] };
    group.bench_function("encode", |b| {
        b.iter(|| black_box(mvtee::messages::encode(&msg).expect("encodes")))
    });
    let bytes = mvtee::messages::encode(&msg).expect("encodes");
    group.bench_function("decode", |b| {
        b.iter(|| {
            black_box(
                mvtee::messages::decode::<mvtee::messages::StageRequest>(&bytes)
                    .expect("decodes"),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_aes_gcm,
    bench_checkpoint_verification,
    bench_payload_serialization
);
criterion_main!(benches);
