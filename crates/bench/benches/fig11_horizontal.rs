//! Fig 11 benchmarks: horizontal variant scaling — the cost of measuring
//! and composing 1/3/5-variant MVX configurations on the selective
//! partition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvtee::config::MvxConfig;
use mvtee_bench::costs::measure;
use mvtee_bench::sim::{simulate, Composition, SyncMode};
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use std::collections::HashMap;
use std::hint::black_box;

fn bench_horizontal_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11/horizontal");
    group.sample_size(10);
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 1).expect("builds");
    for variants in [1usize, 3, 5] {
        let cfg = MvxConfig::selective(5, &[2], variants);
        let measured = measure(&model, &cfg, &HashMap::new());
        group.bench_with_input(
            BenchmarkId::new("pipelined_composition", variants),
            &measured,
            |b, m| {
                b.iter(|| {
                    black_box(simulate(m, 32, Composition::Pipelined, SyncMode::Sync, 0.05, 1))
                })
            },
        );
    }
    group.finish();
}

fn bench_variant_replication_cost(c: &mut Criterion) {
    // The real monitor-side cost of dispatching to N variants: sealing the
    // same checkpoint payload N times.
    let mut group = c.benchmark_group("fig11/monitor_dispatch");
    group.sample_size(20);
    let cipher = mvtee_crypto::gcm::AesGcm::new_256(&[1u8; 32]);
    let payload = vec![0x5au8; 64 * 1024];
    for variants in [1usize, 3, 5] {
        group.bench_with_input(BenchmarkId::new("seal_n", variants), &variants, |b, &n| {
            b.iter(|| {
                for i in 0..n {
                    let mut nonce = [0u8; 12];
                    nonce[0] = i as u8;
                    black_box(cipher.seal(&nonce, &payload, b"aad"));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_horizontal_scaling, bench_variant_replication_cost);
criterion_main!(benches);
