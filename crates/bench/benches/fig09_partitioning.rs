//! Fig 9 micro-benchmarks: the random-balanced partitioner and the
//! per-stage inference costs that drive the partitioning experiment.
//!
//! The paper-style table itself is produced by
//! `cargo run -p mvtee-bench --bin experiments -- fig9`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_partition::Partitioner;
use mvtee_runtime::{Engine, EngineConfig, EngineKind};
use mvtee_tensor::Tensor;
use std::hint::black_box;

fn bench_random_contraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9/random_contraction");
    group.sample_size(10);
    for kind in [ModelKind::ResNet50, ModelKind::GoogleNet, ModelKind::MnasNet] {
        let model = zoo::build(kind, ScaleProfile::Test, 1).expect("builds");
        for target in [2usize, 5, 8] {
            group.bench_with_input(
                BenchmarkId::new(kind.display_name().to_string(), target),
                &target,
                |b, &t| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        black_box(
                            Partitioner::new(t).partition(&model.graph, seed).expect("partitions"),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_stagewise_vs_whole(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9/inference");
    group.sample_size(10);
    let model = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 1).expect("builds");
    let input = Tensor::ones(model.input_shape.dims());
    let engine = Engine::new(EngineConfig::of_kind(EngineKind::OrtLike));

    let whole = engine.prepare(&model.graph).expect("prepares");
    group.bench_function("whole_model", |b| {
        b.iter(|| black_box(whole.run(std::slice::from_ref(&input)).expect("runs")))
    });

    let set = Partitioner::new(5).partition_best_of(&model.graph, 1, 3).expect("partitions");
    let subgraphs = set.extract_subgraphs(&model.graph).expect("extracts");
    let stages: Vec<_> =
        subgraphs.iter().map(|g| engine.prepare(g).expect("prepares")).collect();
    group.bench_function("5_partition_chain", |b| {
        b.iter(|| {
            let mut env = std::collections::HashMap::new();
            env.insert(model.graph.inputs()[0], input.clone());
            for (plan, stage) in set.stages.iter().zip(stages.iter()) {
                let ins: Vec<Tensor> = plan.inputs.iter().map(|v| env[v].clone()).collect();
                let outs = stage.run(&ins).expect("runs");
                for (v, t) in plan.outputs.iter().zip(outs) {
                    env.insert(*v, t);
                }
            }
            black_box(env)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_random_contraction, bench_stagewise_vs_whole);
criterion_main!(benches);
