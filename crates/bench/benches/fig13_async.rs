//! Fig 13 benchmarks: synchronous vs asynchronous cross-validation with a
//! lagging complex-schedule TVM variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvtee::config::{ExecMode, MvxConfig};
use mvtee::prelude::*;
use mvtee_bench::costs::{measure, model_input};
use mvtee_bench::sim::{simulate, Composition, SyncMode};
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_runtime::EngineConfig;
use std::collections::HashMap;
use std::hint::black_box;

fn lagging_measured(model: &mvtee_graph::zoo::Model) -> mvtee_bench::costs::MeasuredConfig {
    let cfg = MvxConfig::selective_diversified(5, &[1, 2], 3);
    let mut overrides = HashMap::new();
    overrides.insert((1usize, 2usize), EngineConfig::tvm_complex());
    overrides.insert((2usize, 2usize), EngineConfig::tvm_complex());
    measure(model, &cfg, &overrides)
}

fn bench_sync_vs_async_composition(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13/composition");
    group.sample_size(20);
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 1).expect("builds");
    let measured = lagging_measured(&model);
    for (label, mode) in
        [("sync", SyncMode::Sync), ("async", SyncMode::AsyncCrossValidation)]
    {
        group.bench_with_input(BenchmarkId::new("sequential", label), &mode, |b, &m| {
            b.iter(|| black_box(simulate(&measured, 32, Composition::Sequential, m, 0.05, 1)))
        });
        group.bench_with_input(BenchmarkId::new("pipelined", label), &mode, |b, &m| {
            b.iter(|| black_box(simulate(&measured, 32, Composition::Pipelined, m, 0.05, 1)))
        });
    }
    group.finish();
}

fn bench_real_async_deployment(c: &mut Criterion) {
    // Real threaded system: sequential inference with a lagging variant,
    // sync vs async cross-validation.
    let mut group = c.benchmark_group("fig13/real_sequential");
    group.sample_size(10);
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 1).expect("builds");
    let input = model_input(&model);
    for (label, mode) in
        [("sync", ExecMode::Sync), ("async", ExecMode::AsyncCrossValidation)]
    {
        let mut d = Deployment::builder(model.clone())
            .partitions(3)
            .mvx_on_partition(1, 3)
            .slow_tvm_on(1)
            .exec_mode(mode)
            .voting(VotingPolicy::Majority)
            .build()
            .expect("deploys");
        group.bench_function(BenchmarkId::new("infer", label), |b| {
            b.iter(|| black_box(d.infer(&input).expect("infers")))
        });
        d.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_sync_vs_async_composition, bench_real_async_deployment);
criterion_main!(benches);
