//! Fig 14 benchmarks: the real-setup configuration — diversified ORT/TVM
//! variants with multi-level diversification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvtee_diversify::spec::spread_specs;
use mvtee_diversify::VariantGenerator;
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_partition::Partitioner;
use mvtee_runtime::Engine;
use mvtee_tensor::Tensor;
use std::hint::black_box;

fn bench_variant_materialisation(c: &mut Criterion) {
    // The offline tool's hot loop: transform + prepare one diversified
    // variant per spec family.
    let mut group = c.benchmark_group("fig14/materialise_variant");
    group.sample_size(10);
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 1).expect("builds");
    let set = Partitioner::new(5).partition_best_of(&model.graph, 1, 3).expect("partitions");
    let subgraphs = set.extract_subgraphs(&model.graph).expect("extracts");
    let generator = VariantGenerator::new(1);
    let specs = spread_specs(3, 1);
    for (i, spec) in specs.iter().enumerate() {
        group.bench_with_input(BenchmarkId::new("spec", i), spec, |b, s| {
            b.iter(|| black_box(generator.materialize(&subgraphs[2], 2, s).expect("materialises")))
        });
    }
    group.finish();
}

fn bench_diversified_variant_inference(c: &mut Criterion) {
    // Per-variant inference cost across the diversified panel of the
    // real-setup experiment (the spread of these times is what async
    // cross-validation exploits).
    let mut group = c.benchmark_group("fig14/variant_inference");
    group.sample_size(10);
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 1).expect("builds");
    let set = Partitioner::new(5).partition_best_of(&model.graph, 1, 3).expect("partitions");
    let subgraphs = set.extract_subgraphs(&model.graph).expect("extracts");
    let generator = VariantGenerator::new(1);

    // Boundary input for partition 2 via the reference chain.
    let engine = Engine::new(mvtee_runtime::EngineConfig::of_kind(
        mvtee_runtime::EngineKind::OrtLike,
    ));
    let mut env = std::collections::HashMap::new();
    env.insert(model.graph.inputs()[0], Tensor::ones(model.input_shape.dims()));
    for (plan, sub) in set.stages.iter().zip(subgraphs.iter()).take(2) {
        let ins: Vec<Tensor> = plan.inputs.iter().map(|v| env[v].clone()).collect();
        let outs = engine.prepare(sub).expect("prepares").run(&ins).expect("runs");
        for (v, t) in plan.outputs.iter().zip(outs) {
            env.insert(*v, t);
        }
    }
    let stage_inputs: Vec<Tensor> =
        set.stages[2].inputs.iter().map(|v| env[v].clone()).collect();

    for (i, spec) in spread_specs(3, 1).iter().enumerate() {
        let bundle = generator.materialize(&subgraphs[2], 2, spec).expect("materialises");
        let prepared = Engine::new(spec.engine.clone()).prepare(&bundle.graph).expect("prepares");
        group.bench_function(BenchmarkId::new("variant", i), |b| {
            b.iter(|| black_box(prepared.run(&stage_inputs).expect("runs")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variant_materialisation, bench_diversified_variant_inference);
criterion_main!(benches);
