//! Fig 12 benchmarks: vertical variant scaling — cost of MVX on 1, 3 or
//! all 5 partitions (3 variants each), end to end through the real
//! deployment in sequential mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvtee::config::MvxConfig;
use mvtee::prelude::*;
use mvtee_bench::costs::{measure, model_input};
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use std::collections::HashMap;
use std::hint::black_box;

fn bench_vertical_measurement(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12/measure_config");
    group.sample_size(10);
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 1).expect("builds");
    let configs: [(&str, Vec<usize>); 3] =
        [("1mvx", vec![2]), ("3mvx", vec![2, 3, 4]), ("5mvx", vec![0, 1, 2, 3, 4])];
    for (label, parts) in configs {
        let cfg = MvxConfig::selective(5, &parts, 3);
        group.bench_with_input(BenchmarkId::new("measure", label), &cfg, |b, cfg| {
            b.iter(|| black_box(measure(&model, cfg, &HashMap::new())))
        });
    }
    group.finish();
}

fn bench_real_sequential_inference(c: &mut Criterion) {
    // The genuine threaded system, sequential mode (valid on any core
    // count): fast path vs 1-MVX vs 3-MVX.
    let mut group = c.benchmark_group("fig12/real_sequential");
    group.sample_size(10);
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 1).expect("builds");
    let input = model_input(&model);
    let configs: [(&str, Vec<usize>); 3] = [("0mvx", vec![]), ("1mvx", vec![1]), ("3mvx", vec![0, 1, 2])];
    for (label, parts) in configs {
        let mut d = Deployment::builder(model.clone())
            .partitions(3)
            .config({
                let mut cfg = MvxConfig::selective(3, &parts, 3);
                cfg.partition_seed = 0x5eed;
                cfg
            })
            .build()
            .expect("deploys");
        group.bench_function(BenchmarkId::new("infer", label), |b| {
            b.iter(|| black_box(d.infer(&input).expect("infers")))
        });
        d.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_vertical_measurement, bench_real_sequential_inference);
criterion_main!(benches);
