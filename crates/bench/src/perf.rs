//! The `perf` sweep: runtime latency under deterministic intra-op
//! parallelism and per-shape kernel autotuning.
//!
//! Sweeps zoo model × engine family × `intra_op_threads ∈ {1,2,4,8}`, then
//! the first model across every [`KernelStrategy`] (the autotuned `Auto`
//! table plus the three pinned kernels), plus one large standalone GEMM
//! workload in both its blocked-BLAS and SIMD-microkernel forms, measuring
//! p50/p95 wall-clock latency and the speedup versus the single-thread
//! baseline (strategies additionally report speedup versus the pinned
//! `scalar` kernel). The part CI gates on: every same-config run must be
//! **byte-identical** across thread counts *and* across repeated runs with
//! a fresh engine. The sweep also snapshots the strategy table's per-shape
//! selections so `BENCH_runtime.json` records which kernel the autotuner
//! picked for each shape class.
//!
//! Timings here are manual [`Instant`]-based sampling (the vendored
//! criterion is a stub): each configuration runs a few warm-up inferences
//! and then `iterations` timed ones; quantiles are read from the sorted
//! sample vector. On single-core CI hosts the speedup column will hover
//! near (or below) 1× — the bitwise-equality gate is the invariant, the
//! latency numbers are the recorded trajectory.

use crate::costs::model_input;
use crate::table::Table;
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_runtime::{
    session_cache, simd, Engine, EngineConfig, EngineKind, KernelStrategy, RuntimeConfig,
    StrategyEntry, ThreadPool,
};
use mvtee_tensor::Tensor;
use std::time::Instant;

/// Zoo-model seed shared by every perf case (fixed so weights — and
/// therefore outputs — are reproducible across runs and thread counts).
const PERF_SEED: u64 = 42;

/// Sweep configuration.
pub struct PerfSettings {
    /// Models to sweep.
    pub models: Vec<ModelKind>,
    /// Zoo scale profile.
    pub scale: ScaleProfile,
    /// Thread counts to sweep; the first entry is the speedup baseline.
    pub threads: Vec<usize>,
    /// Timed inferences per configuration.
    pub iterations: usize,
    /// Untimed warm-up inferences per configuration.
    pub warmup: usize,
    /// Square dimension of the standalone GEMM workload.
    pub gemm_dim: usize,
}

impl PerfSettings {
    /// CI smoke configuration: smallest zoo model, threads {1, 4}.
    pub fn quick() -> Self {
        PerfSettings {
            models: vec![ModelKind::MnasNet],
            scale: ScaleProfile::Test,
            threads: vec![1, 4],
            iterations: 5,
            warmup: 1,
            gemm_dim: 96,
        }
    }

    /// Full sweep: threads {1, 2, 4, 8} over a small and a large model.
    pub fn full() -> Self {
        PerfSettings {
            models: vec![ModelKind::MnasNet, ModelKind::ResNet50],
            scale: ScaleProfile::Bench,
            threads: vec![1, 2, 4, 8],
            iterations: 9,
            warmup: 2,
            gemm_dim: 256,
        }
    }
}

/// One measured (model, family, threads) point.
pub struct PerfCase {
    /// Model display name (or `"gemm <dim>"` for the standalone workload).
    pub workload: String,
    /// Engine family descriptor.
    pub family: String,
    /// Intra-op thread count.
    pub threads: usize,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// p50 speedup versus this workload's first-thread-count baseline.
    pub speedup: f64,
    /// Whether the output matched the baseline byte-for-byte.
    pub bitwise_match: bool,
}

/// Everything the sweep produced.
pub struct PerfReport {
    /// The zoo-model seed of the sweep (`PERF_SEED`).
    pub seed: u64,
    /// Run-configuration fingerprint (models, scale, thread counts).
    pub fingerprint: String,
    /// Thread counts swept.
    pub threads: Vec<usize>,
    /// Measured points, in sweep order.
    pub cases: Vec<PerfCase>,
    /// Human-readable descriptions of every bitwise mismatch (empty on a
    /// healthy runtime; CI fails when non-empty).
    pub mismatches: Vec<String>,
    /// `runtime.cache.pack_hits` delta over the sweep.
    pub pack_hits: u64,
    /// `runtime.cache.pack_misses` delta over the sweep.
    pub pack_misses: u64,
    /// `runtime.cache.arena_bytes_reused` delta over the sweep.
    pub arena_bytes_reused: u64,
    /// Per-shape-class kernel selections of the autotuned (`Auto`)
    /// configuration's strategy table after the sweep.
    pub strategy_table: Vec<StrategyEntry>,
    /// `(strategy token, p50 speedup vs the pinned scalar kernel)` at the
    /// baseline thread count, for the strategy-swept model.
    pub strategy_speedups: Vec<(String, f64)>,
    /// `runtime.cache.strategy_table.hits` delta over the sweep.
    pub strategy_hits: u64,
    /// `runtime.cache.strategy_table.misses` delta over the sweep.
    pub strategy_misses: u64,
    /// `runtime.cache.strategy_table.calibrations` delta over the sweep.
    pub strategy_calibrations: u64,
}

impl PerfReport {
    /// Any cross-thread-count output mismatch?
    pub fn has_mismatch(&self) -> bool {
        !self.mismatches.is_empty()
    }

    /// Renders the sweep as an aligned text table.
    pub fn render_text(&self) -> String {
        let mut t = Table::new(
            "Runtime perf sweep: deterministic intra-op parallelism",
            &["workload", "engine", "threads", "p50 µs", "p95 µs", "speedup", "bitwise"],
        );
        for c in &self.cases {
            t.row(vec![
                c.workload.clone(),
                c.family.clone(),
                c.threads.to_string(),
                format!("{:.1}", c.p50_us),
                format!("{:.1}", c.p95_us),
                format!("{:.2}x", c.speedup),
                if c.bitwise_match { "ok".into() } else { "MISMATCH".into() },
            ]);
        }
        let mut s = t.render();
        s.push_str(&format!(
            "\npack cache: {} hits / {} misses; arena bytes reused: {}\n",
            self.pack_hits, self.pack_misses, self.arena_bytes_reused
        ));
        s.push_str(&format!(
            "strategy table: {} hits / {} misses / {} calibrations\n",
            self.strategy_hits, self.strategy_misses, self.strategy_calibrations
        ));
        for e in &self.strategy_table {
            s.push_str(&format!(
                "  select {} [{}] -> {} ({} cost units)\n",
                e.op, e.class, e.choice, e.cost_units
            ));
        }
        for (token, speedup) in &self.strategy_speedups {
            s.push_str(&format!("  strategy {token}: {speedup:.2}x vs scalar\n"));
        }
        for m in &self.mismatches {
            s.push_str(&format!("MISMATCH: {m}\n"));
        }
        s
    }

    /// Renders the machine-readable report (`BENCH_runtime.json`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"mvtee-bench-runtime-v1\",\n");
        out.push_str(&crate::meta_json_line(
            "mvtee-bench-runtime-v1",
            self.seed,
            &self.fingerprint,
        ));
        out.push_str(&format!(
            "  \"threads\": [{}],\n",
            self.threads.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
        ));
        out.push_str("  \"cases\": [\n");
        for (i, c) in self.cases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"family\": \"{}\", \"threads\": {}, \
                 \"p50_us\": {:.2}, \"p95_us\": {:.2}, \"speedup_vs_t1\": {:.4}, \
                 \"bitwise_match\": {}}}{}\n",
                c.workload,
                c.family,
                c.threads,
                c.p50_us,
                c.p95_us,
                c.speedup,
                c.bitwise_match,
                if i + 1 == self.cases.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"pack_cache\": {{\"hits\": {}, \"misses\": {}}},\n",
            self.pack_hits, self.pack_misses
        ));
        out.push_str(&format!("  \"arena_bytes_reused\": {},\n", self.arena_bytes_reused));
        out.push_str("  \"strategy\": {\n    \"selection\": [\n");
        for (i, e) in self.strategy_table.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"op\": \"{}\", \"class\": \"{}\", \"choice\": \"{}\", \
                 \"cost_units\": {}}}{}\n",
                e.op,
                e.class,
                e.choice,
                e.cost_units,
                if i + 1 == self.strategy_table.len() { "" } else { "," }
            ));
        }
        out.push_str("    ],\n    \"speedups_vs_scalar\": {");
        for (i, (token, speedup)) in self.strategy_speedups.iter().enumerate() {
            out.push_str(&format!(
                "{}\"{token}\": {speedup:.4}",
                if i == 0 { "" } else { ", " }
            ));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "    \"counters\": {{\"hits\": {}, \"misses\": {}, \"calibrations\": {}}}\n  }},\n",
            self.strategy_hits, self.strategy_misses, self.strategy_calibrations
        ));
        out.push_str(&format!("  \"mismatch_count\": {}\n}}\n", self.mismatches.len()));
        out
    }
}

/// Sorted-sample quantile (nearest-rank), microseconds.
fn quantile_us(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Times `iterations` calls of `f` (after `warmup` untimed ones),
/// returning (p50 µs, p95 µs) plus the last produced value.
fn sample<T>(warmup: usize, iterations: usize, mut f: impl FnMut() -> T) -> (f64, f64, T) {
    for _ in 0..warmup {
        f();
    }
    let mut samples = Vec::with_capacity(iterations);
    let mut last = None;
    for _ in 0..iterations.max(1) {
        let t0 = Instant::now();
        let v = f();
        samples.push(t0.elapsed().as_secs_f64() * 1e6);
        last = Some(v);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    (quantile_us(&samples, 0.5), quantile_us(&samples, 0.95), last.expect("iterations >= 1"))
}

/// Bitwise tensor comparison; returns the first differing flat index.
fn first_bit_diff(a: &Tensor, b: &Tensor) -> Option<usize> {
    if a.dims() != b.dims() {
        return Some(0);
    }
    a.data()
        .iter()
        .zip(b.data().iter())
        .position(|(x, y)| x.to_bits() != y.to_bits())
}

/// Runs the sweep.
///
/// Every (model, family) pair runs at each configured thread count; the
/// first thread count is the latency baseline **and** the bitwise
/// reference output. Each prepared model also runs twice in a row, so on
/// a healthy cache the pack-hit counter is strictly positive afterwards.
pub fn run_perf(s: &PerfSettings) -> PerfReport {
    mvtee_runtime::register_runtime_metrics();
    let pack_hits0 = mvtee_telemetry::counter("runtime.cache.pack_hits").get();
    let pack_misses0 = mvtee_telemetry::counter("runtime.cache.pack_misses").get();
    let arena0 = mvtee_telemetry::counter("runtime.cache.arena_bytes_reused").get();
    let strat_hits0 = mvtee_telemetry::counter("runtime.cache.strategy_table.hits").get();
    let strat_misses0 = mvtee_telemetry::counter("runtime.cache.strategy_table.misses").get();
    let strat_cal0 = mvtee_telemetry::counter("runtime.cache.strategy_table.calibrations").get();

    let mut cases = Vec::new();
    let mut mismatches = Vec::new();
    let families = [
        EngineConfig::of_kind(EngineKind::Reference),
        EngineConfig::of_kind(EngineKind::OrtLike),
        EngineConfig::of_kind(EngineKind::TvmLike),
    ];

    for &kind in &s.models {
        let model = zoo::build(kind, s.scale, PERF_SEED).expect("zoo model builds");
        let input = model_input(&model);
        for family in &families {
            let mut baseline_p50 = 0.0f64;
            let mut baseline_out: Option<Tensor> = None;
            for (ti, &threads) in s.threads.iter().enumerate() {
                let engine = Engine::new(family.clone().with_threads(threads));
                let prepared = engine.prepare(&model.graph).expect("prepare succeeds");
                let run = || {
                    prepared
                        .run(std::slice::from_ref(&input))
                        .expect("inference succeeds")
                        .remove(0)
                };
                let (p50, p95, out) = sample(s.warmup, s.iterations, run);
                let bitwise_match = match &baseline_out {
                    None => true,
                    Some(reference) => match first_bit_diff(reference, &out) {
                        None => true,
                        Some(idx) => {
                            mismatches.push(format!(
                                "{} × {} diverges at flat index {idx} between threads={} and threads={threads}",
                                kind.display_name(),
                                family.describe(),
                                s.threads[0],
                            ));
                            false
                        }
                    },
                };
                if ti == 0 {
                    baseline_p50 = p50;
                    baseline_out = Some(out);
                }
                cases.push(PerfCase {
                    workload: kind.display_name().to_string(),
                    family: family.kind.to_string(),
                    threads,
                    p50_us: p50,
                    p95_us: p95,
                    speedup: if p50 > 0.0 { baseline_p50 / p50 } else { 1.0 },
                    bitwise_match,
                });
            }
        }
    }

    // Kernel-strategy sweep over the first model: each strategy (autotuned
    // plus the three pinned kernels) runs at every thread count under the
    // ORT-like family. Two determinism gates per strategy: every thread
    // count must reproduce the baseline bytes, and a *fresh* engine at the
    // baseline thread count must reproduce them again (cross-run replay).
    let mut strategy_speedups: Vec<(String, f64)> = Vec::new();
    if let Some(&kind) = s.models.first() {
        let model = zoo::build(kind, s.scale, PERF_SEED).expect("zoo model builds");
        let input = model_input(&model);
        let mut raw_p50s: Vec<(String, f64)> = Vec::new();
        let mut scalar_p50 = 0.0f64;
        for &ks in &KernelStrategy::ALL {
            let family = EngineConfig::of_kind(EngineKind::OrtLike).with_kernel_strategy(ks);
            let label = format!("ort-like/mk-{}", ks.token());
            let mut baseline_p50 = 0.0f64;
            let mut baseline_out: Option<Tensor> = None;
            for (ti, &threads) in s.threads.iter().enumerate() {
                let engine = Engine::new(family.clone().with_threads(threads));
                let prepared = engine.prepare(&model.graph).expect("prepare succeeds");
                let run = || {
                    prepared
                        .run(std::slice::from_ref(&input))
                        .expect("inference succeeds")
                        .remove(0)
                };
                let (p50, p95, out) = sample(s.warmup, s.iterations, run);
                let bitwise_match = match &baseline_out {
                    None => true,
                    Some(reference) => match first_bit_diff(reference, &out) {
                        None => true,
                        Some(idx) => {
                            mismatches.push(format!(
                                "{} × {label} diverges at flat index {idx} between threads={} and threads={threads}",
                                kind.display_name(),
                                s.threads[0],
                            ));
                            false
                        }
                    },
                };
                if ti == 0 {
                    baseline_p50 = p50;
                    // Cross-run gate: a brand-new engine on the same
                    // config must replay the strategy table and reproduce
                    // the output byte-for-byte.
                    let fresh = Engine::new(family.clone().with_threads(threads))
                        .prepare(&model.graph)
                        .expect("prepare succeeds");
                    let rerun = fresh
                        .run(std::slice::from_ref(&input))
                        .expect("inference succeeds")
                        .remove(0);
                    if let Some(idx) = first_bit_diff(&out, &rerun) {
                        mismatches.push(format!(
                            "{} × {label} diverges at flat index {idx} across repeated runs at threads={threads}",
                            kind.display_name(),
                        ));
                    }
                    baseline_out = Some(out);
                }
                cases.push(PerfCase {
                    workload: kind.display_name().to_string(),
                    family: label.clone(),
                    threads,
                    p50_us: p50,
                    p95_us: p95,
                    speedup: if p50 > 0.0 { baseline_p50 / p50 } else { 1.0 },
                    bitwise_match,
                });
            }
            if ks == KernelStrategy::Scalar {
                scalar_p50 = baseline_p50;
            }
            raw_p50s.push((ks.token().to_string(), baseline_p50));
        }
        for (token, p50) in raw_p50s {
            let speedup = if p50 > 0.0 && scalar_p50 > 0.0 { scalar_p50 / p50 } else { 1.0 };
            strategy_speedups.push((token, speedup));
        }
    }

    // Standalone GEMM workload: the largest dense kernel, exercised
    // directly through the pool's row-panel split.
    let dim = s.gemm_dim;
    let a: Vec<f32> = (0..dim * dim).map(|i| ((i % 131) as f32 - 65.0) / 65.0).collect();
    let b: Vec<f32> = (0..dim * dim).map(|i| ((i % 113) as f32 - 56.0) / 56.0).collect();
    let blas = mvtee_runtime::BlasKind::Blocked.instantiate();
    let mut baseline_p50 = 0.0f64;
    let mut baseline_out: Option<Vec<f32>> = None;
    for (ti, &threads) in s.threads.iter().enumerate() {
        let pool = ThreadPool::new(RuntimeConfig::with_threads(threads));
        let run = || {
            let mut c = vec![0.0f32; dim * dim];
            pool.par_gemm(blas.as_ref(), dim, dim, dim, &a, &b, &mut c);
            c
        };
        let (p50, p95, out) = sample(s.warmup, s.iterations, run);
        let bitwise_match = match &baseline_out {
            None => true,
            Some(reference) => {
                let diff = reference
                    .iter()
                    .zip(out.iter())
                    .position(|(x, y)| x.to_bits() != y.to_bits());
                if let Some(idx) = diff {
                    mismatches.push(format!(
                        "gemm {dim} diverges at flat index {idx} between threads={} and threads={threads}",
                        s.threads[0],
                    ));
                    false
                } else {
                    true
                }
            }
        };
        if ti == 0 {
            baseline_p50 = p50;
            baseline_out = Some(out);
        }
        cases.push(PerfCase {
            workload: format!("gemm {dim}"),
            family: "blocked-blas".into(),
            threads,
            p50_us: p50,
            p95_us: p95,
            speedup: if p50 > 0.0 { baseline_p50 / p50 } else { 1.0 },
            bitwise_match,
        });
    }

    // The same GEMM shape class through the SIMD microkernel (operand
    // pre-transposed, the layout the 8-lane inner loop consumes). Its
    // `speedup` column is versus the single-thread blocked-BLAS baseline
    // above — the measured microkernel win on this shape class. The
    // bitwise gate here is cross-run: two invocations must agree exactly
    // (blocked BLAS accumulates in a different order, so cross-kernel
    // comparison is a tolerance question handled by the differential
    // tests, not a byte gate).
    {
        let mut bt = vec![0.0f32; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                bt[j * dim + i] = b[i * dim + j];
            }
        }
        let run = || {
            let mut c = vec![0.0f32; dim * dim];
            simd::gemm_bt(dim, dim, dim, &a, &bt, &mut c);
            c
        };
        let (p50, p95, out) = sample(s.warmup, s.iterations, run);
        let mut c2 = vec![0.0f32; dim * dim];
        simd::gemm_bt(dim, dim, dim, &a, &bt, &mut c2);
        let bitwise_match =
            match out.iter().zip(c2.iter()).position(|(x, y)| x.to_bits() != y.to_bits()) {
                Some(idx) => {
                    mismatches.push(format!(
                        "gemm-simd {dim} diverges at flat index {idx} across repeated runs"
                    ));
                    false
                }
                None => true,
            };
        cases.push(PerfCase {
            workload: format!("gemm {dim}"),
            family: "simd-microkernel".into(),
            threads: 1,
            p50_us: p50,
            p95_us: p95,
            speedup: if p50 > 0.0 { baseline_p50 / p50 } else { 1.0 },
            bitwise_match,
        });
    }

    // Snapshot the autotuned configuration's per-shape selections — the
    // table the `Auto` sweep legs populated (calibrated once, then replayed
    // from the session cache by every later engine on the same config).
    let strategy_table =
        session_cache().strategy_table(&EngineConfig::of_kind(EngineKind::OrtLike)).entries();

    PerfReport {
        seed: PERF_SEED,
        fingerprint: format!(
            "models={:?};scale={:?};threads={:?};gemm={}",
            s.models, s.scale, s.threads, s.gemm_dim
        ),
        threads: s.threads.clone(),
        cases,
        mismatches,
        pack_hits: mvtee_telemetry::counter("runtime.cache.pack_hits").get() - pack_hits0,
        pack_misses: mvtee_telemetry::counter("runtime.cache.pack_misses").get() - pack_misses0,
        arena_bytes_reused: mvtee_telemetry::counter("runtime.cache.arena_bytes_reused").get()
            - arena0,
        strategy_table,
        strategy_speedups,
        strategy_hits: mvtee_telemetry::counter("runtime.cache.strategy_table.hits").get()
            - strat_hits0,
        strategy_misses: mvtee_telemetry::counter("runtime.cache.strategy_table.misses").get()
            - strat_misses0,
        strategy_calibrations: mvtee_telemetry::counter("runtime.cache.strategy_table.calibrations")
            .get()
            - strat_cal0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_has_no_mismatches_and_hits_pack_cache() {
        let report = run_perf(&PerfSettings::quick());
        assert!(!report.has_mismatch(), "mismatches: {:?}", report.mismatches);
        // The pinned panel-packed strategy legs reuse the packed weights
        // on every repetition past the first.
        assert!(report.pack_hits > 0, "expected pack-cache hits on repeat inference");
        // 1 model × 3 families × 2 thread counts
        //   + 4 kernel strategies × 2 thread counts
        //   + gemm × 2 thread counts + 1 simd-microkernel gemm
        assert_eq!(report.cases.len(), 3 * 2 + 4 * 2 + 2 + 1);
        // The Auto legs calibrated and then replayed a per-shape table.
        assert!(!report.strategy_table.is_empty(), "strategy table never populated");
        assert!(report.strategy_hits > 0, "strategy table never replayed");
        assert_eq!(report.strategy_speedups.len(), KernelStrategy::ALL.len());
        assert!(
            report.strategy_speedups.iter().any(|(t, _)| t == "scalar"),
            "scalar baseline missing from speedups"
        );
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let report = run_perf(&PerfSettings {
            models: vec![],
            scale: ScaleProfile::Test,
            threads: vec![1, 2],
            iterations: 2,
            warmup: 0,
            gemm_dim: 24,
        });
        let json = report.render_json();
        assert!(json.contains("\"schema\": \"mvtee-bench-runtime-v1\""));
        assert!(json.contains("\"mismatch_count\": 0"));
        assert!(json.ends_with("}\n"));
    }
}
