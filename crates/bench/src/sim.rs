//! Discrete-event composition of measured costs under the paper's
//! resource model.
//!
//! Resources: per stage, one *coordinator* (serial — it seals inputs,
//! opens outputs, verifies) inside the multithreaded monitor, and one core
//! per variant TEE. Batches flow FIFO. Sequential execution submits a
//! batch only after the previous one fully completes; pipelined execution
//! submits the whole stream at time zero so stages overlap.
//!
//! Sync mode forwards a batch when *all* variant outputs are opened and
//! verified; async cross-validation forwards at majority quorum, with the
//! straggler's open/validate work consuming coordinator time after the
//! forward (Fig 8).
//!
//! Per-batch jitter models run-to-run variation: each service time is
//! multiplied by `1 + U(-j, +j)` from a deterministic RNG.

use crate::costs::{MeasuredConfig, StageCosts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Execution composition mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Composition {
    /// One batch at a time, end to end.
    Sequential,
    /// All batches streamed; stages overlap.
    Pipelined,
}

/// Checkpoint synchronisation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Wait for every variant.
    Sync,
    /// Forward at majority quorum; validate stragglers late.
    AsyncCrossValidation,
}

/// Simulation outcome.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Total wall-clock of the stream (seconds).
    pub makespan: f64,
    /// Throughput in batches/second.
    pub throughput: f64,
    /// Mean per-batch latency (sequential: submission→completion;
    /// pipelined: mean completion interval, the paper's streaming-latency
    /// semantics).
    pub latency: f64,
}

/// Simulates `batches` through the measured stages.
///
/// # Panics
///
/// Panics if `measured.stages` is empty.
pub fn simulate(
    measured: &MeasuredConfig,
    batches: usize,
    composition: Composition,
    sync: SyncMode,
    jitter: f64,
    seed: u64,
) -> SimResult {
    assert!(!measured.stages.is_empty(), "at least one stage required");
    let mut rng = StdRng::seed_from_u64(seed);
    let stages = &measured.stages;
    let n_stages = stages.len();

    // Resource next-free times.
    let mut coord_free = vec![0.0f64; n_stages];
    let mut variant_free: Vec<Vec<f64>> =
        stages.iter().map(|s| vec![0.0; s.variant_compute.len()]).collect();

    let mut completions = Vec::with_capacity(batches);
    let mut prev_completion = 0.0f64;

    for _b in 0..batches {
        let submit = match composition {
            Composition::Sequential => prev_completion,
            Composition::Pipelined => 0.0,
        };
        let mut arrive = submit;
        for (i, stage) in stages.iter().enumerate() {
            arrive = simulate_stage(
                stage,
                arrive,
                &mut coord_free[i],
                &mut variant_free[i],
                sync,
                jitter,
                &mut rng,
            );
        }
        completions.push((submit, arrive));
        prev_completion = arrive;
    }

    let makespan = completions.last().map(|&(_, c)| c).unwrap_or(0.0);
    let throughput = if makespan > 0.0 { batches as f64 / makespan } else { 0.0 };
    let latency = match composition {
        Composition::Sequential => {
            completions.iter().map(|&(s, c)| c - s).sum::<f64>() / batches.max(1) as f64
        }
        Composition::Pipelined => {
            // Mean completion interval (streaming latency).
            if throughput > 0.0 {
                1.0 / throughput
            } else {
                0.0
            }
        }
    };
    SimResult { makespan, throughput, latency }
}

fn jittered(mean: f64, jitter: f64, rng: &mut StdRng) -> f64 {
    if jitter <= 0.0 || mean <= 0.0 {
        return mean;
    }
    mean * (1.0 + rng.gen_range(-jitter..jitter))
}

/// Advances one batch through one stage; returns its forward time.
fn simulate_stage(
    stage: &StageCosts,
    arrive: f64,
    coord_free: &mut f64,
    variant_free: &mut [f64],
    sync: SyncMode,
    jitter: f64,
    rng: &mut StdRng,
) -> f64 {
    let n = stage.variant_compute.len();
    // Coordinator seals and dispatches the input to each variant serially.
    let start = arrive.max(*coord_free);
    let mut dispatch = Vec::with_capacity(n);
    let mut t = start;
    for _ in 0..n {
        t += jittered(stage.monitor_seal_in, jitter, rng);
        dispatch.push(t);
    }
    // Variants compute in parallel (one core each).
    let mut outputs: Vec<f64> = (0..n)
        .map(|v| {
            let begin = dispatch[v].max(variant_free[v]);
            let service = jittered(
                stage.variant_crypto + stage.variant_compute[v],
                jitter,
                rng,
            );
            let done = begin + service;
            variant_free[v] = done;
            done
        })
        .collect();
    outputs.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));

    // Coordinator opens outputs in arrival order.
    let quorum = n / 2 + 1;
    let (wait_until, late_count) = match sync {
        SyncMode::Sync => (n, 0),
        SyncMode::AsyncCrossValidation if stage.slow && n > 1 => (quorum, n - quorum),
        SyncMode::AsyncCrossValidation => (n, 0),
    };
    let mut c = t;
    for &out in outputs.iter().take(wait_until) {
        c = c.max(out) + jittered(stage.monitor_open_out, jitter, rng);
    }
    if stage.slow {
        c += jittered(stage.verify, jitter, rng);
    }
    let forward = c;
    // Straggler handling consumes coordinator time after the forward.
    let mut busy_until = forward;
    for &out in outputs.iter().skip(wait_until).take(late_count) {
        busy_until = busy_until.max(out) + jittered(stage.monitor_open_out, jitter, rng);
    }
    *coord_free = busy_until;
    forward
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::StageCosts;
    use mvtee_partition::PartitionSet;

    fn fake_stage(computes: Vec<f64>, slow: bool) -> StageCosts {
        StageCosts {
            partition: 0,
            raw_seal_in: 0.001,
            raw_open_out: 0.001,
            raw_variant_crypto: 0.001,
            raw_verify: if slow { 0.002 } else { 0.0 },
            variant_compute: computes,
            monitor_seal_in: 0.001,
            monitor_open_out: 0.001,
            variant_crypto: 0.001,
            verify: if slow { 0.002 } else { 0.0 },
            slow,
            payload_in_bytes: 1000,
            payload_out_bytes: 1000,
        }
    }

    fn fake_measured(stages: Vec<StageCosts>) -> MeasuredConfig {
        MeasuredConfig {
            model: "fake".into(),
            baseline: stages.iter().map(|s| s.variant_compute[0]).sum(),
            stages,
            partition_set: PartitionSet { seed: 0, stages: vec![] },
        }
    }

    #[test]
    fn pipelined_beats_sequential_on_balanced_stages() {
        let m = fake_measured(vec![
            fake_stage(vec![0.01], false),
            fake_stage(vec![0.01], false),
            fake_stage(vec![0.01], false),
            fake_stage(vec![0.01], false),
        ]);
        let seq = simulate(&m, 32, Composition::Sequential, SyncMode::Sync, 0.0, 1);
        let pipe = simulate(&m, 32, Composition::Pipelined, SyncMode::Sync, 0.0, 1);
        assert!(
            pipe.throughput > 2.5 * seq.throughput,
            "pipe {} vs seq {}",
            pipe.throughput,
            seq.throughput
        );
        assert!(pipe.latency < seq.latency);
    }

    #[test]
    fn bottleneck_stage_limits_pipeline() {
        let m = fake_measured(vec![
            fake_stage(vec![0.001], false),
            fake_stage(vec![0.02], false), // bottleneck
            fake_stage(vec![0.001], false),
        ]);
        let pipe = simulate(&m, 64, Composition::Pipelined, SyncMode::Sync, 0.0, 1);
        // Steady-state interval ≈ bottleneck service (+ small crypto).
        assert!((pipe.latency - 0.022).abs() < 0.005, "latency {}", pipe.latency);
    }

    #[test]
    fn sync_waits_for_slowest_variant() {
        let fast = fake_measured(vec![fake_stage(vec![0.01, 0.01, 0.01], true)]);
        let lag = fake_measured(vec![fake_stage(vec![0.01, 0.01, 0.05], true)]);
        let f = simulate(&fast, 16, Composition::Sequential, SyncMode::Sync, 0.0, 1);
        let l = simulate(&lag, 16, Composition::Sequential, SyncMode::Sync, 0.0, 1);
        assert!(l.latency > f.latency + 0.03);
    }

    #[test]
    fn async_hides_the_laggard_in_sequential() {
        let lag = fake_measured(vec![
            fake_stage(vec![0.01, 0.01, 0.05], true),
            fake_stage(vec![0.01], false),
        ]);
        let sync = simulate(&lag, 16, Composition::Sequential, SyncMode::Sync, 0.0, 1);
        let asynch = simulate(
            &lag,
            16,
            Composition::Sequential,
            SyncMode::AsyncCrossValidation,
            0.0,
            1,
        );
        assert!(
            asynch.latency < sync.latency * 0.8,
            "async {} vs sync {}",
            asynch.latency,
            sync.latency
        );
        assert!(asynch.throughput > sync.throughput);
    }

    #[test]
    fn async_on_fast_path_changes_nothing() {
        let m = fake_measured(vec![fake_stage(vec![0.01], false)]);
        let a = simulate(&m, 8, Composition::Sequential, SyncMode::AsyncCrossValidation, 0.0, 1);
        let s = simulate(&m, 8, Composition::Sequential, SyncMode::Sync, 0.0, 1);
        assert!((a.latency - s.latency).abs() < 1e-9);
    }

    #[test]
    fn jitter_is_deterministic_by_seed() {
        let m = fake_measured(vec![fake_stage(vec![0.01, 0.012], true)]);
        let a = simulate(&m, 8, Composition::Pipelined, SyncMode::Sync, 0.1, 7);
        let b = simulate(&m, 8, Composition::Pipelined, SyncMode::Sync, 0.1, 7);
        assert_eq!(a.makespan, b.makespan);
        let c = simulate(&m, 8, Composition::Pipelined, SyncMode::Sync, 0.1, 8);
        assert_ne!(a.makespan, c.makespan);
    }

    #[test]
    fn throughput_latency_consistency() {
        let m = fake_measured(vec![fake_stage(vec![0.005], false); 3]);
        let seq = simulate(&m, 10, Composition::Sequential, SyncMode::Sync, 0.0, 1);
        // Sequential: throughput == 1/latency.
        assert!((seq.throughput * seq.latency - 1.0).abs() < 1e-6);
        let pipe = simulate(&m, 100, Composition::Pipelined, SyncMode::Sync, 0.0, 1);
        assert!((pipe.throughput * pipe.latency - 1.0).abs() < 1e-6);
    }
}
