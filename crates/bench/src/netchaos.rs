//! The `netchaos` experiment: adversarial-transport storms.
//!
//! Four phases, all seeded and replayable:
//!
//! * **Wire gauntlet** — a [`SecureChannel`] pair with a seeded
//!   [`FaultyTransport`] between them, per wire-fault class × trials.
//!   Every injected perturbation must surface as an AEAD, sequence, or
//!   transport error — a receiver that *accepts wrong bytes* is an
//!   instant gate failure, and byte corruption specifically must be
//!   rejected by AEAD authentication at 100%.
//! * **Deployment storms** — the real threaded panel with the fault
//!   wrapped around panel variant 0's response wire, per class × seeds.
//!   Every storm must end Detected-or-Healed: corruption and liveness
//!   classes quarantine and re-provision back to full strength; only a
//!   sub-deadline delay may end masked. Outputs are checked bit-for-bit
//!   against a fault-free oracle on every batch, and the rendered audit
//!   transcript must be byte-identical to the oracle's for storms that
//!   never degraded (degraded storms self-audit instead — quarantine
//!   entries make full transcript identity impossible by design).
//! * **Flap probe** — a worker process killed repeatedly until the
//!   crash-loop budget trips: the recovery manager must record
//!   `RecoveryFailed` with a crash-loop reason, stop respawning, and the
//!   panel must keep serving correct outputs degraded.
//! * **Reconnect probe** — an abrupt wire disconnect under heartbeat
//!   supervision with reconnect-and-resume: the same worker process must
//!   redial and rejoin (a reconnect heal, not a respawn heal).
//!
//! Artifact: `BENCH_netchaos.json` — per-class heal-latency p50/p95,
//! injected-vs-detected counts, and the reconnect-vs-respawn split.

use mvtee::config::{MvxConfig, PartitionMvx, RecoveryPolicy, ResponsePolicy, SupervisionPolicy};
use mvtee::transcript::verify_transcript;
use mvtee::{DegradationPolicy, Deployment, MonitorEvent, MvxError};
use mvtee_crypto::channel::{memory_pair, Handshake, Role, SecureChannel};
use mvtee_crypto::CryptoError;
use mvtee_faults::{FaultDirection, FaultyTransport, NetFault, NetFaultClass};
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Partitions in the storm deployments.
const PARTITIONS: usize = 2;
/// The MVX partition carrying the panel (and the faulted wire).
const MVX_PARTITION: usize = 1;
/// Panel size: 2-of-3 keeps voting while one member is out.
const PANEL: usize = 3;
/// Frames pushed through each gauntlet trial.
const GAUNTLET_FRAMES: usize = 6;
/// Distinct inputs cycled through a storm stream.
const INPUT_PERIOD: u64 = 3;
/// Batches a storm must stream before terminal-state classification.
const STORM_MIN_BATCHES: u64 = 6;
/// Hard cap on batches per storm (a heal that has not landed by then is
/// a finding, not a wait).
const STORM_BATCH_CAP: u64 = 40;
/// Checkpoint deadline of the storm deployments, ms.
const STORM_DEADLINE_MS: u64 = 300;
/// Crash-loop budget of the flap probe: the third death inside the
/// window must trip it.
const FLAP_BUDGET: u32 = 2;
/// Monitor-side inbound frame index at which the reconnect probe tears
/// the wire: past the bootstrap exchange, inside the response stream.
const RECONNECT_FROM_FRAME: u64 = 8;

/// Netchaos experiment parameters.
#[derive(Debug, Clone)]
pub struct NetchaosSettings {
    /// Master seed: weights, inputs, schedules derive from it.
    pub seed: u64,
    /// Deployment storms per wire-fault class.
    pub storms_per_class: usize,
    /// Wire-gauntlet trials per class.
    pub gauntlet_trials: usize,
    /// Run the crash-loop flap probe (spawns and kills worker processes).
    pub probe_flap: bool,
    /// Run the reconnect-and-resume probe (spawns a worker process).
    pub probe_reconnect: bool,
    /// Zoo model under test.
    pub model: ModelKind,
    /// Zoo scale.
    pub profile: ScaleProfile,
}

impl NetchaosSettings {
    /// CI smoke configuration.
    pub fn quick(seed: u64) -> Self {
        NetchaosSettings {
            seed,
            storms_per_class: 1,
            gauntlet_trials: 4,
            probe_flap: true,
            probe_reconnect: true,
            model: ModelKind::MnasNet,
            profile: ScaleProfile::Test,
        }
    }

    /// Full configuration: more storms and trials through the same gates.
    pub fn full(seed: u64) -> Self {
        NetchaosSettings { storms_per_class: 3, gauntlet_trials: 16, ..Self::quick(seed) }
    }
}

/// Per-class tallies of the wire gauntlet.
#[derive(Debug, Clone, Default)]
pub struct GauntletRow {
    /// Class token (`delay`, `stall`, …).
    pub class: String,
    /// Trials run.
    pub trials: usize,
    /// Perturbations the wrapper injected across the trials.
    pub injected: u64,
    /// Trials ending in an AEAD authentication failure.
    pub detected_auth: usize,
    /// Trials ending in a sequence mismatch (drop/duplicate exposure).
    pub detected_seq: usize,
    /// Trials ending in a transport error or a short stream.
    pub detected_transport: usize,
    /// Trials where every frame arrived intact and in order.
    pub intact: usize,
    /// Trials where the receiver ACCEPTED wrong bytes (must be zero).
    pub masked_accepts: usize,
}

impl GauntletRow {
    fn detected(&self) -> usize {
        self.detected_auth + self.detected_seq + self.detected_transport
    }
}

/// One deployment storm.
#[derive(Debug, Clone)]
pub struct Storm {
    /// Class token.
    pub class: String,
    /// The replayable fault spec (`net:…`).
    pub spec: String,
    /// Batches streamed.
    pub batches: u64,
    /// Batches whose forwarded output was lost or wrong (must be zero).
    pub lost_batches: u64,
    /// Perturbations injected on the wire during the storm.
    pub injected: u64,
    /// The panel quarantined the faulted member (detection).
    pub detected: bool,
    /// The panel returned to full strength after a quarantine.
    pub healed: bool,
    /// The fault raised no alarm and provably had no effect (delay only).
    pub masked: bool,
    /// Latency from the observed quarantine to full strength, ns.
    pub heal_ns: u64,
    /// Rendered audit transcript byte-identical to the fault-free
    /// oracle's (expected only for storms that never degraded).
    pub transcript_identical: bool,
    /// The storm transcript passed its own Merkle self-audit.
    pub audit_ok: bool,
}

/// What the crash-loop flap probe observed.
#[derive(Debug, Clone, Default)]
pub struct FlapProbe {
    /// Worker kills delivered.
    pub kills: usize,
    /// Respawn heals before the budget tripped.
    pub respawn_heals: usize,
    /// The crash-loop budget tripped.
    pub tripped: bool,
    /// `RecoveryFailed` with a crash-loop reason was recorded.
    pub recovery_failed_logged: bool,
    /// Post-trip batches still served bit-correct on the survivors.
    pub degraded_service_ok: bool,
    /// Infrastructure failure, if any.
    pub error: Option<String>,
}

/// What the reconnect probe observed.
#[derive(Debug, Clone, Default)]
pub struct ReconnectProbe {
    /// The severed worker rejoined over its retained listener.
    pub reconnected: bool,
    /// Fresh worker processes spawned during the heal (must be zero —
    /// a reconnect heal reuses the live process).
    pub respawns_during_heal: u64,
    /// The panel returned to full strength.
    pub full_strength: bool,
    /// Batches lost or wrong across the probe (must be zero).
    pub lost_batches: u64,
    /// Infrastructure failure, if any.
    pub error: Option<String>,
}

/// Everything the netchaos experiment produced.
#[derive(Debug, Clone)]
pub struct NetchaosReport {
    /// The master seed.
    pub seed: u64,
    /// The run-configuration fingerprint welded into the transcripts.
    pub fingerprint: String,
    /// Wire-gauntlet tallies, one row per class.
    pub gauntlet: Vec<GauntletRow>,
    /// Deployment storms, in run order.
    pub storms: Vec<Storm>,
    /// The flap probe, when requested.
    pub flap: Option<FlapProbe>,
    /// The reconnect probe, when requested.
    pub reconnect: Option<ReconnectProbe>,
}

impl NetchaosReport {
    /// Heal-latency percentile over the healed storms of `class`.
    pub fn heal_percentile(&self, class: &str, q: f64) -> u64 {
        let mut ns: Vec<u64> = self
            .storms
            .iter()
            .filter(|s| s.class == class && s.healed)
            .map(|s| s.heal_ns)
            .collect();
        ns.sort_unstable();
        percentile(&ns, q)
    }

    /// The gate CI holds the run to.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        for row in &self.gauntlet {
            if row.masked_accepts > 0 {
                failures.push(format!(
                    "gauntlet/{}: {} trial(s) ACCEPTED wrong bytes",
                    row.class, row.masked_accepts
                ));
            }
            if row.class == "delay" {
                if row.intact != row.trials {
                    failures.push(format!(
                        "gauntlet/delay: {}/{} trials arrived intact",
                        row.intact, row.trials
                    ));
                }
            } else if row.detected() != row.trials {
                failures.push(format!(
                    "gauntlet/{}: {}/{} trials detected (missed {})",
                    row.class,
                    row.detected(),
                    row.trials,
                    row.trials - row.detected() - row.masked_accepts
                ));
            }
            if row.class == "corrupt" && row.detected_auth != row.trials {
                failures.push(format!(
                    "gauntlet/corrupt: only {}/{} trials rejected by AEAD authentication",
                    row.detected_auth, row.trials
                ));
            }
            if row.injected == 0 {
                failures.push(format!("gauntlet/{}: nothing was injected", row.class));
            }
        }
        for s in &self.storms {
            if s.lost_batches > 0 {
                failures.push(format!(
                    "storm {}: {} batch(es) lost or wrong",
                    s.spec, s.lost_batches
                ));
            }
            if s.injected == 0 {
                failures.push(format!("storm {}: nothing was injected", s.spec));
            }
            if !s.audit_ok {
                failures.push(format!("storm {}: transcript failed its self-audit", s.spec));
            }
            if s.class == "delay" {
                if !s.masked && !s.healed {
                    failures.push(format!("storm {}: neither masked nor healed", s.spec));
                }
                if s.masked && !s.transcript_identical {
                    failures.push(format!(
                        "storm {}: masked but transcript differs from the oracle",
                        s.spec
                    ));
                }
            } else if !(s.detected && s.healed) {
                failures.push(format!(
                    "storm {}: must be detected and healed (detected={}, healed={})",
                    s.spec, s.detected, s.healed
                ));
            }
        }
        if let Some(f) = &self.flap {
            if let Some(e) = &f.error {
                failures.push(format!("flap probe aborted: {e}"));
            } else {
                if !f.tripped {
                    failures.push("flap probe: the crash-loop budget never tripped".into());
                }
                if !f.recovery_failed_logged {
                    failures
                        .push("flap probe: no RecoveryFailed with a crash-loop reason".into());
                }
                if !f.degraded_service_ok {
                    failures.push("flap probe: degraded service served wrong outputs".into());
                }
            }
        }
        if let Some(r) = &self.reconnect {
            if let Some(e) = &r.error {
                failures.push(format!("reconnect probe aborted: {e}"));
            } else {
                if !r.reconnected {
                    failures.push("reconnect probe: the severed worker never rejoined".into());
                }
                if r.respawns_during_heal > 0 {
                    failures.push(format!(
                        "reconnect probe: {} respawn(s) — the heal must reuse the live worker",
                        r.respawns_during_heal
                    ));
                }
                if !r.full_strength {
                    failures.push("reconnect probe: panel never returned to full strength".into());
                }
                if r.lost_batches > 0 {
                    failures.push(format!(
                        "reconnect probe: {} batch(es) lost or wrong",
                        r.lost_batches
                    ));
                }
            }
        }
        failures
    }

    /// Human-readable summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# netchaos seed={} fingerprint={} storms={} gauntlet-trials/class={}",
            self.seed,
            self.fingerprint,
            self.storms.len(),
            self.gauntlet.first().map_or(0, |r| r.trials)
        );
        for r in &self.gauntlet {
            let _ = writeln!(
                out,
                "gauntlet {:>7}: injected={} detected={} (auth={} seq={} transport={}) intact={} masked-accepts={}",
                r.class,
                r.injected,
                r.detected(),
                r.detected_auth,
                r.detected_seq,
                r.detected_transport,
                r.intact,
                r.masked_accepts
            );
        }
        for s in &self.storms {
            let _ = writeln!(
                out,
                "storm {:<18} batches={} lost={} injected={} detected={} healed={} masked={} \
                 heal {:.1} ms transcript-identical={} audit-ok={}",
                s.spec,
                s.batches,
                s.lost_batches,
                s.injected,
                s.detected,
                s.healed,
                s.masked,
                s.heal_ns as f64 / 1e6,
                s.transcript_identical,
                s.audit_ok
            );
        }
        for class in NetFaultClass::ALL_TOKENS {
            let healed = self.storms.iter().filter(|s| s.class == class && s.healed).count();
            if healed > 0 {
                let _ = writeln!(
                    out,
                    "heal {:>7}: p50 {:.1} ms, p95 {:.1} ms over {healed} heal(s)",
                    class,
                    self.heal_percentile(class, 0.50) as f64 / 1e6,
                    self.heal_percentile(class, 0.95) as f64 / 1e6
                );
            }
        }
        if let Some(f) = &self.flap {
            let _ = writeln!(
                out,
                "flap: kills={} respawn-heals={} tripped={} recovery-failed-logged={} degraded-ok={}{}",
                f.kills,
                f.respawn_heals,
                f.tripped,
                f.recovery_failed_logged,
                f.degraded_service_ok,
                f.error.as_deref().map(|e| format!(" ABORTED: {e}")).unwrap_or_default()
            );
        }
        if let Some(r) = &self.reconnect {
            let _ = writeln!(
                out,
                "reconnect: reconnected={} respawns-during-heal={} full-strength={} lost={}{}",
                r.reconnected,
                r.respawns_during_heal,
                r.full_strength,
                r.lost_batches,
                r.error.as_deref().map(|e| format!(" ABORTED: {e}")).unwrap_or_default()
            );
        }
        for f in self.gate_failures() {
            let _ = writeln!(out, "GATE: {f}");
        }
        out
    }

    /// The `BENCH_netchaos.json` artifact.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&crate::meta_json_line("mvtee-netchaos-v1", self.seed, &self.fingerprint));
        out.push_str("  \"gauntlet\": [\n");
        for (i, r) in self.gauntlet.iter().enumerate() {
            let comma = if i + 1 == self.gauntlet.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"class\": \"{}\", \"trials\": {}, \"injected\": {}, \
                 \"detected_auth\": {}, \"detected_seq\": {}, \"detected_transport\": {}, \
                 \"intact\": {}, \"masked_accepts\": {}}}{comma}",
                r.class,
                r.trials,
                r.injected,
                r.detected_auth,
                r.detected_seq,
                r.detected_transport,
                r.intact,
                r.masked_accepts
            );
        }
        out.push_str("  ],\n  \"storms\": [\n");
        for (i, s) in self.storms.iter().enumerate() {
            let comma = if i + 1 == self.storms.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"class\": \"{}\", \"spec\": \"{}\", \"batches\": {}, \
                 \"lost_batches\": {}, \"injected\": {}, \"detected\": {}, \"healed\": {}, \
                 \"masked\": {}, \"heal_ns\": {}, \"transcript_identical\": {}, \
                 \"audit_ok\": {}}}{comma}",
                s.class,
                s.spec,
                s.batches,
                s.lost_batches,
                s.injected,
                s.detected,
                s.healed,
                s.masked,
                s.heal_ns,
                s.transcript_identical,
                s.audit_ok
            );
        }
        out.push_str("  ],\n  \"heal_latency\": {\n");
        let classes: Vec<&str> = NetFaultClass::ALL_TOKENS
            .iter()
            .copied()
            .filter(|c| self.storms.iter().any(|s| s.class == *c && s.healed))
            .collect();
        for (i, class) in classes.iter().enumerate() {
            let comma = if i + 1 == classes.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    \"{}\": {{\"p50_ns\": {}, \"p95_ns\": {}}}{comma}",
                class,
                self.heal_percentile(class, 0.50),
                self.heal_percentile(class, 0.95)
            );
        }
        out.push_str("  },\n");
        match &self.flap {
            None => out.push_str("  \"flap\": null,\n"),
            Some(f) => {
                let _ = writeln!(
                    out,
                    "  \"flap\": {{\"kills\": {}, \"respawn_heals\": {}, \"tripped\": {}, \
                     \"recovery_failed_logged\": {}, \"degraded_service_ok\": {}, \"error\": {}}},",
                    f.kills,
                    f.respawn_heals,
                    f.tripped,
                    f.recovery_failed_logged,
                    f.degraded_service_ok,
                    match &f.error {
                        None => "null".to_string(),
                        Some(e) => format!("{e:?}"),
                    }
                );
            }
        }
        match &self.reconnect {
            None => out.push_str("  \"reconnect\": null,\n"),
            Some(r) => {
                let _ = writeln!(
                    out,
                    "  \"reconnect\": {{\"reconnected\": {}, \"respawns_during_heal\": {}, \
                     \"full_strength\": {}, \"lost_batches\": {}, \"error\": {}}},",
                    r.reconnected,
                    r.respawns_during_heal,
                    r.full_strength,
                    r.lost_batches,
                    match &r.error {
                        None => "null".to_string(),
                        Some(e) => format!("{e:?}"),
                    }
                );
            }
        }
        let failures = self.gate_failures();
        let _ = writeln!(
            out,
            "  \"gate_failures\": [{}]",
            failures.iter().map(|f| format!("{f:?}")).collect::<Vec<_>>().join(", ")
        );
        out.push_str("}\n");
        out
    }
}

/// `v` of the sorted slice at quantile `q`.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The seeded fault of trial/storm `index` of `class`.
fn fault_for(class: &str, rng: &mut StdRng) -> NetFault {
    let from_frame = rng.gen_range(1..=2);
    let class = match class {
        "delay" => NetFaultClass::Delay { ms: rng.gen_range(10..=40) },
        "stall" => NetFaultClass::Stall,
        "drop" => NetFaultClass::Drop,
        "dup" => NetFaultClass::Duplicate,
        "trunc" => NetFaultClass::Truncate,
        "corrupt" => NetFaultClass::Corrupt { seed: rng.next_u64() },
        "torn" => NetFaultClass::Torn,
        "disc" => NetFaultClass::Disconnect,
        other => unreachable!("unknown class token {other}"),
    };
    NetFault { class, from_frame }
}

/// One wire-gauntlet trial: pushes [`GAUNTLET_FRAMES`] seeded payloads
/// through a faulted [`SecureChannel`] and tallies how the fault
/// surfaced.
fn gauntlet_trial(row: &mut GauntletRow, fault: NetFault, rng: &mut StdRng) {
    let payloads: Vec<Vec<u8>> = (0..GAUNTLET_FRAMES)
        .map(|_| (0..64).map(|_| rng.next_u32() as u8).collect())
        .collect();
    let hs_i = Handshake::from_pre_shared(b"netchaos-gauntlet", Role::Initiator);
    let hs_r = Handshake::from_pre_shared(b"netchaos-gauntlet", Role::Responder);
    let (a, b) = memory_pair();
    let faulty = FaultyTransport::new(a, fault, FaultDirection::Send);
    let injected = faulty.injected_handle();
    let mut tx = SecureChannel::new(faulty, &hs_i, 9);
    let mut rx = SecureChannel::new(b, &hs_r, 9);

    for p in &payloads {
        if tx.send(p).is_err() {
            // The sender's wire died (torn / disconnect): a loud,
            // sender-visible failure, never silent corruption.
            break;
        }
    }
    drop(tx); // end of stream: a starved receiver unblocks with Err

    let mut received = 0usize;
    loop {
        if received == payloads.len() {
            row.intact += 1;
            break;
        }
        match rx.recv() {
            Ok(p) if p == payloads[received] => received += 1,
            Ok(_) => {
                row.masked_accepts += 1;
                break;
            }
            Err(CryptoError::AuthenticationFailed) => {
                row.detected_auth += 1;
                break;
            }
            Err(CryptoError::SequenceMismatch { .. }) => {
                row.detected_seq += 1;
                break;
            }
            Err(_) => {
                row.detected_transport += 1;
                break;
            }
        }
    }
    row.trials += 1;
    row.injected += injected.load(Ordering::SeqCst);
}

/// The wire gauntlet: every class × `trials` seeded trials.
fn run_gauntlet(s: &NetchaosSettings) -> Vec<GauntletRow> {
    NetFaultClass::ALL_TOKENS
        .iter()
        .map(|class| {
            let mut row = GauntletRow { class: class.to_string(), ..Default::default() };
            for trial in 0..s.gauntlet_trials {
                let mut rng =
                    StdRng::seed_from_u64(s.seed ^ 0xAE7_u64 ^ ((trial as u64) << 8));
                let fault = fault_for(class, &mut rng);
                gauntlet_trial(&mut row, fault, &mut rng);
            }
            row
        })
        .collect()
}

/// The storm deployment configuration: replicated 3-variant panel with a
/// tight deadline, majority response, graceful degradation, and recovery.
fn storm_config() -> MvxConfig {
    let mut cfg = MvxConfig::fast_path(PARTITIONS);
    cfg.claims[MVX_PARTITION] = PartitionMvx::replicated(PANEL);
    cfg.checkpoint_deadline_ms = STORM_DEADLINE_MS;
    cfg.response = ResponsePolicy::ContinueWithMajority;
    cfg.degradation = DegradationPolicy::Degrade;
    cfg.recovery = RecoveryPolicy::enabled();
    cfg
}

/// The run-configuration fingerprint welded into the transcript header.
fn config_fingerprint(model: &zoo::Model) -> String {
    format!(
        "{}-{:016x}-netchaos-p{}x{}",
        model.kind.display_name(),
        mvtee_runtime::graph_fingerprint(&model.graph),
        PARTITIONS,
        PANEL
    )
}

/// The deterministic input of storm batch `index`.
fn storm_input(seed: u64, model: &zoo::Model, index: u64) -> Tensor {
    let n = model.input_shape.num_elements();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5707_u64 ^ (index % INPUT_PERIOD));
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Tensor::from_vec(data, model.input_shape.dims()).expect("static input shape")
}

/// Bit-exact tensor equality (NaN-safe).
fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims()
        && a.data().iter().zip(b.data().iter()).all(|(p, q)| p.to_bits() == q.to_bits())
}

/// One deployment storm: streams batches with the fault on panel variant
/// 0's response wire until the panel heals (or the delay provably masks),
/// then replays the same batch count fault-free for transcript identity.
fn run_storm(s: &NetchaosSettings, class: &str, storm_idx: usize) -> Result<Storm, MvxError> {
    let storm_seed = s.seed ^ ((storm_idx as u64 + 1) << 16);
    let mut rng = StdRng::seed_from_u64(storm_seed ^ 0x5707_u64);
    let fault = fault_for(class, &mut rng);
    let injected0 = mvtee_telemetry::counter("faults.net.injected").get();

    let model = zoo::build(s.model, s.profile, s.seed).expect("zoo model builds");
    let fingerprint = config_fingerprint(&model);
    let inputs: Vec<Tensor> =
        (0..INPUT_PERIOD).map(|i| storm_input(s.seed, &model, i)).collect();
    let cfg = storm_config();

    // The correctness oracle fixes the expected output of each input.
    let mut oracle = Deployment::builder(model)
        .config(cfg.clone())
        .partition_seed(s.seed)
        .variant_seed(s.seed)
        .build()?;
    let expected: Vec<Tensor> =
        inputs.iter().map(|i| oracle.infer(i)).collect::<Result<_, _>>()?;
    oracle.shutdown();

    let mut dep = Deployment::builder(zoo::build(s.model, s.profile, s.seed).expect("model"))
        .config(cfg.clone())
        .partition_seed(s.seed)
        .variant_seed(s.seed)
        .net_fault(MVX_PARTITION, 0, fault)
        .build()?;

    let mut storm = Storm {
        class: class.to_string(),
        spec: fault.to_string(),
        batches: 0,
        lost_batches: 0,
        injected: 0,
        detected: false,
        healed: false,
        masked: false,
        heal_ns: 0,
        transcript_identical: false,
        audit_ok: false,
    };
    let mut quarantined_at: Option<Instant> = None;
    for b in 0..STORM_BATCH_CAP {
        let idx = (b % INPUT_PERIOD) as usize;
        match dep.infer(&inputs[idx]) {
            Ok(out) if bits_equal(&out, &expected[idx]) => {}
            _ => storm.lost_batches += 1,
        }
        storm.batches += 1;
        if b + 1 < STORM_MIN_BATCHES {
            continue;
        }
        let events = dep.events();
        if let Some(&(qp, qv, qb)) = events.quarantines().first() {
            storm.detected = true;
            let seen = *quarantined_at.get_or_insert_with(Instant::now);
            let full = events.recoveries().contains(&(qp, qv))
                && events.checkpoint_passes().iter().any(|&(pp, pb, agreeing)| {
                    pp == qp && pb > qb && agreeing == PANEL
                });
            if full {
                storm.healed = true;
                storm.heal_ns = seen.elapsed().as_nanos() as u64;
                break;
            }
            // Recovery is asynchronous: give the manager a beat.
            std::thread::sleep(Duration::from_millis(20));
        } else if matches!(fault.class, NetFaultClass::Delay { .. }) {
            // Every output matched and no alarm fired: a sub-deadline
            // delay, provably without effect. No other class may end
            // here — the gate catches it.
            storm.masked = true;
            break;
        }
    }
    storm.injected = mvtee_telemetry::counter("faults.net.injected").get() - injected0;
    let transcript = dep.transcript().render(s.seed, &fingerprint);
    dep.shutdown();
    storm.audit_ok = verify_transcript(&transcript).is_ok();

    // The transcript oracle: the identical stream on a clean wire.
    let mut clean = Deployment::builder(zoo::build(s.model, s.profile, s.seed).expect("model"))
        .config(cfg)
        .partition_seed(s.seed)
        .variant_seed(s.seed)
        .build()?;
    for b in 0..storm.batches {
        let idx = (b % INPUT_PERIOD) as usize;
        let _ = clean.infer(&inputs[idx])?;
    }
    let reference = clean.transcript().render(s.seed, &fingerprint);
    clean.shutdown();
    storm.transcript_identical = transcript == reference;
    Ok(storm)
}

/// The crash-loop flap probe: one out-of-process panel member killed
/// after every heal until the budget trips.
fn run_flap_probe(s: &NetchaosSettings) -> FlapProbe {
    let mut probe = FlapProbe::default();
    let mut cfg = storm_config();
    cfg.recovery.crash_loop_budget = FLAP_BUDGET;

    let model = zoo::build(s.model, s.profile, s.seed).expect("zoo model builds");
    let inputs: Vec<Tensor> =
        (0..INPUT_PERIOD).map(|i| storm_input(s.seed, &model, i)).collect();
    let mut oracle = match Deployment::builder(model)
        .config(cfg.clone())
        .partition_seed(s.seed)
        .variant_seed(s.seed)
        .build()
    {
        Ok(d) => d,
        Err(e) => {
            probe.error = Some(format!("oracle failed: {e}"));
            return probe;
        }
    };
    let expected: Vec<Tensor> = match inputs.iter().map(|i| oracle.infer(i)).collect() {
        Ok(v) => v,
        Err(e) => {
            probe.error = Some(format!("oracle run failed: {e}"));
            return probe;
        }
    };
    oracle.shutdown();

    let mut dep = match Deployment::builder(
        zoo::build(s.model, s.profile, s.seed).expect("model"),
    )
    .config(cfg.clone())
    .partition_seed(s.seed)
    .variant_seed(s.seed)
    .out_of_process(MVX_PARTITION, 0)
    .build()
    {
        Ok(d) => d,
        Err(e) => {
            probe.error = Some(format!("worker deployment failed: {e}"));
            return probe;
        }
    };

    let trips = mvtee_telemetry::counter("core.recovery.crash_loop_trips");
    let trips0 = trips.get();
    let mut served = 0u64;
    let mut infer_ok = |dep: &mut Deployment, lost: &mut u64| {
        let idx = (served % INPUT_PERIOD) as usize;
        match dep.infer(&inputs[idx]) {
            Ok(out) if bits_equal(&out, &expected[idx]) => {}
            _ => *lost += 1,
        }
        served += 1;
    };
    let mut lost = 0u64;
    // Warm up: two verified batches before the first kill.
    for _ in 0..2 {
        infer_ok(&mut dep, &mut lost);
    }
    // Kill → heal → kill again, until the budget trips (third death).
    let deadline = Instant::now() + Duration::from_secs(30);
    while trips.get() == trips0 && Instant::now() < deadline {
        if dep.kill_worker(MVX_PARTITION, 0) {
            probe.kills += 1;
        }
        let heals_before = dep.events().recoveries().len();
        while trips.get() == trips0
            && dep.events().recoveries().len() == heals_before
            && Instant::now() < deadline
        {
            infer_ok(&mut dep, &mut lost);
            std::thread::sleep(Duration::from_millis(20));
        }
        if dep.events().recoveries().len() > heals_before {
            probe.respawn_heals += 1;
        }
    }
    probe.tripped = trips.get() > trips0;
    probe.recovery_failed_logged = dep.events().events().iter().any(|e| {
        matches!(e, MonitorEvent::RecoveryFailed { reason, .. } if reason.contains("crash-loop"))
    });
    // Post-trip: the panel must keep serving, degraded but correct.
    let mut post_lost = 0u64;
    for _ in 0..3 {
        infer_ok(&mut dep, &mut post_lost);
    }
    probe.degraded_service_ok = probe.tripped && post_lost == 0;
    dep.shutdown();
    probe
}

/// The reconnect probe: an abrupt monitor-side wire disconnect under
/// heartbeat supervision with reconnect-and-resume enabled.
fn run_reconnect_probe(s: &NetchaosSettings) -> ReconnectProbe {
    let mut probe = ReconnectProbe::default();
    let mut cfg = storm_config();
    cfg.supervision = SupervisionPolicy::with_reconnect();

    let model = zoo::build(s.model, s.profile, s.seed).expect("zoo model builds");
    let inputs: Vec<Tensor> =
        (0..INPUT_PERIOD).map(|i| storm_input(s.seed, &model, i)).collect();
    let mut oracle = match Deployment::builder(model)
        .config(cfg.clone())
        .partition_seed(s.seed)
        .variant_seed(s.seed)
        .build()
    {
        Ok(d) => d,
        Err(e) => {
            probe.error = Some(format!("oracle failed: {e}"));
            return probe;
        }
    };
    let expected: Vec<Tensor> = match inputs.iter().map(|i| oracle.infer(i)).collect() {
        Ok(v) => v,
        Err(e) => {
            probe.error = Some(format!("oracle run failed: {e}"));
            return probe;
        }
    };
    oracle.shutdown();

    let fault =
        NetFault { class: NetFaultClass::Disconnect, from_frame: RECONNECT_FROM_FRAME };
    let spawned = mvtee_telemetry::counter("core.worker.spawned");
    let reconnected = mvtee_telemetry::counter("core.worker.reconnected");
    let mut dep = match Deployment::builder(
        zoo::build(s.model, s.profile, s.seed).expect("model"),
    )
    .config(cfg.clone())
    .partition_seed(s.seed)
    .variant_seed(s.seed)
    .out_of_process(MVX_PARTITION, 0)
    .net_fault(MVX_PARTITION, 0, fault)
    .build()
    {
        Ok(d) => d,
        Err(e) => {
            probe.error = Some(format!("worker deployment failed: {e}"));
            return probe;
        }
    };
    let spawned0 = spawned.get();
    let reconnected0 = reconnected.get();

    let mut served = 0u64;
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        let idx = (served % INPUT_PERIOD) as usize;
        match dep.infer(&inputs[idx]) {
            Ok(out) if bits_equal(&out, &expected[idx]) => {}
            _ => probe.lost_batches += 1,
        }
        served += 1;
        let events = dep.events();
        if let Some(&(qp, qv, qb)) = events.quarantines().first() {
            probe.full_strength = events.recoveries().contains(&(qp, qv))
                && events.checkpoint_passes().iter().any(|&(pp, pb, agreeing)| {
                    pp == qp && pb > qb && agreeing == PANEL
                });
            if probe.full_strength {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    probe.reconnected = reconnected.get() > reconnected0
        && !dep.events().reconnections().is_empty();
    probe.respawns_during_heal = spawned.get() - spawned0;
    dep.shutdown();
    probe
}

/// Runs the netchaos experiment.
pub fn run_netchaos(s: &NetchaosSettings) -> NetchaosReport {
    let model = zoo::build(s.model, s.profile, s.seed).expect("zoo model builds");
    let fingerprint = config_fingerprint(&model);
    drop(model);

    let mut report = NetchaosReport {
        seed: s.seed,
        fingerprint,
        gauntlet: run_gauntlet(s),
        storms: Vec::new(),
        flap: None,
        reconnect: None,
    };
    for class in NetFaultClass::ALL_TOKENS {
        for storm_idx in 0..s.storms_per_class {
            match run_storm(s, class, storm_idx) {
                Ok(storm) => report.storms.push(storm),
                Err(_) => report.storms.push(Storm {
                    class: class.to_string(),
                    spec: format!("net:{class}:?"),
                    batches: 0,
                    lost_batches: 1,
                    injected: 0,
                    detected: false,
                    healed: false,
                    masked: false,
                    heal_ns: 0,
                    transcript_identical: false,
                    audit_ok: false,
                }),
            }
        }
    }
    if s.probe_flap {
        report.flap = Some(run_flap_probe(s));
    }
    if s.probe_reconnect {
        report.reconnect = Some(run_reconnect_probe(s));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauntlet_detects_every_class_and_accepts_nothing_wrong() {
        let mut s = NetchaosSettings::quick(7);
        s.gauntlet_trials = 3;
        let rows = run_gauntlet(&s);
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert_eq!(row.masked_accepts, 0, "{}: wrong bytes accepted", row.class);
            assert!(row.injected > 0, "{}: nothing injected", row.class);
            if row.class == "delay" {
                assert_eq!(row.intact, row.trials, "{}: delay must arrive intact", row.class);
            } else {
                assert_eq!(
                    row.detected(),
                    row.trials,
                    "{}: every trial must surface loudly",
                    row.class
                );
            }
        }
        let corrupt = rows.iter().find(|r| r.class == "corrupt").unwrap();
        assert_eq!(corrupt.detected_auth, corrupt.trials, "corruption must be AEAD-rejected");
    }

    #[test]
    fn corrupt_storm_heals_with_correct_outputs() {
        let s = NetchaosSettings::quick(7);
        let storm = run_storm(&s, "corrupt", 0).expect("storm infrastructure");
        assert!(storm.detected, "corrupt wire must be detected: {storm:?}");
        assert!(storm.healed, "corrupt storm must heal: {storm:?}");
        assert_eq!(storm.lost_batches, 0, "no batch may be lost: {storm:?}");
        assert!(storm.audit_ok, "transcript must self-audit: {storm:?}");
        assert!(storm.injected > 0);
    }

    #[test]
    fn report_json_is_well_formed() {
        let report = NetchaosReport {
            seed: 1,
            fingerprint: "f".into(),
            gauntlet: vec![GauntletRow {
                class: "delay".into(),
                trials: 1,
                injected: 1,
                intact: 1,
                ..Default::default()
            }],
            storms: vec![],
            flap: None,
            reconnect: None,
        };
        let json = report.render_json();
        assert!(json.contains("\"mvtee-netchaos-v1\""));
        assert!(json.contains("\"gate_failures\": []"));
    }
}
