//! Shared flag parsing for the `experiments` subcommands.
//!
//! Every subcommand understands the same core flags — `--seed N`,
//! `--quick`, `--out PATH`, `--quiet` — and before this module each one
//! re-parsed them by hand. [`CommonArgs::parse`] is the single
//! implementation; subcommand-specific flags (`--count`, `--scenarios`,
//! `--trace-out`, …) keep using [`flag_value`]/[`flag_path`] directly.

/// The flags shared by every `experiments` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommonArgs {
    /// `--seed N` (subcommand-chosen default).
    pub seed: u64,
    /// `--quick` — CI-smoke scale.
    pub quick: bool,
    /// `--quiet` — suppress status chatter.
    pub quiet: bool,
    /// `--out PATH`, when given.
    pub out: Option<String>,
}

impl CommonArgs {
    /// Parses the shared flags; exits with a usage error (status 2) on a
    /// malformed value, like the per-flag helpers always did.
    pub fn parse(args: &[String], default_seed: u64) -> Self {
        CommonArgs {
            seed: flag_value(args, "--seed", default_seed),
            quick: has_flag(args, "--quick"),
            quiet: has_flag(args, "--quiet"),
            out: args
                .iter()
                .any(|a| a == "--out")
                .then(|| flag_path(args, "--out", "")),
        }
    }

    /// The `--out` path, or `default` when the flag was absent.
    pub fn out_or(&self, default: &str) -> String {
        self.out.clone().unwrap_or_else(|| default.to_string())
    }
}

/// True when `flag` appears anywhere in the argument list.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parses `--flag N` from the argument list; exits with a usage error on
/// a malformed value.
pub fn flag_value(args: &[String], flag: &str, default: u64) -> u64 {
    match args.iter().position(|a| a == flag) {
        None => default,
        Some(i) => match args.get(i + 1).map(|v| v.parse::<u64>()) {
            Some(Ok(v)) => v,
            _ => {
                eprintln!("error: {flag} requires an unsigned integer value");
                std::process::exit(2);
            }
        },
    }
}

/// Parses `--flag PATH` from the argument list; exits with a usage error
/// when the path is missing.
pub fn flag_path(args: &[String], flag: &str, default: &str) -> String {
    match args.iter().position(|a| a == flag) {
        None => default.to_string(),
        Some(i) => match args.get(i + 1) {
            Some(p) => p.clone(),
            None => {
                eprintln!("error: {flag} requires a path");
                std::process::exit(2);
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn defaults_apply_when_flags_are_absent() {
        let c = CommonArgs::parse(&args(&[]), 7);
        assert_eq!(c, CommonArgs { seed: 7, quick: false, quiet: false, out: None });
        assert_eq!(c.out_or("BENCH_x.json"), "BENCH_x.json");
    }

    #[test]
    fn every_shared_flag_parses() {
        let c = CommonArgs::parse(
            &args(&["--seed", "42", "--quick", "--quiet", "--out", "report.json"]),
            7,
        );
        assert_eq!(
            c,
            CommonArgs {
                seed: 42,
                quick: true,
                quiet: true,
                out: Some("report.json".into())
            }
        );
        assert_eq!(c.out_or("BENCH_x.json"), "report.json");
    }

    #[test]
    fn subcommand_specific_flags_pass_through() {
        let a = args(&["--count", "16", "--trace-out", "t.json"]);
        assert_eq!(flag_value(&a, "--count", 64), 16);
        assert_eq!(flag_path(&a, "--trace-out", "d.json"), "t.json");
        assert_eq!(flag_value(&a, "--scenarios", 8), 8);
    }
}
