//! The experiment implementations: one function per paper table/figure.
//!
//! Each returns a [`Table`] whose rows mirror the series the paper plots:
//!
//! * [`fig9`] — performance impact of random-balanced partitioning,
//! * [`fig10`] — encryption and checkpoint overheads,
//! * [`fig11`] — horizontal variant scaling under selective MVX,
//! * [`fig12`] — vertical variant scaling under selective MVX,
//! * [`fig13`] — asynchronous cross-validation vs synchronous execution,
//! * [`fig14`] — real-setup performance with diversified variants,
//! * [`table1`] — TensorFlow CVE classes vs defending variants (runs the
//!   real threaded system with real exploit injection),
//! * [`security_faults`] — FrameFlip and weight-bit-flip detection
//!   (§6.5's fault analysis, also on the real system).

use crate::costs::{apply_path_rules, measure_baseline, measure_with_baseline, MeasuredConfig};
use crate::sim::{simulate, Composition, SimResult, SyncMode};
use crate::table::{pct, ratio, Table};
use mvtee::config::{ExecMode, MvxConfig, PathMode, ResponsePolicy, VotingPolicy};
use mvtee::deployment::{Deployment, SpecPatch};
use mvtee_faults::{Attack, BitFlipStrategy, CveClass, FrameFlip};
use mvtee_graph::zoo::{self, Model, ModelKind, ScaleProfile};
use mvtee_runtime::{BlasKind, EngineConfig, EngineKind};
use std::collections::HashMap;

/// Global experiment settings.
#[derive(Debug, Clone)]
pub struct Settings {
    /// Model scale.
    pub profile: ScaleProfile,
    /// Which models to evaluate.
    pub models: Vec<ModelKind>,
    /// Batches per simulated stream.
    pub batches: usize,
    /// Per-batch service-time jitter (fraction).
    pub jitter: f64,
    /// Partition seed.
    pub seed: u64,
}

impl Settings {
    /// Full settings: all seven paper models at bench scale.
    pub fn full() -> Self {
        Settings {
            profile: ScaleProfile::Bench,
            models: ModelKind::ALL.to_vec(),
            batches: 32,
            jitter: 0.08,
            seed: 0x5eed,
        }
    }

    /// Quick settings for CI / smoke runs.
    pub fn quick() -> Self {
        Settings {
            profile: ScaleProfile::Test,
            models: vec![ModelKind::MnasNet, ModelKind::ResNet50],
            batches: 12,
            jitter: 0.08,
            seed: 0x5eed,
        }
    }

    fn build_models(&self) -> Vec<Model> {
        self.models
            .iter()
            .map(|&k| zoo::build(k, self.profile, 42).expect("zoo model builds"))
            .collect()
    }
}

/// A stable baseline (median-of-REPS measurement, one warmed-up round).
fn stable_baseline(model: &Model) -> f64 {
    measure_baseline(model)
}

fn run_both(m: &MeasuredConfig, s: &Settings, sync: SyncMode) -> (SimResult, SimResult) {
    let seq = simulate(m, s.batches, Composition::Sequential, sync, s.jitter, s.seed);
    let pipe = simulate(m, s.batches, Composition::Pipelined, sync, s.jitter, s.seed);
    (seq, pipe)
}

/// Fig 9: throughput/latency impact of random-balanced partitioning on a
/// full fast path, sequential and pipelined, versus the original model.
pub fn fig9(s: &Settings) -> Table {
    let mut t = Table::new(
        "Fig 9 — Performance impact of random-balanced partitioning (full fast path; vs original)",
        &[
            "model",
            "partitions",
            "seq thr",
            "seq lat",
            "pipe thr",
            "pipe lat",
        ],
    );
    for model in s.build_models() {
        let baseline = stable_baseline(&model);
        for &parts in &[2usize, 5, 8] {
            let mut cfg = MvxConfig::fast_path(parts);
            cfg.partition_seed = s.seed;
            let measured = measure_with_baseline(&model, &cfg, &HashMap::new(), Some(baseline));
            let base_thr = 1.0 / measured.baseline;
            let (seq, pipe) = run_both(&measured, s, SyncMode::Sync);
            t.row(vec![
                measured.model.clone(),
                parts.to_string(),
                ratio(seq.throughput / base_thr),
                ratio(seq.latency / measured.baseline),
                ratio(pipe.throughput / base_thr),
                ratio(pipe.latency / measured.baseline),
            ]);
        }
    }
    t
}

/// Fig 10: encryption and checkpointing overheads in a 5-partition setup.
/// Baseline: no encryption, full fast path. "enc" adds AES-GCM-256;
/// "enc+ckpt" additionally forces the slow path at every checkpoint.
pub fn fig10(s: &Settings) -> Table {
    let mut t = Table::new(
        "Fig 10 — Encryption and checkpoint overheads (5 partitions; overhead vs no-enc fast path)",
        &[
            "model",
            "seq enc",
            "seq enc+ckpt",
            "pipe enc",
            "pipe enc+ckpt",
            "fastpath saves (seq)",
            "fastpath saves (pipe)",
        ],
    );
    let parts = 5;
    for model in s.build_models() {
        let mut base_cfg = MvxConfig::fast_path(parts);
        base_cfg.partition_seed = s.seed;
        base_cfg.encrypt = false;
        let mut enc_cfg = base_cfg.clone();
        enc_cfg.encrypt = true;
        let mut slow_cfg = enc_cfg.clone();
        slow_cfg.path = PathMode::ForceSlow;

        // Measure compute and raw crypto once; derive the three path/cipher
        // variants from the same measurement so the overhead deltas reflect
        // only encryption and checkpointing, not compute re-measurement
        // noise.
        let baseline = stable_baseline(&model);
        let measured =
            measure_with_baseline(&model, &slow_cfg, &HashMap::new(), Some(baseline));
        let mut base = measured.clone();
        apply_path_rules(&mut base, &base_cfg);
        let mut enc = measured.clone();
        apply_path_rules(&mut enc, &enc_cfg);
        let mut slow = measured.clone();
        apply_path_rules(&mut slow, &slow_cfg);

        let (bs, bp) = run_both(&base, s, SyncMode::Sync);
        let (es, ep) = run_both(&enc, s, SyncMode::Sync);
        let (ss, sp) = run_both(&slow, s, SyncMode::Sync);

        // Overheads as latency increase (sequential) / completion-interval
        // increase (pipelined), matching the paper's framing.
        let seq_enc = es.latency / bs.latency - 1.0;
        let seq_all = ss.latency / bs.latency - 1.0;
        let pipe_enc = ep.latency / bp.latency - 1.0;
        let pipe_all = sp.latency / bp.latency - 1.0;
        // Fast-path mitigation: how much of the slow-path overhead the
        // hybrid fast path recovers.
        let save_seq = if ss.latency > 0.0 { 1.0 - es.latency / ss.latency } else { 0.0 };
        let save_pipe = if sp.latency > 0.0 { 1.0 - ep.latency / sp.latency } else { 0.0 };
        t.row(vec![
            base.model.clone(),
            pct(seq_enc),
            pct(seq_all),
            pct(pipe_enc),
            pct(pipe_all),
            pct(save_seq),
            pct(save_pipe),
        ]);
    }
    t
}

/// Fig 11: horizontal scaling — 5 partitions, the 3rd partition runs 1, 3
/// or 5 replicated variants; normalized to the original model.
pub fn fig11(s: &Settings) -> Table {
    let mut t = Table::new(
        "Fig 11 — Horizontal variant scaling via selective MVX (5 partitions, MVX on 3rd; vs original)",
        &["model", "variants", "seq thr", "seq lat", "pipe thr", "pipe lat"],
    );
    for model in s.build_models() {
        let baseline = stable_baseline(&model);
        for &vars in &[1usize, 3, 5] {
            let mut cfg = MvxConfig::selective(5, &[2], vars);
            cfg.partition_seed = s.seed;
            let measured = measure_with_baseline(&model, &cfg, &HashMap::new(), Some(baseline));
            let base_thr = 1.0 / measured.baseline;
            let (seq, pipe) = run_both(&measured, s, SyncMode::Sync);
            t.row(vec![
                measured.model.clone(),
                format!("{vars} var"),
                ratio(seq.throughput / base_thr),
                ratio(seq.latency / measured.baseline),
                ratio(pipe.throughput / base_thr),
                ratio(pipe.latency / measured.baseline),
            ]);
        }
    }
    t
}

/// Fig 12: vertical scaling — 5 partitions, MVX (3 variants) enabled on 1,
/// 3 or all 5 partitions; normalized to the original model.
pub fn fig12(s: &Settings) -> Table {
    let mut t = Table::new(
        "Fig 12 — Vertical variant scaling via selective MVX (3 variants per MVX partition; vs original)",
        &["model", "mvx parts", "seq thr", "seq lat", "pipe thr", "pipe lat"],
    );
    let configs: [(&str, Vec<usize>); 3] = [
        ("1-MVX", vec![2]),
        ("3-MVX", vec![2, 3, 4]),
        ("5-MVX", vec![0, 1, 2, 3, 4]),
    ];
    for model in s.build_models() {
        let baseline = stable_baseline(&model);
        for (label, parts) in &configs {
            let mut cfg = MvxConfig::selective(5, parts, 3);
            cfg.partition_seed = s.seed;
            let measured = measure_with_baseline(&model, &cfg, &HashMap::new(), Some(baseline));
            let base_thr = 1.0 / measured.baseline;
            let (seq, pipe) = run_both(&measured, s, SyncMode::Sync);
            t.row(vec![
                measured.model.clone(),
                label.to_string(),
                ratio(seq.throughput / base_thr),
                ratio(seq.latency / measured.baseline),
                ratio(pipe.throughput / base_thr),
                ratio(pipe.latency / measured.baseline),
            ]);
        }
    }
    t
}

/// The engine overrides that plant one complex-schedule (lagging) TVM
/// variant in each MVX partition.
fn lagging_overrides(mvx_parts: &[usize], vars: usize) -> HashMap<(usize, usize), EngineConfig> {
    let mut o = HashMap::new();
    for &p in mvx_parts {
        o.insert((p, vars - 1), EngineConfig::tvm_complex());
    }
    o
}

/// Fig 13: async cross-validation vs sync execution — 5 partitions, MVX on
/// the 2nd and 3rd partitions with 3 diversified variants each, one of
/// them a complex-diversified (lagging) TVM variant.
pub fn fig13(s: &Settings) -> Table {
    let mut t = Table::new(
        "Fig 13 — Asynchronous cross-validation vs synchronous execution (gain of async over sync)",
        &[
            "model",
            "seq thr gain",
            "seq lat reduction",
            "pipe thr gain",
            "pipe lat reduction",
        ],
    );
    let mvx = [1usize, 2];
    let overrides = lagging_overrides(&mvx, 3);
    for model in s.build_models() {
        let mut cfg = MvxConfig::selective_diversified(5, &mvx, 3);
        cfg.partition_seed = s.seed;
        let measured = measure_with_baseline(&model, &cfg, &overrides, Some(0.0));
        let (seq_s, pipe_s) = run_both(&measured, s, SyncMode::Sync);
        let (seq_a, pipe_a) = run_both(&measured, s, SyncMode::AsyncCrossValidation);
        t.row(vec![
            measured.model.clone(),
            pct(seq_a.throughput / seq_s.throughput - 1.0),
            pct(1.0 - seq_a.latency / seq_s.latency),
            pct(pipe_a.throughput / pipe_s.throughput - 1.0),
            pct(1.0 - pipe_a.latency / pipe_s.latency),
        ]);
    }
    t
}

/// Fig 14: real-setup performance — diversified ORT/TVM variants, async
/// execution, 1-MVX (3rd partition) and 3-MVX (3rd–5th partitions) with 3
/// variants; versus the original inference baseline.
pub fn fig14(s: &Settings) -> Table {
    let mut t = Table::new(
        "Fig 14 — Real-setup performance (diversified variants, async; vs original)",
        &[
            "model",
            "config",
            "seq thr",
            "seq lat overhead",
            "pipe thr gain",
            "pipe lat change",
        ],
    );
    let configs: [(&str, Vec<usize>); 2] = [("1 MVX", vec![2]), ("3 MVX", vec![2, 3, 4])];
    for model in s.build_models() {
        let baseline = stable_baseline(&model);
        for (label, parts) in &configs {
            let mut cfg = MvxConfig::selective_diversified(5, parts, 3);
            cfg.partition_seed = s.seed;
            cfg.exec = ExecMode::AsyncCrossValidation;
            let overrides = lagging_overrides(parts, 3);
            let measured =
                measure_with_baseline(&model, &cfg, &overrides, Some(baseline));
            let base_thr = 1.0 / measured.baseline;
            let (seq, pipe) = run_both(&measured, s, SyncMode::AsyncCrossValidation);
            t.row(vec![
                measured.model.clone(),
                label.to_string(),
                ratio(seq.throughput / base_thr),
                pct(seq.latency / measured.baseline - 1.0),
                pct(pipe.throughput / base_thr - 1.0),
                pct(pipe.latency / measured.baseline - 1.0),
            ]);
        }
    }
    t
}

/// One Table 1 defender family: its display name and the spec patch that
/// realises it on a variant.
fn defenders_for(class: CveClass) -> Vec<(&'static str, SpecPatch)> {
    let mut out: Vec<(&'static str, SpecPatch)> = vec![(
        "Different RT",
        SpecPatch::engine(EngineConfig::of_kind(EngineKind::TvmLike).with_blas(BlasKind::Strided)),
    )];
    match class {
        CveClass::Oob => {
            out.push(("Bounds check", SpecPatch {
                hardening: Some(vec!["bounds-check".into()]),
                ..Default::default()
            }));
            out.push(("Sanitizers", SpecPatch {
                hardening: Some(vec!["sanitizer-address".into()]),
                ..Default::default()
            }));
            out.push(("ASLR", SpecPatch { aslr_seed: Some(0x1517), ..Default::default() }));
        }
        CveClass::Unp | CveClass::Uaf => {
            out.push(("Sanitizers", SpecPatch {
                hardening: Some(vec!["sanitizer-address".into()]),
                ..Default::default()
            }));
        }
        CveClass::Fpe => {
            out.push(("Error handling", SpecPatch {
                hardening: Some(vec!["error-handling".into()]),
                ..Default::default()
            }));
            out.push(("Compiler", SpecPatch {
                hardening: Some(vec!["compiler-checks".into()]),
                ..Default::default()
            }));
        }
        CveClass::Io => {
            out.push(("Sanitizers", SpecPatch {
                hardening: Some(vec!["sanitizer-address".into()]),
                ..Default::default()
            }));
            out.push(("Compiler", SpecPatch {
                hardening: Some(vec!["compiler-checks".into()]),
                ..Default::default()
            }));
        }
        CveClass::Acf => {
            out.push(("Error handling", SpecPatch {
                hardening: Some(vec!["error-handling".into()]),
                ..Default::default()
            }));
        }
    }
    out
}

/// Table 1: TensorFlow vulnerability classes and defending variants — runs
/// the **real threaded system** with real exploit injection: a 2-variant
/// MVX partition pairing one susceptible variant with one defender, and
/// asserts the monitor's checkpoint detects the attack.
pub fn table1(s: &Settings) -> Table {
    let mut t = Table::new(
        "Table 1 — TensorFlow CVE classes vs defending variants (real system, real exploit injection)",
        &["class", "example CVE", "impact", "defending variant", "MVX detects", "undefended outcome"],
    );
    let model_kind = s.models.first().copied().unwrap_or(ModelKind::MnasNet);
    for class in CveClass::ALL {
        let undefended = undefended_outcome(model_kind, class);
        for (defender_name, patch) in defenders_for(class) {
            let detected = run_cve_trial(model_kind, class, &patch);
            t.row(vec![
                class.to_string(),
                class.example_cve().to_string(),
                impact_of(class).to_string(),
                defender_name.to_string(),
                if detected { "yes".into() } else { "MISSED".into() },
                undefended.clone(),
            ]);
        }
    }
    t
}

fn impact_of(class: CveClass) -> &'static str {
    match class {
        CveClass::Oob => "DoS / corruption / R-W / code exec",
        CveClass::Unp => "DoS / incorrect results",
        CveClass::Fpe => "DoS / incorrect results",
        CveClass::Io => "DoS / corruption / incorrect results",
        CveClass::Uaf => "DoS / corruption / code exec",
        CveClass::Acf => "DoS",
    }
}

/// Deploys (real threads, real bootstrap) a 2-variant MVX partition:
/// variant 0 susceptible, variant 1 patched with the defender; injects the
/// exploit and reports whether the monitor detected it.
fn run_cve_trial(model_kind: ModelKind, class: CveClass, defender: &SpecPatch) -> bool {
    let model = zoo::build(model_kind, ScaleProfile::Test, 42).expect("zoo model builds");
    let input = crate::costs::model_input(&model);
    let mut d = Deployment::builder(model)
        .partitions(2)
        .mvx_on_partition(1, 2)
        .spec_patch(1, 1, defender.clone())
        .response(ResponsePolicy::Halt)
        .voting(VotingPolicy::Unanimous)
        .attack(Attack::new(class))
        .build()
        .expect("deployment builds");
    let result = d.infer(&input);
    let detected = d.events().detection_count() > 0;
    // A detected attack under Halt must also fail the inference.
    let consistent = !detected || result.is_err();
    d.shutdown();
    detected && consistent
}

/// What happens *without* MVX (single susceptible variant): the paper's
/// motivation — the exploit succeeds silently or kills the service.
fn undefended_outcome(model_kind: ModelKind, class: CveClass) -> String {
    let model = zoo::build(model_kind, ScaleProfile::Test, 42).expect("zoo model builds");
    let input = crate::costs::model_input(&model);
    let mut d = Deployment::builder(model)
        .partitions(2)
        .attack(Attack::new(class))
        .build()
        .expect("deployment builds");
    let result = d.infer(&input);
    let out = match result {
        Ok(_) => "silent corruption".to_string(),
        Err(_) => "service killed".to_string(),
    };
    d.shutdown();
    out
}

/// §6.5 fault analysis: FrameFlip (code-level BLAS fault) and
/// weight-targeted bit flips, detected by checkpoint divergence on the
/// real system.
pub fn security_faults(s: &Settings) -> Table {
    let mut t = Table::new(
        "Security — fault injection detection (real system)",
        &["fault", "target", "MVX detects", "notes"],
    );
    let model_kind = s.models.first().copied().unwrap_or(ModelKind::MnasNet);

    // FrameFlip against the blocked-BLAS ("MKL" stand-in) backend; the MVX
    // panel pairs a blocked-BLAS variant with a strided-BLAS variant.
    let model = zoo::build(model_kind, ScaleProfile::Test, 42).expect("zoo model builds");
    let input = crate::costs::model_input(&model);
    let mut d = Deployment::builder(model)
        .partitions(2)
        .mvx_on_partition(1, 2)
        .engine_override(1, 1, EngineConfig::of_kind(EngineKind::OrtLike).with_blas(BlasKind::Strided))
        .response(ResponsePolicy::Halt)
        .frameflip(FrameFlip::against(BlasKind::Blocked))
        .build()
        .expect("deployment builds");
    let r = d.infer(&input);
    let detected = d.events().detection_count() > 0 && r.is_err();
    d.shutdown();
    t.row(vec![
        "FrameFlip (code fault)".into(),
        "blocked-blas backend".into(),
        if detected { "yes".into() } else { "MISSED".into() },
        "different-BLAS variant diverges".into(),
    ]);

    // Weight bit flips, compared through the checkpoint metric (what a
    // cross-TEE weight fault looks like when one variant's in-memory
    // weights were corrupted). Model resilience can hide small flip counts
    // — the paper's §4.1 notes exactly this ("some fault-caused
    // discrepancies may be hidden by the model's resilience") — so the
    // experiment escalates the flip count and reports the detection
    // threshold.
    let model = zoo::build(model_kind, ScaleProfile::Test, 42).expect("zoo model builds");
    let clean_out = {
        use mvtee_runtime::{Engine, PreparedModel};
        let e = Engine::new(EngineConfig::of_kind(EngineKind::OrtLike));
        let p: Box<dyn PreparedModel> = e.prepare(&model.graph).expect("prepares");
        p.run(std::slice::from_ref(&input)).expect("runs").remove(0)
    };
    let metric = mvtee_tensor::metrics::Metric::relaxed();
    let mut detected_at: Option<usize> = None;
    for count in [1usize, 2, 4, 8, 16, 32] {
        let mut flipped = model.clone();
        let _ = mvtee_faults::flip_weight_bits(
            &mut flipped.graph,
            BitFlipStrategy::ExponentMsb,
            count,
            9,
        );
        let faulty_out = {
            use mvtee_runtime::{Engine, PreparedModel};
            let e = Engine::new(EngineConfig::of_kind(EngineKind::OrtLike));
            let p: Box<dyn PreparedModel> = e.prepare(&flipped.graph).expect("prepares");
            p.run(std::slice::from_ref(&input)).expect("runs").remove(0)
        };
        if !metric.check(&clean_out, &faulty_out) {
            detected_at = Some(count);
            break;
        }
    }
    t.row(vec![
        "weight bit flips (exponent MSBs)".into(),
        "model weights".into(),
        if detected_at.is_some() { "yes".into() } else { "MISSED".into() },
        match detected_at {
            Some(1) => "detected at the very first flip".into(),
            Some(n) => format!(
                "detected at {n} flips (smaller counts masked by model resilience)"
            ),
            None => "resilience masked all tested counts".into(),
        },
    ]);
    t
}

/// Ablation A — the partitioner's balance-biasing weight function vs a
/// uniform (unbiased Karger) weight: stage-cost imbalance and the
/// theoretical pipeline speedup bound `total/max` stage cost.
pub fn ablation_weight_fn(s: &Settings) -> Table {
    use mvtee_partition::Partitioner;
    let mut t = Table::new(
        "Ablation A — balance-biased vs uniform contraction weights (5 partitions)",
        &[
            "model",
            "weight fn",
            "imbalance (max/min cost)",
            "pipeline speedup bound",
        ],
    );
    for model in s.build_models() {
        for (label, biased) in [("balance-biased (default)", true), ("uniform (plain Karger)", false)] {
            let mut p = Partitioner::new(5);
            if !biased {
                p = p.with_weight_fn(Box::new(|_| 1.0));
            }
            let set = p
                .partition_best_of(&model.graph, s.seed, 4)
                .expect("partitions");
            let total: f64 = set.stages.iter().map(|st| st.cost).sum();
            let max = set.stages.iter().map(|st| st.cost).fold(f64::MIN, f64::max);
            t.row(vec![
                model.kind.display_name().to_string(),
                label.to_string(),
                format!("{:.1}", set.imbalance()),
                ratio(total / max),
            ]);
        }
    }
    t
}

/// Ablation B — consistency-metric thresholds on a diversified panel:
/// the strict (replica-grade) metric raises false alarms on benign
/// heterogeneous variants; the relaxed metric does not. Real system.
pub fn ablation_metric(s: &Settings) -> Table {
    use mvtee::config::PartitionMvx;
    use mvtee_tensor::metrics::Metric;
    let mut t = Table::new(
        "Ablation B — checkpoint metric thresholds on a benign diversified panel (real system)",
        &["metric", "false alarms", "inference"],
    );
    let model_kind = s.models.first().copied().unwrap_or(ModelKind::MnasNet);
    for (label, metric) in [
        ("bit-exact (max |diff| = 0)", Metric::MaxAbsDiff { max_diff: 0.0 }),
        ("strict (replica-grade, rtol 1e-5)", Metric::strict()),
        ("relaxed (heterogeneous, rtol 1e-3)", Metric::relaxed()),
    ] {
        let model = zoo::build(model_kind, ScaleProfile::Test, 42).expect("builds");
        let input = crate::costs::model_input(&model);
        let mut cfg = MvxConfig::fast_path(2);
        cfg.claims[1] =
            PartitionMvx { variants: 3, replicated: false, metric, intra_op_threads: 1 };
        let mut d = Deployment::builder(model)
            .config(cfg)
            .response(ResponsePolicy::ContinueWithMajority)
            .voting(VotingPolicy::Majority)
            .build()
            .expect("deploys");
        let ok = d.infer(&input).is_ok();
        let alarms = d.events().detection_count();
        d.shutdown();
        t.row(vec![
            label.to_string(),
            alarms.to_string(),
            if ok { "succeeds".into() } else { "halted".into() },
        ]);
    }
    t
}

/// Renders everything the instrumented crates recorded into the global
/// telemetry registry while the experiments ran: per-partition checkpoint
/// latency quantiles, voting path counts, divergence/crash counters and
/// crypto channel byte totals.
pub fn telemetry_report() -> String {
    // Register the runtime pool/cache and serving metrics up front
    // (PR 3 pattern): "the pool never went parallel" and "nothing was
    // ever shed" must appear as explicit zeros, not as missing rows.
    mvtee_runtime::register_runtime_metrics();
    mvtee_serve::register_serve_metrics();
    mvtee_telemetry::trace::register_trace_metrics();
    mvtee::transcript::register_audit_metrics();
    mvtee_telemetry::snapshot().render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_weight_fn_shows_balance_gain() {
        let s = Settings::quick();
        let t = ablation_weight_fn(&s);
        assert_eq!(t.len(), s.models.len() * 2);
    }

    #[test]
    fn ablation_metric_contrasts_thresholds() {
        let t = ablation_metric(&Settings::quick());
        let rendered = t.render();
        // The relaxed row must be alarm-free; the bit-exact row must show
        // the benign heterogeneous divergence as false alarms.
        let relaxed_line = rendered
            .lines()
            .find(|l| l.contains("relaxed"))
            .expect("relaxed row present");
        assert!(
            relaxed_line.split_whitespace().any(|w| w == "0"),
            "relaxed metric raised alarms: {rendered}"
        );
        let bitexact_line = rendered
            .lines()
            .find(|l| l.contains("bit-exact"))
            .expect("bit-exact row present");
        assert!(
            !bitexact_line.split_whitespace().any(|w| w == "0"),
            "bit-exact metric should alarm on heterogeneous variants: {rendered}"
        );
    }

    #[test]
    fn quick_fig9_has_expected_shape() {
        let s = Settings::quick();
        let t = fig9(&s);
        assert_eq!(t.len(), s.models.len() * 3);
    }

    #[test]
    fn table1_detects_every_class() {
        let s = Settings::quick();
        let t = table1(&s);
        let rendered = t.render();
        assert!(!rendered.contains("MISSED"), "undetected exploit:\n{rendered}");
        assert!(t.len() >= 12, "expected at least two defenders per class");
    }

    #[test]
    fn security_faults_detected() {
        let s = Settings::quick();
        let t = security_faults(&s);
        let rendered = t.render();
        assert!(!rendered.contains("MISSED"), "undetected fault:\n{rendered}");
    }
}
