//! The `trace` experiment: end-to-end tracing, flight recorder, and
//! Merkle-chained audit transcripts.
//!
//! Three gates, all of which must hold for the run to pass:
//!
//! * **Transcript determinism** — the rendered audit transcript of a
//!   fault-free run is byte-identical across two independent builds of
//!   the same seed, and identical whether tracing is on or off.
//! * **Tracing is inert** — inference outputs are byte-identical with
//!   the recorder enabled and disabled; tracing observes, never
//!   perturbs.
//! * **Self-audit** — the produced transcript replays cleanly through
//!   [`mvtee::transcript::verify_transcript`], and a divergence-injected
//!   serve run leaves a flight-recorder dump whose events link the
//!   serve-side request root (`serve.submit`) to the quarantining
//!   checkpoint verdict (`core.event.divergence`) by shared trace id.
//!
//! Artifacts: the Merkle transcript (`AUDIT_transcript.jsonl`, verified
//! by `experiments audit`) and a Chrome-trace/Perfetto timeline
//! (`TRACE_run.json`).

use mvtee::config::{DegradationPolicy, MvxConfig, PartitionMvx, RecoveryPolicy, ResponsePolicy};
use mvtee::transcript::verify_transcript;
use mvtee::Deployment;
use mvtee_faults::{BitFlipFault, BitFlipStrategy};
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_serve::{ReplicaPool, RequestOutcome, ServeConfig, ServeFrontend};
use mvtee_telemetry::trace::{self, FlightDump, TraceEvent};
use mvtee_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Partitions in the traced deployment.
const PARTITIONS: usize = 2;
/// Replicated panel size per partition.
const PANEL: usize = 3;
/// Model key of the divergence-probe pool.
const MODEL_KEY: &str = "traced";

/// Trace experiment parameters.
#[derive(Debug, Clone)]
pub struct TraceSettings {
    /// Master seed: weights, inputs, and diversification derive from it.
    pub seed: u64,
    /// Batches pushed through the traced fault-free deployment.
    pub batches: usize,
    /// Run the divergence-injected serve probe (flight-recorder gate).
    pub probe_divergence: bool,
    /// Zoo model under trace.
    pub model: ModelKind,
    /// Zoo scale.
    pub profile: ScaleProfile,
}

impl TraceSettings {
    /// CI smoke configuration.
    pub fn quick(seed: u64) -> Self {
        TraceSettings {
            seed,
            batches: 6,
            probe_divergence: true,
            model: ModelKind::MnasNet,
            profile: ScaleProfile::Test,
        }
    }

    /// Full configuration: more batches through the same gates.
    pub fn full(seed: u64) -> Self {
        TraceSettings { batches: 16, ..Self::quick(seed) }
    }
}

/// What the divergence-injected serve probe observed.
#[derive(Debug, Clone)]
pub struct DivergenceProbe {
    /// Quarantines recorded on the faulted replica.
    pub quarantines: usize,
    /// A flight dump containing the divergence verdict was captured.
    pub dump_found: bool,
    /// That dump also contains the serve-side request root with the
    /// same trace id — the chain reaches Ticket → verdict.
    pub chain_linked: bool,
    /// The matched dump (for the artifact), when found.
    pub dump: Option<FlightDump>,
}

/// Everything the trace experiment produced.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// The master seed.
    pub seed: u64,
    /// The run-configuration fingerprint welded into the transcript.
    pub fingerprint: String,
    /// Batches in the fault-free run.
    pub batches: usize,
    /// The rendered Merkle transcript of the traced run.
    pub transcript: String,
    /// Transcript of an independent second build was byte-identical.
    pub transcript_repeatable: bool,
    /// Transcript of an untraced run was byte-identical (the chain does
    /// not depend on the recorder).
    pub transcript_tracing_invariant: bool,
    /// Outputs with tracing on matched the untraced run bit-for-bit.
    pub outputs_inert: bool,
    /// Entries the self-audit verified (0 when the audit failed).
    pub audit_entries: usize,
    /// The self-audit failure, if any.
    pub audit_error: Option<String>,
    /// Trace events captured during the traced run.
    pub events_recorded: usize,
    /// The captured events (for the Chrome-trace artifact).
    pub events: Vec<TraceEvent>,
    /// The divergence probe, when requested.
    pub probe: Option<DivergenceProbe>,
}

impl TraceReport {
    /// The gate CI holds the run to.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        if !self.transcript_repeatable {
            failures.push("transcript differs across two builds of the same seed".into());
        }
        if !self.transcript_tracing_invariant {
            failures.push("transcript differs between traced and untraced runs".into());
        }
        if !self.outputs_inert {
            failures.push("tracing perturbed inference outputs".into());
        }
        if let Some(e) = &self.audit_error {
            failures.push(format!("self-audit rejected the transcript: {e}"));
        }
        if self.events_recorded == 0 {
            failures.push("traced run recorded no events".into());
        }
        if let Some(probe) = &self.probe {
            if probe.quarantines == 0 {
                failures.push("divergence probe produced no quarantine".into());
            }
            if !probe.dump_found {
                failures.push("no flight dump captured the divergence verdict".into());
            }
            if !probe.chain_linked {
                failures.push(
                    "flight dump does not link the serve request root to the verdict".into(),
                );
            }
        }
        failures
    }

    /// Human-readable summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# trace seed={} fingerprint={} batches={}",
            self.seed, self.fingerprint, self.batches
        );
        let _ = writeln!(
            out,
            "transcript: {} line(s); repeatable={} tracing-invariant={} outputs-inert={}",
            self.transcript.lines().count(),
            self.transcript_repeatable,
            self.transcript_tracing_invariant,
            self.outputs_inert
        );
        match &self.audit_error {
            None => {
                let _ = writeln!(out, "self-audit: ok ({} entries)", self.audit_entries);
            }
            Some(e) => {
                let _ = writeln!(out, "self-audit: FAILED ({e})");
            }
        }
        let _ = writeln!(out, "trace events recorded: {}", self.events_recorded);
        if let Some(p) = &self.probe {
            let _ = writeln!(
                out,
                "divergence probe: {} quarantine(s); dump_found={} chain_linked={}",
                p.quarantines, p.dump_found, p.chain_linked
            );
        }
        for f in self.gate_failures() {
            let _ = writeln!(out, "GATE: {f}");
        }
        out
    }

    /// The Chrome-trace/Perfetto artifact (`TRACE_run.json`) with a
    /// metadata stamp in `otherData`, plus the flight-dump events of the
    /// divergence probe appended on their own track when present.
    pub fn render_chrome_trace(&self) -> String {
        let mut events = self.events.clone();
        if let Some(DivergenceProbe { dump: Some(dump), .. }) = &self.probe {
            for e in &dump.events {
                let mut e = e.clone();
                e.track = format!("flight:{}", e.track);
                events.push(e);
            }
        }
        let body = trace::chrome_trace(&events);
        let stamped = body
            .strip_suffix('}')
            .map(|prefix| {
                format!(
                    "{prefix},\"otherData\":{{\"schema\":\"mvtee-trace-v1\",\"seed\":{},\
                     \"fingerprint\":\"{}\",\"threads\":{}}}}}",
                    self.seed,
                    self.fingerprint,
                    std::thread::available_parallelism().map_or(1, usize::from)
                )
            })
            .unwrap_or(body);
        stamped
    }
}

/// The run-configuration fingerprint welded into the transcript header:
/// model name, graph content hash, and the panel shape.
fn config_fingerprint(model: &zoo::Model) -> String {
    format!(
        "{}-{:016x}-p{}x{}",
        model.kind.display_name(),
        mvtee_runtime::graph_fingerprint(&model.graph),
        PARTITIONS,
        PANEL
    )
}

/// The MVX config under trace: replicated 2-of-3 panels, majority
/// response, recovery enabled (the serve experiment's shape, so traced
/// spans cover the same paths CI already exercises).
fn trace_mvx() -> MvxConfig {
    let mut mvx = MvxConfig::fast_path(PARTITIONS);
    for claim in &mut mvx.claims {
        *claim = PartitionMvx::replicated(PANEL);
    }
    mvx.response = ResponsePolicy::ContinueWithMajority;
    mvx.degradation = DegradationPolicy::Degrade;
    mvx.recovery = RecoveryPolicy::enabled();
    mvx
}

/// The deterministic input of batch `index`.
fn trace_input(seed: u64, model: &zoo::Model, index: u64) -> Tensor {
    let n = model.input_shape.num_elements();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7ace_u64 ^ index);
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Tensor::from_vec(data, model.input_shape.dims()).expect("static input shape")
}

/// One fault-free run: builds a fresh deployment, pushes `batches`
/// inputs through it (recorder enabled or not), and returns the outputs,
/// the rendered transcript, and the captured trace events.
fn traced_run(s: &TraceSettings, enable: bool) -> (Vec<Tensor>, String, Vec<TraceEvent>) {
    let model = zoo::build(s.model, s.profile, s.seed).expect("zoo model builds");
    let fingerprint = config_fingerprint(&model);
    let inputs: Vec<Tensor> =
        (0..s.batches as u64).map(|i| trace_input(s.seed, &model, i)).collect();
    let mut dep = Deployment::builder(model)
        .config(trace_mvx())
        .partition_seed(s.seed)
        .variant_seed(s.seed)
        .build()
        .expect("traced deployment builds");
    let tracer = trace::recorder();
    tracer.clear();
    tracer.set_enabled(enable);
    let outputs: Vec<Tensor> =
        inputs.iter().map(|input| dep.infer(input).expect("traced inference")).collect();
    tracer.set_enabled(false);
    let events = tracer.snapshot();
    let transcript = dep.transcript().render(s.seed, &fingerprint);
    dep.shutdown();
    (outputs, transcript, events)
}

/// Bit-exact tensor equality (NaN-safe).
fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims()
        && a.data().iter().zip(b.data().iter()).all(|(p, q)| p.to_bits() == q.to_bits())
}

/// The divergence-injected serve probe: a 2-replica pool whose replica 0
/// carries weight bit flips on partition 1, driven until the checkpoint
/// quarantines the corrupted variant. Returns what the flight recorder
/// kept of the incident.
fn run_divergence_probe(s: &TraceSettings) -> DivergenceProbe {
    let model = zoo::build(s.model, s.profile, s.seed).expect("zoo model builds");
    let input = trace_input(s.seed, &model, 0);
    let flip = BitFlipFault { strategy: BitFlipStrategy::ExponentMsb, count: 3, seed: s.seed };
    let deployments = Deployment::builder(model)
        .config(trace_mvx())
        .partition_seed(s.seed)
        .variant_seed(s.seed)
        .build_many_with(2, move |r, b| if r == 0 { b.weight_fault(1, 0, flip) } else { b })
        .expect("probe pool builds");
    let pool = ReplicaPool::new(MODEL_KEY, deployments).expect("pool wraps deployments");
    let frontend = ServeFrontend::start(vec![pool], ServeConfig::default());
    let faulted = frontend.replica_events(MODEL_KEY, 0).expect("replica 0 exists");

    let tracer = trace::recorder();
    tracer.clear();
    tracer.set_enabled(true);
    // Sequential single requests tie-break to replica 0 (lowest index),
    // so the corrupted panel sees traffic immediately; majority response
    // keeps every request answered while the variant is quarantined.
    for _ in 0..8 {
        if let Ok(ticket) = frontend.handle().submit("auditor", MODEL_KEY, input.clone()) {
            if let Ok(resp) = ticket.wait() {
                let _ = matches!(resp.outcome, RequestOutcome::Ok(_));
            }
        }
        if !faulted.quarantines().is_empty() {
            break;
        }
    }
    tracer.set_enabled(false);
    let quarantines = faulted.quarantines().len();
    let dumps = tracer.dumps();
    frontend.shutdown();

    // The incident dump: it must hold the divergence verdict instant,
    // and the serve-side request root with the same trace id.
    let mut dump_found = false;
    let mut chain_linked = false;
    let mut matched = None;
    for dump in dumps {
        let Some(verdict) =
            dump.events.iter().find(|e| e.name == "core.event.divergence").cloned()
        else {
            continue;
        };
        dump_found = true;
        let linked = dump
            .events
            .iter()
            .any(|e| e.name == "serve.submit" && e.trace == verdict.trace);
        if linked {
            chain_linked = true;
            matched = Some(dump);
            break;
        }
        matched.get_or_insert(dump);
    }
    DivergenceProbe { quarantines, dump_found, chain_linked, dump: matched }
}

/// Runs the trace experiment.
pub fn run_trace(s: &TraceSettings) -> TraceReport {
    mvtee_telemetry::trace::register_trace_metrics();
    mvtee::transcript::register_audit_metrics();

    let model = zoo::build(s.model, s.profile, s.seed).expect("zoo model builds");
    let fingerprint = config_fingerprint(&model);
    drop(model);

    let (outputs_on, transcript_a, events) = traced_run(s, true);
    let (_, transcript_b, _) = traced_run(s, true);
    let (outputs_off, transcript_off, _) = traced_run(s, false);

    let (audit_entries, audit_error) = match verify_transcript(&transcript_a) {
        Ok(summary) => (summary.entries, None),
        Err(e) => (0, Some(e.to_string())),
    };

    let probe = s.probe_divergence.then(|| run_divergence_probe(s));

    TraceReport {
        seed: s.seed,
        fingerprint,
        batches: s.batches,
        transcript_repeatable: transcript_a == transcript_b,
        transcript_tracing_invariant: transcript_a == transcript_off,
        outputs_inert: outputs_on.len() == outputs_off.len()
            && outputs_on.iter().zip(&outputs_off).all(|(a, b)| bits_equal(a, b)),
        transcript: transcript_a,
        audit_entries,
        audit_error,
        events_recorded: events.len(),
        events,
        probe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_passes_every_gate() {
        // The divergence probe shares the process-global flight recorder
        // with other tests in this binary, so the unit test holds only
        // the deterministic gates; the CLI (and CI's trace-smoke job)
        // runs the full probe in its own process.
        let mut s = TraceSettings::quick(7);
        s.batches = 3;
        s.probe_divergence = false;
        let report = run_trace(&s);
        assert!(
            report.gate_failures().is_empty(),
            "gate failures: {:?}\n{}",
            report.gate_failures(),
            report.render_text()
        );
        assert!(report.transcript.contains("mvtee-audit-v1"));
        assert!(report.audit_entries >= 2 * s.batches, "one entry per partition per batch");
        let chrome = report.render_chrome_trace();
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"otherData\""));
    }
}
