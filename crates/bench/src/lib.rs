//! The MVTEE benchmark harness: regenerates every table and figure of the
//! paper's evaluation (§6).
//!
//! # Methodology
//!
//! The paper's testbed is a dual-socket 72-core Xeon; this reproduction
//! runs on whatever machine builds it (often a single core), where genuine
//! multi-core pipeline parallelism is unavailable. The harness therefore
//! separates *measurement* from *composition*:
//!
//! * [`costs`] measures every cost component **for real** through the real
//!   code paths — per-stage per-variant inference times on the diversified
//!   engines, AES-GCM-256 seal/open of the actual checkpoint payload
//!   bytes, serialization, and consistency-metric evaluation;
//! * [`sim`] composes those measured costs with a discrete-event pipeline
//!   simulator under the paper's resource model (each TEE on its own
//!   core, the monitor's coordinator a serial resource per stage), with
//!   per-batch jitter, for sequential and pipelined execution in sync and
//!   async cross-validation modes.
//!
//! Functional and security experiments (Table 1, fault injection, the
//! attested bootstrap) always run the **real threaded system** from the
//! `mvtee` crate.
//!
//! Run `cargo run --release -p mvtee-bench --bin experiments -- --help`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod cli;
pub mod coldstart;
pub mod costs;
pub mod dist;
pub mod experiments;
pub mod netchaos;
pub mod perf;
pub mod serve;
pub mod sim;
pub mod table;
pub mod trace;

/// The metadata stamp every `BENCH_*`/`TRACE_*` JSON artifact carries —
/// schema version, master seed, run-configuration fingerprint, and the
/// host's thread count — rendered as one `"meta"` member line.
pub fn meta_json_line(schema: &str, seed: u64, fingerprint: &str) -> String {
    format!(
        "  \"meta\": {{\"schema\": \"{schema}\", \"seed\": {seed}, \
         \"fingerprint\": \"{fingerprint}\", \"threads\": {}}},\n",
        std::thread::available_parallelism().map_or(1, usize::from)
    )
}
