//! The chaos storm experiment: simultaneous multi-family faults against a
//! self-healing deployment.
//!
//! Each seeded scenario launches one deployment with a replicated panel of
//! three on *every* partition and injects three faults at once, one family
//! per partition:
//!
//! * a **weight bit flip** sealed into one variant's bundle (a value
//!   fault: divergence → quarantine → clean re-provision),
//! * a **scheduling stall** (hang) on one variant host (a liveness fault:
//!   watchdog deadline → late dissent → quarantine),
//! * a **lossy response channel** (drop or truncation) on one variant
//!   host (a one-shot liveness fault).
//!
//! The scenario then streams batches and holds the deployment to the
//! self-healing invariant: every forwarded output stays bit-identical to
//! an unfaulted oracle, every quarantined variant is re-provisioned
//! ([`mvtee::MonitorEvent::Recovered`]), no recovery exhausts its retry
//! budget, and every faulted partition records a post-quarantine
//! checkpoint pass at **full** panel strength. A scenario that has not
//! healed within the batch cap is a finding, not a wait.

use mvtee::config::{DegradationPolicy, MvxConfig, PartitionMvx, RecoveryPolicy, ResponsePolicy};
use mvtee::deployment::Deployment;
use mvtee::MonitorEvent;
use mvtee_faults::{
    BitFlipFault, BitFlipStrategy, ChannelFault, ChannelFaultMode, LivenessFault, StallFault,
    StallMode,
};
use mvtee_graph::zoo::{self, Model, ModelKind, ScaleProfile};
use mvtee_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Partitions per chaos deployment (one fault family each).
const PARTITIONS: usize = 3;
/// Panel size on every partition: 2-of-3 keeps a strict majority while any
/// one member is quarantined.
const PANEL: usize = 3;
/// Checkpoint deadline driving the straggler watchdog.
const DEADLINE_MS: u64 = 300;
/// Batches streamed before the heal check starts.
const MIN_BATCHES: u64 = 6;
/// Hard cap on batches streamed while waiting for the panel to heal.
const BATCH_CAP: u64 = 48;
/// Inputs cycle with this period (stale frames cannot impersonate fresh
/// ones; the oracle stays a constant-size prefix).
const INPUT_PERIOD: u64 = 3;

/// Chaos experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Master seed: determines every scenario.
    pub seed: u64,
    /// Number of seeded storm scenarios.
    pub scenarios: u64,
    /// Zoo scale.
    pub profile: ScaleProfile,
}

impl ChaosConfig {
    /// The default chaos campaign: 32 seeded storms at test scale.
    pub fn new(seed: u64) -> Self {
        ChaosConfig { seed, scenarios: 32, profile: ScaleProfile::Test }
    }
}

/// One scenario's result.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Scenario index.
    pub index: u64,
    /// Batches streamed before the panel healed (or the cap).
    pub batches: u64,
    /// Quarantine events observed.
    pub quarantined: usize,
    /// Recovery completions observed.
    pub recovered: usize,
    /// Failure description; `None` when the invariant held.
    pub failure: Option<String>,
}

/// Full chaos campaign result.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The master seed.
    pub seed: u64,
    /// Per-scenario outcomes, in order.
    pub outcomes: Vec<ChaosOutcome>,
}

impl ChaosReport {
    /// The failed scenarios.
    pub fn failures(&self) -> Vec<&ChaosOutcome> {
        self.outcomes.iter().filter(|o| o.failure.is_some()).collect()
    }

    /// Human-readable summary, one line per scenario.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# chaos seed={} scenarios={} → {} failed",
            self.seed,
            self.outcomes.len(),
            self.failures().len()
        );
        for o in &self.outcomes {
            let verdict = match &o.failure {
                None => "healed".to_string(),
                Some(reason) => format!("FAILED: {reason}"),
            };
            let _ = writeln!(
                out,
                "scenario {:>3}: batches={:<3} quarantined={} recovered={} → {}",
                o.index, o.batches, o.quarantined, o.recovered, verdict
            );
        }
        out
    }
}

/// The deterministic input of chaos batch `batch`.
fn chaos_input(seed: u64, model: &Model, batch: u64) -> Tensor {
    let n = model.input_shape.num_elements();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a05_u64 ^ (batch % INPUT_PERIOD));
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Tensor::from_vec(data, model.input_shape.dims()).expect("static input shape")
}

/// Bit-exact tensor equality (NaN-safe, unlike `f32` comparison).
fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims()
        && a.data().iter().zip(b.data().iter()).all(|(p, q)| p.to_bits() == q.to_bits())
}

/// Runs one seeded storm. Returns `Ok(batches_streamed)` once the panel
/// healed, `Err(reason)` on any invariant violation.
fn run_storm(cfg: &ChaosConfig, index: u64, events_out: &mut (usize, usize)) -> Result<u64, String> {
    let scenario_seed = cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(index);
    let mut rng = StdRng::seed_from_u64(scenario_seed);

    const KINDS: [ModelKind; 3] = [ModelKind::MnasNet, ModelKind::GoogleNet, ModelKind::MobileNetV3];
    let kind = KINDS[(index % KINDS.len() as u64) as usize];

    // One fault family per partition, assignment shuffled by the seed.
    let mut slots = [0usize, 1, 2];
    for i in (1..slots.len()).rev() {
        slots.swap(i, rng.gen_range(0..=i));
    }
    let (p_flip, p_stall, p_chan) = (slots[0], slots[1], slots[2]);
    let flip = BitFlipFault {
        strategy: BitFlipStrategy::ExponentMsb,
        count: 3,
        seed: rng.gen_range(0..1024),
    };
    let stall = StallFault { from_batch: rng.gen_range(1..=2), mode: StallMode::Hang };
    let chan = ChannelFault {
        on_batch: rng.gen_range(1..=3),
        mode: if rng.gen_bool(0.5) { ChannelFaultMode::Drop } else { ChannelFaultMode::Truncate },
    };
    let v_stall = rng.gen_range(0..PANEL);
    let v_chan = rng.gen_range(0..PANEL);

    let mut mvx = MvxConfig::fast_path(PARTITIONS);
    for claim in &mut mvx.claims {
        *claim = PartitionMvx::replicated(PANEL);
    }
    mvx.response = ResponsePolicy::ContinueWithMajority;
    mvx.degradation = DegradationPolicy::Degrade;
    mvx.recovery = RecoveryPolicy::enabled();
    mvx.checkpoint_deadline_ms = DEADLINE_MS;

    let model = zoo::build(kind, cfg.profile, scenario_seed).map_err(|e| e.to_string())?;
    let inputs: Vec<Tensor> =
        (0..INPUT_PERIOD).map(|b| chaos_input(scenario_seed, &model, b)).collect();

    // The correctness oracle: the identical deployment without the storm.
    let mut clean = Deployment::builder(model)
        .config(mvx.clone())
        .build()
        .map_err(|e| e.to_string())?;
    let mut expected = Vec::with_capacity(inputs.len());
    for input in &inputs {
        expected.push(clean.infer(input).map_err(|e| format!("oracle run failed: {e}"))?);
    }
    clean.shutdown();

    let model = zoo::build(kind, cfg.profile, scenario_seed).map_err(|e| e.to_string())?;
    let mut d = Deployment::builder(model)
        .config(mvx)
        .weight_fault(p_flip, 0, flip)
        .liveness_fault(p_stall, v_stall, LivenessFault::Stall(stall))
        .liveness_fault(p_chan, v_chan, LivenessFault::Channel(chan))
        .build()
        .map_err(|e| e.to_string())?;

    let mut result: Option<Result<u64, String>> = None;
    for b in 0..BATCH_CAP {
        let idx = (b % INPUT_PERIOD) as usize;
        match d.infer(&inputs[idx]) {
            Ok(out) if !bits_equal(&out, &expected[idx]) => {
                result = Some(Err(format!("batch {b} output diverged from the oracle")));
                break;
            }
            Ok(_) => {}
            Err(e) => {
                result = Some(Err(format!("batch {b} failed: {e}")));
                break;
            }
        }
        if b + 1 < MIN_BATCHES {
            continue;
        }
        let events = d.events();
        if let Some(failed) = events.events().iter().find_map(|e| match e {
            MonitorEvent::RecoveryFailed { partition, variant, attempts, reason } => {
                Some(format!("recovery of p{partition}v{variant} exhausted {attempts} attempts: {reason}"))
            }
            _ => None,
        }) {
            result = Some(Err(failed));
            break;
        }
        let quarantines = events.quarantines();
        let recoveries = events.recoveries();
        let passes = events.checkpoint_passes();
        events_out.0 = quarantines.len();
        events_out.1 = recoveries.len();
        // Both liveness faults must have tripped the watchdog, every
        // quarantined slot must have been re-provisioned, and each
        // wounded partition must have passed a checkpoint at full
        // strength after its last quarantine.
        let liveness_fired = quarantines.iter().any(|&(p, _, _)| p == p_stall)
            && quarantines.iter().any(|&(p, _, _)| p == p_chan);
        let healed = quarantines.iter().all(|&(p, v, _)| recoveries.contains(&(p, v)))
            && (0..PARTITIONS).all(|p| {
                match quarantines.iter().filter(|&&(qp, _, _)| qp == p).map(|&(_, _, qb)| qb).max()
                {
                    None => true,
                    Some(last_qb) => passes
                        .iter()
                        .any(|&(pp, pb, agreeing)| pp == p && pb > last_qb && agreeing == PANEL),
                }
            });
        if liveness_fired && healed {
            result = Some(Ok(b + 1));
            break;
        }
        // Recovery is asynchronous: give the manager a beat before the
        // next batch dispatches.
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    d.shutdown();
    result.unwrap_or_else(|| {
        Err(format!("panel never healed within {BATCH_CAP} batches"))
    })
}

/// Runs the chaos campaign: `cfg.scenarios` seeded storms, outcomes
/// mirrored onto the `chaos.*` telemetry counters.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let scenarios_ctr = mvtee_telemetry::counter("chaos.scenarios");
    let healed_ctr = mvtee_telemetry::counter("chaos.healed");
    let failed_ctr = mvtee_telemetry::counter("chaos.failed");
    let mut outcomes = Vec::with_capacity(cfg.scenarios as usize);
    for index in 0..cfg.scenarios {
        let mut counts = (0usize, 0usize);
        let (batches, failure) = match run_storm(cfg, index, &mut counts) {
            Ok(batches) => (batches, None),
            Err(reason) => (BATCH_CAP, Some(reason)),
        };
        scenarios_ctr.inc();
        if failure.is_none() { &healed_ctr } else { &failed_ctr }.inc();
        outcomes.push(ChaosOutcome {
            index,
            batches,
            quarantined: counts.0,
            recovered: counts.1,
            failure,
        });
    }
    ChaosReport { seed: cfg.seed, outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_storm_heals_and_returns_to_full_strength() {
        let cfg = ChaosConfig { seed: 7, scenarios: 1, profile: ScaleProfile::Test };
        let report = run_chaos(&cfg);
        assert_eq!(report.outcomes.len(), 1);
        let o = &report.outcomes[0];
        assert!(o.failure.is_none(), "storm failed: {:?}", o.failure);
        assert!(o.quarantined >= 2, "both liveness faults must trip the watchdog");
        assert_eq!(o.quarantined, o.recovered, "every quarantine must be recovered");
    }
}
