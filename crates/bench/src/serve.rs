//! The `serve` experiment: multi-tenant load against the serving
//! frontend (`mvtee-serve`).
//!
//! The experiment drives one frontend — admission queue → micro-batcher
//! → replica pool — with a closed-loop phase (each client keeps exactly
//! one request in flight) followed by an open-loop phase (fixed-rate
//! submission), and holds the run to the serving invariants:
//!
//! * **Byte-exact outputs** — every served tensor must match a serial
//!   single-request reference run bit-for-bit, which is what dynamic
//!   micro-batching must preserve (members stay individual pipeline
//!   batches; tensors are never fused).
//! * **Exactly-once accounting** — every admitted request resolves
//!   exactly once (served, failed, or expired); none are lost or
//!   double-served, even while a replica cycles through
//!   quarantine/recovery.
//! * **Recovery under load** — one replica carries a scheduled stall
//!   fault; the core watchdog must quarantine the wedged variant and
//!   the recovery manager must rejoin it while the pool keeps serving.
//!
//! Results land in `BENCH_serve.json` (throughput, p50/p95/p99
//! end-to-end latency, shed/expired counters, per-replica batch counts,
//! recovery counts) so future PRs have a serving trajectory to beat.

use mvtee::config::{DegradationPolicy, MvxConfig, PartitionMvx, RecoveryPolicy, ResponsePolicy};
use mvtee::Deployment;
use mvtee_faults::{LivenessFault, StallFault, StallMode};
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_serve::{QueueStats, RequestOutcome, ServeConfig, ServeFrontend, ReplicaPool};
use mvtee_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Partitions in the served model's MVX config.
const PARTITIONS: usize = 2;
/// Replicated panel size per partition (2-of-3 keeps a strict majority
/// while the faulted variant is quarantined).
const PANEL: usize = 3;
/// Checkpoint deadline driving the straggler watchdog.
const DEADLINE_MS: u64 = 300;
/// Distinct inputs cycled by the load generator (and pre-computed by
/// the serial reference run).
const INPUT_PERIOD: u64 = 8;
/// Model key the single pool serves.
const MODEL_KEY: &str = "zoo";

/// Serve experiment parameters.
#[derive(Debug, Clone)]
pub struct ServeSettings {
    /// Master seed: model weights, inputs, and diversification all
    /// derive from it.
    pub seed: u64,
    /// Pool size (the acceptance gate wants at least 2).
    pub replicas: usize,
    /// Distinct tenants cycling over the closed-loop clients.
    pub tenants: usize,
    /// Closed-loop client threads (one request in flight each).
    pub clients: usize,
    /// Requests per closed-loop client.
    pub requests_per_client: usize,
    /// Open-loop submissions after the closed-loop phase.
    pub open_loop_requests: usize,
    /// Open-loop submission rate, requests per second.
    pub open_loop_rate: f64,
    /// Inject a stall fault into replica 0 so quarantine/recovery is
    /// exercised under load.
    pub inject_recovery: bool,
    /// Zoo model served by the pool.
    pub model: ModelKind,
    /// Zoo scale.
    pub profile: ScaleProfile,
}

impl ServeSettings {
    /// CI smoke configuration.
    pub fn quick(seed: u64) -> Self {
        ServeSettings {
            seed,
            replicas: 2,
            tenants: 3,
            clients: 4,
            requests_per_client: 24,
            open_loop_requests: 48,
            open_loop_rate: 400.0,
            inject_recovery: true,
            model: ModelKind::MnasNet,
            profile: ScaleProfile::Test,
        }
    }

    /// Full configuration: more replicas, more clients, more load.
    pub fn full(seed: u64) -> Self {
        ServeSettings {
            seed,
            replicas: 3,
            tenants: 6,
            clients: 8,
            requests_per_client: 48,
            open_loop_requests: 192,
            open_loop_rate: 600.0,
            inject_recovery: true,
            model: ModelKind::MnasNet,
            profile: ScaleProfile::Test,
        }
    }
}

/// Everything the serve experiment produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The master seed.
    pub seed: u64,
    /// Run-configuration fingerprint (model, graph hash, panel shape).
    pub fingerprint: String,
    /// Pool size.
    pub replicas: usize,
    /// Requests submitted (admitted + shed).
    pub submitted: u64,
    /// Requests that produced an `Ok` tensor.
    pub completed: u64,
    /// Requests that resolved `Failed`.
    pub failed: u64,
    /// Requests that expired before dispatch.
    pub expired: u64,
    /// Admitted requests that never resolved (must be 0).
    pub lost: u64,
    /// Admitted requests that resolved more than once (must be 0).
    pub duplicated: u64,
    /// Served outputs that differed from the serial reference.
    pub mismatches: Vec<String>,
    /// Completed requests per wall-clock second of the load phases.
    pub throughput_rps: f64,
    /// Median end-to-end latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile end-to-end latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile end-to-end latency, milliseconds.
    pub p99_ms: f64,
    /// Micro-batches served by each replica.
    pub replica_batches: Vec<u64>,
    /// Requests served by each replica.
    pub replica_requests: Vec<u64>,
    /// Quarantine events observed on the faulted replica.
    pub quarantines: usize,
    /// Recovery completions observed on the faulted replica.
    pub recoveries: usize,
    /// Whether the run expected a recovery.
    pub recovery_expected: bool,
    /// Admission counters at the end of the run.
    pub queue: QueueStats,
}

impl ServeReport {
    /// Requests shed by admission control.
    pub fn shed(&self) -> u64 {
        self.queue.shed_queue_full + self.queue.shed_quota
    }

    /// The gate CI holds the smoke run to.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        if !self.mismatches.is_empty() {
            failures.push(format!(
                "{} output mismatch(es) vs the serial reference",
                self.mismatches.len()
            ));
        }
        if self.lost > 0 {
            failures.push(format!("{} admitted request(s) were lost", self.lost));
        }
        if self.duplicated > 0 {
            failures.push(format!(
                "{} request(s) resolved more than once",
                self.duplicated
            ));
        }
        if self.replica_batches.contains(&0) {
            failures.push(format!(
                "idle replica: per-replica batches {:?}",
                self.replica_batches
            ));
        }
        if self.recovery_expected && (self.quarantines == 0 || self.recoveries == 0) {
            failures.push(format!(
                "expected quarantine+recovery under load, saw {} quarantine(s), {} recovery(ies)",
                self.quarantines, self.recoveries
            ));
        }
        failures
    }

    /// Human-readable summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# serve seed={} replicas={} → {} submitted, {} completed, {} failed, {} expired, {} shed",
            self.seed, self.replicas, self.submitted, self.completed, self.failed,
            self.expired, self.shed(),
        );
        let _ = writeln!(
            out,
            "throughput: {:.1} req/s; e2e latency p50={:.2} ms p95={:.2} ms p99={:.2} ms",
            self.throughput_rps, self.p50_ms, self.p95_ms, self.p99_ms
        );
        let _ = writeln!(
            out,
            "per-replica batches: {:?}; per-replica requests: {:?}",
            self.replica_batches, self.replica_requests
        );
        let _ = writeln!(
            out,
            "faulted replica: {} quarantine(s), {} recovery(ies); lost={} duplicated={}",
            self.quarantines, self.recoveries, self.lost, self.duplicated
        );
        for m in &self.mismatches {
            let _ = writeln!(out, "MISMATCH: {m}");
        }
        for f in self.gate_failures() {
            let _ = writeln!(out, "GATE: {f}");
        }
        out
    }

    /// The machine-readable report (`BENCH_serve.json`).
    pub fn render_json(&self) -> String {
        let list = |v: &[u64]| {
            v.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
        };
        let mut out = String::from("{\n  \"schema\": \"mvtee-bench-serve-v1\",\n");
        out.push_str(&crate::meta_json_line(
            "mvtee-bench-serve-v1",
            self.seed,
            &self.fingerprint,
        ));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"replicas\": {},\n", self.replicas));
        out.push_str(&format!(
            "  \"requests\": {{\"submitted\": {}, \"completed\": {}, \"failed\": {}, \
             \"expired\": {}, \"shed\": {}, \"shed_queue_full\": {}, \"shed_quota\": {}, \
             \"lost\": {}, \"duplicated\": {}}},\n",
            self.submitted,
            self.completed,
            self.failed,
            self.expired,
            self.shed(),
            self.queue.shed_queue_full,
            self.queue.shed_quota,
            self.lost,
            self.duplicated,
        ));
        out.push_str(&format!(
            "  \"throughput_rps\": {:.2},\n  \"latency_ms\": {{\"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}}},\n",
            self.throughput_rps, self.p50_ms, self.p95_ms, self.p99_ms
        ));
        out.push_str(&format!(
            "  \"replica_batches\": [{}],\n  \"replica_requests\": [{}],\n",
            list(&self.replica_batches),
            list(&self.replica_requests)
        ));
        out.push_str(&format!(
            "  \"recovery\": {{\"expected\": {}, \"quarantines\": {}, \"recoveries\": {}}},\n",
            self.recovery_expected, self.quarantines, self.recoveries
        ));
        out.push_str(&format!("  \"mismatch_count\": {}\n}}\n", self.mismatches.len()));
        out
    }
}

/// The deterministic input of load-generator slot `index`.
fn serve_input(seed: u64, model: &zoo::Model, index: u64) -> Tensor {
    let n = model.input_shape.num_elements();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e7e_u64 ^ (index % INPUT_PERIOD));
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Tensor::from_vec(data, model.input_shape.dims()).expect("static input shape")
}

/// Bit-exact tensor equality (NaN-safe).
fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims()
        && a.data().iter().zip(b.data().iter()).all(|(p, q)| p.to_bits() == q.to_bits())
}

/// Nearest-rank quantile over an unsorted latency sample, milliseconds.
fn quantile_ms(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// The MVX config every replica (and the serial reference) runs:
/// replicated 2-of-3 panels on both partitions, majority response, and
/// recovery enabled — replicated panels make replica outputs
/// byte-identical to the reference regardless of per-replica variant
/// seeds.
fn serve_mvx() -> MvxConfig {
    let mut mvx = MvxConfig::fast_path(PARTITIONS);
    for claim in &mut mvx.claims {
        *claim = PartitionMvx::replicated(PANEL);
    }
    mvx.response = ResponsePolicy::ContinueWithMajority;
    mvx.degradation = DegradationPolicy::Degrade;
    mvx.recovery = RecoveryPolicy::enabled();
    mvx.checkpoint_deadline_ms = DEADLINE_MS;
    mvx
}

/// One response observed by the load generator.
struct Observed {
    id: u64,
    input_index: u64,
    outcome: RequestOutcome,
    replica: Option<usize>,
    latency: Duration,
}

/// Runs the serve experiment.
pub fn run_serve(s: &ServeSettings) -> ServeReport {
    mvtee_serve::register_serve_metrics();

    // The serial single-request reference: a clean deployment of the
    // identical configuration answering each distinct input once.
    let model = zoo::build(s.model, s.profile, s.seed).expect("zoo model builds");
    let fingerprint = format!(
        "{}-{:016x}-p{}x{}",
        model.kind.display_name(),
        mvtee_runtime::graph_fingerprint(&model.graph),
        PARTITIONS,
        PANEL
    );
    let inputs: Vec<Tensor> =
        (0..INPUT_PERIOD).map(|i| serve_input(s.seed, &model, i)).collect();
    let mut reference_dep = Deployment::builder(model)
        .config(serve_mvx())
        .partition_seed(s.seed)
        .variant_seed(s.seed)
        .build()
        .expect("reference deployment builds");
    let reference: Vec<Tensor> = inputs
        .iter()
        .map(|input| reference_dep.infer(input).expect("reference inference"))
        .collect();
    reference_dep.shutdown();

    // The pool: `replicas` deployments from one builder. Replica 0
    // optionally carries a stall fault on partition 1 so the straggler
    // watchdog quarantines a variant mid-burst and the recovery manager
    // rejoins it while the pool serves.
    let model = zoo::build(s.model, s.profile, s.seed).expect("zoo model builds");
    let stall = LivenessFault::Stall(StallFault { from_batch: 2, mode: StallMode::Hang });
    let inject = s.inject_recovery;
    let deployments = Deployment::builder(model)
        .config(serve_mvx())
        .partition_seed(s.seed)
        .variant_seed(s.seed)
        .build_many_with(s.replicas, move |r, b| {
            if inject && r == 0 {
                b.liveness_fault(1, 0, stall)
            } else {
                b
            }
        })
        .expect("replica pool builds");
    let pool = ReplicaPool::new(MODEL_KEY, deployments).expect("pool wraps deployments");
    let frontend = ServeFrontend::start(vec![pool], ServeConfig::default());
    let faulted_events = frontend
        .replica_events(MODEL_KEY, 0)
        .expect("replica 0 exists");

    let load_start = Instant::now();

    // Closed-loop phase: `clients` threads, one request in flight each,
    // cycling tenants and a seeded per-client input schedule.
    let mut observed: Vec<Observed> = Vec::new();
    let mut client_threads = Vec::new();
    for c in 0..s.clients {
        let handle = frontend.handle();
        let inputs = inputs.clone();
        let tenant = format!("tenant-{}", c % s.tenants.max(1));
        let per_client = s.requests_per_client;
        let seed = s.seed;
        client_threads.push(std::thread::spawn(move || {
            let mut got: Vec<Observed> = Vec::new();
            let mut rng = StdRng::seed_from_u64(seed ^ ((c as u64) << 17));
            for _ in 0..per_client {
                let input_index = rng.gen_range(0..INPUT_PERIOD);
                match handle.submit(&tenant, MODEL_KEY, inputs[input_index as usize].clone())
                {
                    Ok(ticket) => {
                        let id = ticket.id;
                        match ticket.wait() {
                            Ok(resp) => got.push(Observed {
                                id,
                                input_index,
                                outcome: resp.outcome,
                                replica: resp.replica,
                                latency: resp.latency,
                            }),
                            Err(_) => got.push(Observed {
                                id,
                                input_index,
                                outcome: RequestOutcome::Failed(
                                    "ticket disconnected".to_string(),
                                ),
                                replica: None,
                                latency: Duration::ZERO,
                            }),
                        }
                    }
                    Err(_reason) => { /* shed at the door; counted via QueueStats */ }
                }
            }
            got
        }));
    }
    for t in client_threads {
        observed.extend(t.join().expect("closed-loop client"));
    }

    // Open-loop phase: fixed-rate submission from one thread; tickets
    // resolve concurrently and are all awaited at the end.
    let interval = Duration::from_secs_f64(1.0 / s.open_loop_rate.max(1.0));
    let mut pending = Vec::with_capacity(s.open_loop_requests);
    let handle = frontend.handle();
    let open_start = Instant::now();
    for i in 0..s.open_loop_requests {
        let input_index = (i as u64) % INPUT_PERIOD;
        let tenant = format!("tenant-{}", i % s.tenants.max(1));
        match handle.submit(&tenant, MODEL_KEY, inputs[input_index as usize].clone()) {
            Ok(ticket) => pending.push((input_index, ticket)),
            Err(_reason) => {}
        }
        let next = open_start + interval * (i as u32 + 1);
        if let Some(sleep) = next.checked_duration_since(Instant::now()) {
            std::thread::sleep(sleep);
        }
    }
    for (input_index, ticket) in pending {
        let id = ticket.id;
        match ticket.wait() {
            Ok(resp) => observed.push(Observed {
                id,
                input_index,
                outcome: resp.outcome,
                replica: resp.replica,
                latency: resp.latency,
            }),
            Err(_) => observed.push(Observed {
                id,
                input_index,
                outcome: RequestOutcome::Failed("ticket disconnected".to_string()),
                replica: None,
                latency: Duration::ZERO,
            }),
        }
    }
    let load_elapsed = load_start.elapsed();

    // Keep a trickle of probe traffic flowing until the faulted replica
    // records a recovery (probation needs fresh checkpoints to vote
    // against); probes obey the same byte-exactness check.
    if s.inject_recovery {
        for probe in 0..200u64 {
            if !faulted_events.recoveries().is_empty() {
                break;
            }
            let input_index = probe % INPUT_PERIOD;
            if let Ok(ticket) =
                handle.submit("probe", MODEL_KEY, inputs[input_index as usize].clone())
            {
                let id = ticket.id;
                if let Ok(resp) = ticket.wait() {
                    observed.push(Observed {
                        id,
                        input_index,
                        outcome: resp.outcome,
                        replica: resp.replica,
                        latency: resp.latency,
                    });
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    // Verify: exactly-once ids, byte-exact outputs.
    let mut ids: Vec<u64> = observed.iter().map(|o| o.id).collect();
    ids.sort_unstable();
    let duplicated = ids.windows(2).filter(|w| w[0] == w[1]).count() as u64;
    let mut mismatches = Vec::new();
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut expired = 0u64;
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(observed.len());
    for o in &observed {
        match &o.outcome {
            RequestOutcome::Ok(tensor) => {
                completed += 1;
                latencies_ms.push(o.latency.as_secs_f64() * 1e3);
                if !bits_equal(tensor, &reference[o.input_index as usize]) {
                    mismatches.push(format!(
                        "request {} (input {}, replica {:?}) differs from the serial reference",
                        o.id, o.input_index, o.replica
                    ));
                }
            }
            RequestOutcome::Failed(_) => failed += 1,
            RequestOutcome::Expired => expired += 1,
        }
    }

    let quarantines = faulted_events.quarantines().len();
    let recoveries = faulted_events.recoveries().len();
    let queue = frontend.queue_stats();
    let pool_stats = frontend.pool_stats(MODEL_KEY).expect("pool exists");
    let lost = queue.admitted.saturating_sub(observed.len() as u64);
    frontend.shutdown();

    let throughput = if load_elapsed.as_secs_f64() > 0.0 {
        completed as f64 / load_elapsed.as_secs_f64()
    } else {
        0.0
    };
    ServeReport {
        seed: s.seed,
        fingerprint,
        replicas: s.replicas,
        submitted: queue.submitted,
        completed,
        failed,
        expired,
        lost,
        duplicated,
        mismatches,
        throughput_rps: throughput,
        p50_ms: quantile_ms(&mut latencies_ms.clone(), 0.50),
        p95_ms: quantile_ms(&mut latencies_ms.clone(), 0.95),
        p99_ms: quantile_ms(&mut latencies_ms, 0.99),
        replica_batches: pool_stats.served_batches,
        replica_requests: pool_stats.served_requests,
        quarantines,
        recoveries,
        recovery_expected: s.inject_recovery,
        queue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_passes_every_gate() {
        let mut s = ServeSettings::quick(7);
        s.clients = 2;
        s.requests_per_client = 8;
        s.open_loop_requests = 8;
        let report = run_serve(&s);
        assert!(
            report.gate_failures().is_empty(),
            "gate failures: {:?}\n{}",
            report.gate_failures(),
            report.render_text()
        );
        assert_eq!(report.shed(), 0, "smoke load must not shed");
        let json = report.render_json();
        assert!(json.contains("\"schema\": \"mvtee-bench-serve-v1\""));
        assert!(json.contains("\"mismatch_count\": 0"));
    }
}
