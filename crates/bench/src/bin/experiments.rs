//! The MVTEE experiment harness: regenerates every table and figure of the
//! paper's evaluation section.
//!
//! ```text
//! experiments [--quick] [--markdown] [--quiet] [fig9|fig10|fig11|fig12|fig13|fig14|table1|security|ablation|all]
//! experiments campaign [--seed N] [--count N] [--no-shrink]
//! experiments chaos [--seed N] [--scenarios N] [--quick]
//! experiments perf [--quick] [--out PATH]
//! experiments serve [--seed N] [--quick] [--out PATH]
//! experiments trace [--seed N] [--quick] [--out PATH] [--trace-out PATH]
//! experiments dist [--seed N] [--quick] [--out PATH]
//! experiments netchaos [--seed N] [--quick] [--out PATH]
//! experiments coldstart [--seed N] [--quick] [--out PATH]
//! experiments audit TRANSCRIPT
//! ```
//!
//! * `--quick` — Test-scale models and a subset (CI smoke).
//! * `--markdown` — emit GitHub-markdown tables (for `EXPERIMENTS.md`).
//! * `--quiet` — suppress progress/status chatter (stderr); machine
//!   payloads (stdout) and errors are never suppressed.
//! * default experiment selection: `all`.
//!
//! Output discipline: stdout carries only the deliverables — JSON
//! reports, figure tables, the audit summary — via `report!`; all
//! progress, human summaries, and telemetry chatter go to stderr via
//! `status!`, which `--quiet` silences. Errors always reach stderr.
//!
//! The `campaign` subcommand runs the seeded fault-injection campaign
//! (`mvtee-campaign`): prints the machine-readable JSON report, and
//! exits non-zero when any scenario violates the detection invariant
//! (MISSED).
//!
//! The `chaos` subcommand runs the self-healing storm campaign
//! (`mvtee_bench::chaos`): every seeded scenario injects a weight bit
//! flip, a hung variant, and a lossy channel into one deployment at
//! once, and the run exits non-zero unless every storm heals back to
//! full panel strength with oracle-identical outputs.
//!
//! The `perf` subcommand sweeps zoo model × engine family × intra-op
//! thread count through the deterministic runtime pool, writes
//! `BENCH_runtime.json` (p50/p95 + speedup vs threads=1), and exits
//! non-zero if any thread count produced output bytes different from
//! the single-thread baseline.
//!
//! The `serve` subcommand drives the multi-tenant serving frontend
//! (`mvtee-serve`) with closed- and open-loop load while one replica
//! cycles through quarantine/recovery, writes `BENCH_serve.json`
//! (throughput, p50/p95/p99 e2e latency, shed/expired counters), and
//! exits non-zero on any output mismatch vs the serial single-request
//! reference, any lost or double-served request, an unexercised
//! replica, a missing recovery — or, under `--quick` smoke load, any
//! shed request.
//!
//! The `trace` subcommand runs the tracing/audit experiment: a traced
//! fault-free run (transcript byte-identical across builds and with
//! tracing off; outputs byte-identical traced vs untraced; transcript
//! self-audits) plus a divergence-injected serve probe whose flight
//! dump must link the request root to the quarantining verdict. It
//! writes the Merkle transcript (`--out`, default
//! `AUDIT_transcript.jsonl`) and the Chrome-trace timeline
//! (`--trace-out`, default `TRACE_run.json`).
//!
//! The `dist` subcommand runs the distributed-MVX experiment: the same
//! panel all-in-process and with two variants hosted by real
//! `mvtee-variantd` worker processes over attested loopback TCP (the
//! workspace must be built so the worker binary exists, or
//! `MVTEE_VARIANTD` must point at it). It writes `BENCH_dist.json`
//! (per-batch wire bytes, round-trip p50/p95, heal-after-kill latency)
//! and exits non-zero on any byte mismatch between placements, any lost
//! batch after a worker kill, or a panel that fails to heal to full
//! strength.
//!
//! The `netchaos` subcommand runs the adversarial-transport experiment:
//! a seeded wire gauntlet over a faulted `SecureChannel` (eight
//! wire-fault classes; corruption must be AEAD-rejected at 100% and
//! nothing wrong may be accepted), deployment storms with each class on
//! a panel member's response wire (every storm must end detected+healed
//! with bit-correct outputs, or provably masked for a sub-deadline
//! delay), a crash-loop flap probe (a repeatedly killed worker must trip
//! the budget and degrade, not respawn forever), and a reconnect probe
//! (a severed supervised worker must rejoin without a respawn). It
//! writes `BENCH_netchaos.json` (per-class heal p50/p95,
//! injected-vs-detected counts, reconnect-vs-respawn split) and exits
//! non-zero on any byte mismatch, lost batch, missed detection, or
//! failed heal. The flap/reconnect probes need the built
//! `mvtee-variantd` worker binary, like `dist`.
//!
//! The `coldstart` subcommand runs the encrypted-model-registry
//! experiment (`mvtee-registry` + the serve cold-start path): tenants
//! upload models as chunked ciphertext over the attested provisioning
//! lane (with a wire tap proving no plaintext crosses the host), a torn
//! upload is resumed from its last verified chunk, a seeded
//! provisioning-fault sweep must be rejected at 100%, and every model is
//! then cold-started through the serving frontend and held byte-identical
//! (outputs *and* rendered audit transcript) to an in-memory reference.
//! It writes `BENCH_registry.json` (upload throughput, p50/p99
//! time-to-first-inference per model size, warm-vs-cold hit ratio,
//! eviction counts) and exits non-zero on any plaintext sighting,
//! accepted corrupt chunk, byte mismatch, failed resume, or missing
//! `ColdStart` shed under saturation.
//!
//! The `audit` subcommand replays a transcript's hash chain and exits
//! non-zero on any tamper or gap.

use mvtee_bench::chaos::{run_chaos, ChaosConfig};
use mvtee_bench::cli::{self, CommonArgs};
use mvtee_bench::coldstart::{run_coldstart, ColdstartSettings};
use mvtee_bench::dist::{run_dist, DistSettings};
use mvtee_bench::experiments::{
    ablation_metric, ablation_weight_fn, fig10, fig11, fig12, fig13, fig14, fig9,
    security_faults, table1, telemetry_report, Settings,
};
use mvtee_bench::netchaos::{run_netchaos, NetchaosSettings};
use mvtee_bench::perf::{run_perf, PerfSettings};
use mvtee_bench::serve::{run_serve, ServeSettings};
use mvtee_bench::table::Table;
use mvtee_bench::trace::{run_trace, TraceSettings};
use std::sync::atomic::{AtomicBool, Ordering};

/// Set once at startup by `--quiet`; gates every `status!` line.
static QUIET: AtomicBool = AtomicBool::new(false);

/// A machine payload or figure table: always printed, always stdout —
/// never interleaved with chatter.
macro_rules! report {
    ($($arg:tt)*) => { println!($($arg)*) };
}

/// Progress/status chatter: stderr, suppressed by `--quiet`.
macro_rules! status {
    ($($arg:tt)*) => {
        if !QUIET.load(Ordering::Relaxed) {
            eprintln!($($arg)*);
        }
    };
}

/// The `campaign` subcommand: runs the fault-injection campaign and exits
/// non-zero on any MISSED scenario.
fn run_campaign_command(args: &[String]) -> ! {
    let seed = CommonArgs::parse(args, 7).seed;
    let count = cli::flag_value(args, "--count", 64);
    let mut cfg = mvtee_campaign::CampaignConfig::new(seed, count);
    cfg.shrink = !cli::has_flag(args, "--no-shrink");
    status!("# running fault-injection campaign (seed={seed}, count={count}) …");
    let report = mvtee_campaign::run_campaign(&cfg);
    status!("{}", report.render_text());
    report!("{}", report.render_json());
    // What the instrumented pipeline recorded while the campaign ran —
    // including the `core.recovery.*` metrics, zero-valued when recovery
    // never fired (registered eagerly so absence is visible).
    status!("{}", telemetry_report());
    if report.matrix.total_missed() > 0 {
        eprintln!(
            "error: {} scenario(s) violated the detection invariant",
            report.matrix.total_missed()
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// The `chaos` subcommand: runs the self-healing storm campaign and exits
/// non-zero when any storm fails to heal.
fn run_chaos_command(args: &[String]) -> ! {
    let common = CommonArgs::parse(args, 7);
    let seed = common.seed;
    let mut cfg = ChaosConfig::new(seed);
    if common.quick {
        cfg.scenarios = 4; // CI smoke
    }
    cfg.scenarios = cli::flag_value(args, "--scenarios", cfg.scenarios);
    status!(
        "# running chaos storm campaign (seed={seed}, scenarios={}) …",
        cfg.scenarios
    );
    let report = run_chaos(&cfg);
    report!("{}", report.render_text());
    status!("{}", telemetry_report());
    let failed = report.failures().len();
    if failed > 0 {
        eprintln!("error: {failed} storm(s) failed to heal");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// The `perf` subcommand: runs the intra-op parallelism sweep, writes the
/// JSON report and exits non-zero on any cross-thread-count mismatch.
fn run_perf_command(args: &[String]) -> ! {
    let common = CommonArgs::parse(args, 7);
    let settings = if common.quick {
        PerfSettings::quick()
    } else {
        PerfSettings::full()
    };
    let out_path = common.out_or("BENCH_runtime.json");
    status!(
        "# running runtime perf sweep (threads {:?}, models {:?}) …",
        settings.threads,
        settings.models.iter().map(|m| m.display_name()).collect::<Vec<_>>(),
    );
    let report = run_perf(&settings);
    status!("{}", report.render_text());
    if let Err(e) = std::fs::write(&out_path, report.render_json()) {
        eprintln!("error: could not write {out_path}: {e}");
        std::process::exit(1);
    }
    status!("# wrote {out_path}");
    status!("{}", telemetry_report());
    if report.has_mismatch() {
        eprintln!(
            "error: {} cross-thread-count output mismatch(es) — the deterministic pool invariant is broken",
            report.mismatches.len()
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// The `serve` subcommand: runs the multi-tenant serving experiment,
/// writes the JSON report and exits non-zero when any serving invariant
/// broke (or anything was shed at smoke load).
fn run_serve_command(args: &[String]) -> ! {
    let common = CommonArgs::parse(args, 7);
    let (seed, quick) = (common.seed, common.quick);
    let settings = if quick {
        ServeSettings::quick(seed)
    } else {
        ServeSettings::full(seed)
    };
    let out_path = common.out_or("BENCH_serve.json");
    status!(
        "# running serve load experiment (seed={seed}, replicas={}, clients={}, open-loop {} req @ {} req/s) …",
        settings.replicas, settings.clients, settings.open_loop_requests, settings.open_loop_rate,
    );
    let report = run_serve(&settings);
    status!("{}", report.render_text());
    if let Err(e) = std::fs::write(&out_path, report.render_json()) {
        eprintln!("error: could not write {out_path}: {e}");
        std::process::exit(1);
    }
    status!("# wrote {out_path}");
    status!("{}", telemetry_report());
    let mut failures = report.gate_failures();
    if quick && report.shed() > 0 {
        failures.push(format!(
            "{} request(s) shed at smoke load (queue_full={}, quota={})",
            report.shed(),
            report.queue.shed_queue_full,
            report.queue.shed_quota
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("error: {f}");
        }
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// The `trace` subcommand: runs the tracing/audit experiment, writes the
/// Merkle transcript and the Chrome-trace timeline, and exits non-zero
/// when any trace gate failed.
fn run_trace_command(args: &[String]) -> ! {
    let common = CommonArgs::parse(args, 7);
    let seed = common.seed;
    let settings = if common.quick {
        TraceSettings::quick(seed)
    } else {
        TraceSettings::full(seed)
    };
    let out_path = common.out_or("AUDIT_transcript.jsonl");
    let trace_path = cli::flag_path(args, "--trace-out", "TRACE_run.json");
    status!(
        "# running trace/audit experiment (seed={seed}, batches={}) …",
        settings.batches
    );
    let report = run_trace(&settings);
    status!("{}", report.render_text());
    if let Err(e) = std::fs::write(&out_path, &report.transcript) {
        eprintln!("error: could not write {out_path}: {e}");
        std::process::exit(1);
    }
    status!("# wrote {out_path}");
    if let Err(e) = std::fs::write(&trace_path, report.render_chrome_trace()) {
        eprintln!("error: could not write {trace_path}: {e}");
        std::process::exit(1);
    }
    status!("# wrote {trace_path}");
    status!("{}", telemetry_report());
    let failures = report.gate_failures();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("error: {f}");
        }
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// The `dist` subcommand: runs the distributed-MVX conformance and heal
/// experiment, writes the JSON report and exits non-zero on any byte
/// mismatch across placements, lost batch, or failed heal.
fn run_dist_command(args: &[String]) -> ! {
    let common = CommonArgs::parse(args, 7);
    let seed = common.seed;
    let settings = if common.quick {
        DistSettings::quick(seed)
    } else {
        DistSettings::full(seed)
    };
    let out_path = common.out_or("BENCH_dist.json");
    status!(
        "# running distributed-MVX experiment (seed={seed}, batches={}, 2 worker processes + kill/heal probe) …",
        settings.batches
    );
    let report = run_dist(&settings);
    status!("{}", report.render_text());
    if let Err(e) = std::fs::write(&out_path, report.render_json()) {
        eprintln!("error: could not write {out_path}: {e}");
        std::process::exit(1);
    }
    status!("# wrote {out_path}");
    status!("{}", telemetry_report());
    let failures = report.gate_failures();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("error: {f}");
        }
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// The `netchaos` subcommand: runs the adversarial-transport experiment,
/// writes the JSON report and exits non-zero on any byte mismatch, lost
/// batch, missed detection, or failed heal.
fn run_netchaos_command(args: &[String]) -> ! {
    let common = CommonArgs::parse(args, 7);
    let seed = common.seed;
    let settings = if common.quick {
        NetchaosSettings::quick(seed)
    } else {
        NetchaosSettings::full(seed)
    };
    let out_path = common.out_or("BENCH_netchaos.json");
    status!(
        "# running adversarial-transport experiment (seed={seed}, {} gauntlet trial(s) and \
         {} storm(s) per wire-fault class, flap + reconnect probes) …",
        settings.gauntlet_trials,
        settings.storms_per_class
    );
    let report = run_netchaos(&settings);
    status!("{}", report.render_text());
    if let Err(e) = std::fs::write(&out_path, report.render_json()) {
        eprintln!("error: could not write {out_path}: {e}");
        std::process::exit(1);
    }
    status!("# wrote {out_path}");
    status!("{}", telemetry_report());
    let failures = report.gate_failures();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("error: {f}");
        }
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// The `coldstart` subcommand: runs the encrypted-model-registry
/// provisioning and cold-start-serving experiment, writes
/// `BENCH_registry.json` and exits non-zero on any plaintext-on-host
/// sighting, accepted corrupt chunk, cold-start byte mismatch (outputs
/// or rendered transcript), or failed torn-upload resume.
fn run_coldstart_command(args: &[String]) -> ! {
    let common = CommonArgs::parse(args, 7);
    let settings = if common.quick {
        ColdstartSettings::quick(common.seed)
    } else {
        ColdstartSettings::full(common.seed)
    };
    let out_path = common.out_or("BENCH_registry.json");
    status!(
        "# running registry coldstart experiment (seed={}, {} model(s), {} cold trial(s), \
         {} fault scenario(s)) …",
        settings.seed,
        settings.models.len(),
        settings.cold_trials,
        settings.fault_scenarios,
    );
    let report = run_coldstart(&settings);
    status!("{}", report.render_text());
    if let Err(e) = std::fs::write(&out_path, report.render_json()) {
        eprintln!("error: could not write {out_path}: {e}");
        std::process::exit(1);
    }
    status!("# wrote {out_path}");
    status!("{}", telemetry_report());
    let failures = report.gate_failures();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("error: {f}");
        }
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// The `audit` subcommand: replays a transcript's hash chain; exits
/// non-zero on any tamper or gap.
fn run_audit_command(args: &[String]) -> ! {
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: experiments audit TRANSCRIPT");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: could not read {path}: {e}");
            std::process::exit(1);
        }
    };
    match mvtee::transcript::verify_transcript(&text) {
        Ok(summary) => {
            status!(
                "# audit ok: {} entries over {} partition(s), {} pass / {} diverged",
                summary.entries, summary.partitions, summary.passes, summary.divergences
            );
            report!(
                "{{\"audit\": \"ok\", \"seed\": {}, \"fingerprint\": \"{}\", \
                 \"entries\": {}, \"partitions\": {}, \"passes\": {}, \
                 \"divergences\": {}, \"head\": \"{}\"}}",
                summary.seed,
                summary.fingerprint,
                summary.entries,
                summary.partitions,
                summary.passes,
                summary.divergences,
                summary.head
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: audit failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    QUIET.store(cli::has_flag(&args, "--quiet"), Ordering::Relaxed);
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: experiments [--quick] [--markdown] [--quiet] [fig9|fig10|fig11|fig12|fig13|fig14|table1|security|ablation|all]\n       experiments campaign [--seed N] [--count N] [--no-shrink]\n       experiments chaos [--seed N] [--scenarios N] [--quick]\n       experiments perf [--quick] [--out PATH]\n       experiments serve [--seed N] [--quick] [--out PATH]\n       experiments trace [--seed N] [--quick] [--out PATH] [--trace-out PATH]\n       experiments dist [--seed N] [--quick] [--out PATH]\n       experiments netchaos [--seed N] [--quick] [--out PATH]\n       experiments coldstart [--seed N] [--quick] [--out PATH]\n       experiments audit TRANSCRIPT"
        );
        return;
    }
    if args.first().map(String::as_str) == Some("campaign") {
        run_campaign_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("chaos") {
        run_chaos_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("perf") {
        run_perf_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        run_serve_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("trace") {
        run_trace_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("dist") {
        run_dist_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("netchaos") {
        run_netchaos_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("coldstart") {
        run_coldstart_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("audit") {
        run_audit_command(&args[1..]);
    }
    let quick = cli::has_flag(&args, "--quick");
    let markdown = cli::has_flag(&args, "--markdown");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    const KNOWN: [&str; 10] = [
        "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "table1", "security",
        "ablation", "all",
    ];
    if let Some(unknown) = selected.iter().find(|s| !KNOWN.contains(s)) {
        eprintln!("error: unknown experiment '{unknown}' (expected one of {KNOWN:?})");
        std::process::exit(2);
    }
    let settings = if quick { Settings::quick() } else { Settings::full() };
    let run_all = selected.is_empty() || selected.contains(&"all");
    let want = |name: &str| run_all || selected.contains(&name);

    status!(
        "# MVTEE experiments ({} scale, models: {:?}, {} batches/stream)",
        if quick { "test" } else { "bench" },
        settings.models.iter().map(|m| m.display_name()).collect::<Vec<_>>(),
        settings.batches,
    );
    status!("# methodology: measured component costs composed by a calibrated pipeline model;");
    status!("# Table 1 and the security experiments run the real threaded system.\n");

    let mut tables: Vec<Table> = Vec::new();
    if want("fig9") {
        status!("running fig9 …");
        tables.push(fig9(&settings));
    }
    if want("fig10") {
        status!("running fig10 …");
        tables.push(fig10(&settings));
    }
    if want("fig11") {
        status!("running fig11 …");
        tables.push(fig11(&settings));
    }
    if want("fig12") {
        status!("running fig12 …");
        tables.push(fig12(&settings));
    }
    if want("fig13") {
        status!("running fig13 …");
        tables.push(fig13(&settings));
    }
    if want("fig14") {
        status!("running fig14 …");
        tables.push(fig14(&settings));
    }
    if want("table1") {
        status!("running table1 …");
        tables.push(table1(&settings));
    }
    if want("security") {
        status!("running security …");
        tables.push(security_faults(&settings));
    }
    if want("ablation") {
        status!("running ablations …");
        tables.push(ablation_weight_fn(&settings));
        tables.push(ablation_metric(&settings));
    }
    for t in &tables {
        if markdown {
            report!("{}", t.render_markdown());
        } else {
            report!("{}", t.render());
        }
    }
    // What the instrumented pipeline recorded while the experiments ran.
    status!("{}", telemetry_report());
}
