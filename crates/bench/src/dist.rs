//! The `dist` experiment: distributed MVX over attested TCP.
//!
//! Runs the same 3-variant panel twice — all-in-process reference, then
//! with two variants hosted by real `mvtee-variantd` worker processes —
//! and holds the run to the conformance gates of
//! `tests/dist_conformance.rs`, plus the measurements the test cannot
//! produce:
//!
//! * **Byte identity** — outputs bit-for-bit and the rendered audit
//!   transcript byte-for-byte identical across placements. Any mismatch
//!   is a gate failure (the CLI exits non-zero).
//! * **Wire cost** — per-batch bytes on the multiplexed worker
//!   connections (from the `crypto.mux.bytes_*` counters) and the
//!   average bytes per voted checkpoint.
//! * **Round-trip latency** — per-batch p50/p95 of `infer` through the
//!   out-of-process panel.
//! * **Heal after kill** — a worker process killed mid-stream must
//!   quarantine, respawn, re-attest, and return the panel to full
//!   strength with zero lost batches; the latency from kill to full
//!   strength is reported.
//!
//! Artifact: `BENCH_dist.json`.

use mvtee::config::{MvxConfig, PartitionMvx, RecoveryPolicy, ResponsePolicy};
use mvtee::transcript::verify_transcript;
use mvtee::{Deployment, MvxError};
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Partitions in the panel (partition [`MVX_PARTITION`] carries MVX).
const PARTITIONS: usize = 2;
/// The MVX partition.
const MVX_PARTITION: usize = 1;
/// Panel size on the MVX partition.
const PANEL: usize = 3;
/// Variants hosted out-of-process in the conformance run.
const OUT_OF_PROCESS: [(usize, usize); 2] = [(MVX_PARTITION, 1), (MVX_PARTITION, 2)];

/// Dist experiment parameters.
#[derive(Debug, Clone)]
pub struct DistSettings {
    /// Master seed: weights, inputs, and diversification derive from it.
    pub seed: u64,
    /// Batches streamed through each conformance run.
    pub batches: usize,
    /// Run the kill/heal probe (spawns and kills a worker process).
    pub probe_heal: bool,
    /// Zoo model under test.
    pub model: ModelKind,
    /// Zoo scale.
    pub profile: ScaleProfile,
}

impl DistSettings {
    /// CI smoke configuration.
    pub fn quick(seed: u64) -> Self {
        DistSettings {
            seed,
            batches: 6,
            probe_heal: true,
            model: ModelKind::MnasNet,
            profile: ScaleProfile::Test,
        }
    }

    /// Full configuration: more batches through the same gates.
    pub fn full(seed: u64) -> Self {
        DistSettings { batches: 16, ..Self::quick(seed) }
    }
}

/// Wire traffic and latency of one batch through the worker connections.
#[derive(Debug, Clone, Copy)]
pub struct WireSample {
    /// Batch index.
    pub batch: usize,
    /// Bytes the monitor sent to workers during this batch.
    pub bytes_out: u64,
    /// Bytes the monitor received from workers during this batch.
    pub bytes_in: u64,
    /// End-to-end `infer` round trip.
    pub rtt_ns: u64,
}

/// What the kill/heal probe observed.
#[derive(Debug, Clone, Default)]
pub struct HealProbe {
    /// The worker process was killed.
    pub killed: bool,
    /// The monitor quarantined the killed variant.
    pub quarantined: bool,
    /// The recovery manager brought a replacement online.
    pub recovered: bool,
    /// A post-recovery checkpoint passed with the full panel agreeing.
    pub full_strength: bool,
    /// A fresh worker process was spawned for the replacement
    /// (placement is sticky across recovery).
    pub respawned: bool,
    /// Batches served between the kill and full strength.
    pub served_after_kill: usize,
    /// Batches lost or wrong after the kill (must be zero).
    pub lost_batches: usize,
    /// Latency from the kill to the full-strength checkpoint.
    pub heal_ns: u64,
}

/// Everything the dist experiment produced.
#[derive(Debug, Clone)]
pub struct DistReport {
    /// The master seed.
    pub seed: u64,
    /// The run-configuration fingerprint welded into the transcript.
    pub fingerprint: String,
    /// Batches per conformance run.
    pub batches: usize,
    /// Worker processes the distributed run spawned.
    pub workers: usize,
    /// Outputs matched the in-process reference bit-for-bit.
    pub outputs_identical: bool,
    /// Audit transcripts were byte-identical across placements.
    pub transcript_identical: bool,
    /// Entries the distributed transcript's self-audit verified.
    pub audit_entries: usize,
    /// The self-audit failure, if any.
    pub audit_error: Option<String>,
    /// Per-batch wire traffic of the distributed run.
    pub wire: Vec<WireSample>,
    /// Round-trip p50 across the distributed run's batches.
    pub rtt_p50_ns: u64,
    /// Round-trip p95 across the distributed run's batches.
    pub rtt_p95_ns: u64,
    /// The kill/heal probe, when requested.
    pub heal: Option<HealProbe>,
    /// Infrastructure failure that aborted a phase (e.g. the
    /// `mvtee-variantd` binary was not built), if any.
    pub error: Option<String>,
}

impl DistReport {
    /// Total bytes the monitor sent to workers across the sampled
    /// batches.
    pub fn wire_bytes_out(&self) -> u64 {
        self.wire.iter().map(|w| w.bytes_out).sum()
    }

    /// Total bytes the monitor received from workers across the sampled
    /// batches.
    pub fn wire_bytes_in(&self) -> u64 {
        self.wire.iter().map(|w| w.bytes_in).sum()
    }

    /// Average wire bytes (both directions) per voted checkpoint entry.
    pub fn bytes_per_checkpoint(&self) -> u64 {
        if self.audit_entries == 0 {
            return 0;
        }
        (self.wire_bytes_out() + self.wire_bytes_in()) / self.audit_entries as u64
    }

    /// The gate CI holds the run to.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        if let Some(e) = &self.error {
            failures.push(format!("experiment aborted: {e}"));
            return failures;
        }
        if self.workers != OUT_OF_PROCESS.len() {
            failures.push(format!(
                "expected {} worker process(es), saw {}",
                OUT_OF_PROCESS.len(),
                self.workers
            ));
        }
        if !self.outputs_identical {
            failures.push("out-of-process outputs differ from the in-process reference".into());
        }
        if !self.transcript_identical {
            failures.push("audit transcript differs across placements".into());
        }
        if let Some(e) = &self.audit_error {
            failures.push(format!("self-audit rejected the transcript: {e}"));
        }
        if self.wire_bytes_out() == 0 || self.wire_bytes_in() == 0 {
            failures.push("no wire traffic recorded — checkpoints did not cross the TCP boundary".into());
        }
        if let Some(h) = &self.heal {
            if !h.killed {
                failures.push("the worker process could not be killed".into());
            }
            if !h.quarantined {
                failures.push("the killed worker was never quarantined".into());
            }
            if !h.recovered {
                failures.push("the quarantined variant never recovered".into());
            }
            if !h.full_strength {
                failures.push("no post-recovery checkpoint reached full panel strength".into());
            }
            if !h.respawned {
                failures.push("recovery did not respawn an out-of-process worker".into());
            }
            if h.lost_batches > 0 {
                failures.push(format!(
                    "{} batch(es) lost or wrong after the worker kill",
                    h.lost_batches
                ));
            }
        }
        failures
    }

    /// Human-readable summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# dist seed={} fingerprint={} batches={} workers={}",
            self.seed, self.fingerprint, self.batches, self.workers
        );
        if let Some(e) = &self.error {
            let _ = writeln!(out, "ABORTED: {e}");
            return out;
        }
        let _ = writeln!(
            out,
            "conformance: outputs-identical={} transcript-identical={} audit-entries={}",
            self.outputs_identical, self.transcript_identical, self.audit_entries
        );
        let _ = writeln!(
            out,
            "wire: {} B out / {} B in over {} batch(es); {} B per checkpoint",
            self.wire_bytes_out(),
            self.wire_bytes_in(),
            self.wire.len(),
            self.bytes_per_checkpoint()
        );
        let _ = writeln!(
            out,
            "round trip: p50 {:.3} ms, p95 {:.3} ms",
            self.rtt_p50_ns as f64 / 1e6,
            self.rtt_p95_ns as f64 / 1e6
        );
        if let Some(h) = &self.heal {
            let _ = writeln!(
                out,
                "heal: killed={} quarantined={} recovered={} full-strength={} respawned={} \
                 served-after-kill={} lost={} heal {:.1} ms",
                h.killed,
                h.quarantined,
                h.recovered,
                h.full_strength,
                h.respawned,
                h.served_after_kill,
                h.lost_batches,
                h.heal_ns as f64 / 1e6
            );
        }
        for f in self.gate_failures() {
            let _ = writeln!(out, "GATE: {f}");
        }
        out
    }

    /// The `BENCH_dist.json` artifact.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&crate::meta_json_line("mvtee-dist-v1", self.seed, &self.fingerprint));
        let _ = writeln!(
            out,
            "  \"conformance\": {{\"workers\": {}, \"outputs_identical\": {}, \
             \"transcript_identical\": {}, \"audit_entries\": {}, \"audit_error\": {}}},",
            self.workers,
            self.outputs_identical,
            self.transcript_identical,
            self.audit_entries,
            match &self.audit_error {
                None => "null".to_string(),
                Some(e) => format!("{:?}", e),
            }
        );
        let _ = writeln!(
            out,
            "  \"wire\": {{\"bytes_out\": {}, \"bytes_in\": {}, \
             \"bytes_per_checkpoint\": {}, \"per_batch\": [",
            self.wire_bytes_out(),
            self.wire_bytes_in(),
            self.bytes_per_checkpoint()
        );
        for (i, w) in self.wire.iter().enumerate() {
            let comma = if i + 1 == self.wire.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"batch\": {}, \"bytes_out\": {}, \"bytes_in\": {}, \"rtt_ns\": {}}}{comma}",
                w.batch, w.bytes_out, w.bytes_in, w.rtt_ns
            );
        }
        out.push_str("  ]},\n");
        let _ = writeln!(
            out,
            "  \"round_trip\": {{\"p50_ns\": {}, \"p95_ns\": {}}},",
            self.rtt_p50_ns, self.rtt_p95_ns
        );
        match &self.heal {
            None => out.push_str("  \"heal\": null,\n"),
            Some(h) => {
                let _ = writeln!(
                    out,
                    "  \"heal\": {{\"killed\": {}, \"quarantined\": {}, \"recovered\": {}, \
                     \"full_strength\": {}, \"respawned\": {}, \"served_after_kill\": {}, \
                     \"lost_batches\": {}, \"heal_ns\": {}}},",
                    h.killed,
                    h.quarantined,
                    h.recovered,
                    h.full_strength,
                    h.respawned,
                    h.served_after_kill,
                    h.lost_batches,
                    h.heal_ns
                );
            }
        }
        let failures = self.gate_failures();
        let _ = writeln!(
            out,
            "  \"gate_failures\": [{}]",
            failures.iter().map(|f| format!("{f:?}")).collect::<Vec<_>>().join(", ")
        );
        out.push_str("}\n");
        out
    }
}

/// The run-configuration fingerprint welded into the transcript header.
fn config_fingerprint(model: &zoo::Model) -> String {
    format!(
        "{}-{:016x}-dist-p{}x{}",
        model.kind.display_name(),
        mvtee_runtime::graph_fingerprint(&model.graph),
        PARTITIONS,
        PANEL
    )
}

/// The conformance panel: diversified 3-variant MVX on partition 1.
fn panel_config() -> MvxConfig {
    let mut cfg = MvxConfig::fast_path(PARTITIONS);
    cfg.claims[MVX_PARTITION] = PartitionMvx::diversified(PANEL);
    cfg
}

/// The heal-probe panel: replicated 3-variant MVX with majority response
/// and recovery enabled.
fn heal_config() -> MvxConfig {
    let mut cfg = MvxConfig::fast_path(PARTITIONS);
    cfg.claims[MVX_PARTITION] = PartitionMvx::replicated(PANEL);
    cfg.response = ResponsePolicy::ContinueWithMajority;
    cfg.recovery = RecoveryPolicy::enabled();
    cfg.checkpoint_deadline_ms = 300;
    cfg
}

/// The deterministic input of batch `index`.
fn dist_input(seed: u64, model: &zoo::Model, index: u64) -> Tensor {
    let n = model.input_shape.num_elements();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd157_u64 ^ index);
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Tensor::from_vec(data, model.input_shape.dims()).expect("static input shape")
}

/// Bit-exact tensor equality (NaN-safe).
fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims()
        && a.data().iter().zip(b.data().iter()).all(|(p, q)| p.to_bits() == q.to_bits())
}

/// The worst-case detect→react time, derived from the configuration
/// (mirrors `tests/dist_conformance.rs`).
fn heal_deadline(cfg: &MvxConfig) -> Duration {
    let attempts = cfg.recovery.max_retries + 1;
    let backoff_total: Duration =
        (0..cfg.recovery.max_retries).map(|k| cfg.recovery.backoff(k)).sum();
    cfg.checkpoint_deadline() * (attempts + 1) + backoff_total + cfg.result_timeout()
}

/// One conformance run with the given placements; returns outputs, the
/// rendered transcript, the worker count, and per-batch wire samples.
fn conformance_run(
    s: &DistSettings,
    out_of_process: &[(usize, usize)],
) -> Result<(Vec<Tensor>, String, usize, Vec<WireSample>), MvxError> {
    let model = zoo::build(s.model, s.profile, s.seed).expect("zoo model builds");
    let fingerprint = config_fingerprint(&model);
    let inputs: Vec<Tensor> =
        (0..s.batches as u64).map(|i| dist_input(s.seed, &model, i)).collect();
    let mut builder = Deployment::builder(model)
        .config(panel_config())
        .partition_seed(s.seed)
        .variant_seed(s.seed);
    for &(p, v) in out_of_process {
        builder = builder.out_of_process(p, v);
    }
    let mut dep = builder.build()?;
    let workers = dep.worker_pids().len();
    let tx = mvtee_telemetry::counter("crypto.mux.bytes_out");
    let rx = mvtee_telemetry::counter("crypto.mux.bytes_in");
    let mut outputs = Vec::with_capacity(inputs.len());
    let mut wire = Vec::with_capacity(inputs.len());
    for (batch, input) in inputs.iter().enumerate() {
        let (out0, in0) = (tx.get(), rx.get());
        let start = Instant::now();
        outputs.push(dep.infer(input)?);
        wire.push(WireSample {
            batch,
            bytes_out: tx.get() - out0,
            bytes_in: rx.get() - in0,
            rtt_ns: start.elapsed().as_nanos() as u64,
        });
    }
    let transcript = dep.transcript().render(s.seed, &fingerprint);
    dep.shutdown();
    Ok((outputs, transcript, workers, wire))
}

/// The kill/heal probe: one out-of-process variant, killed after two
/// verified batches; streams until the panel is back at full strength,
/// counting lost batches (there must be none).
fn run_heal_probe(s: &DistSettings) -> Result<HealProbe, MvxError> {
    let cfg = heal_config();
    let spawned0 = mvtee_telemetry::counter("core.worker.spawned").get();
    let model = zoo::build(s.model, s.profile, s.seed).expect("zoo model builds");
    let inputs: Vec<Tensor> = (0..3u64).map(|i| dist_input(s.seed, &model, i)).collect();

    // The in-process oracle fixes expected outputs.
    let mut oracle = Deployment::builder(zoo::build(s.model, s.profile, s.seed).expect("model"))
        .config(cfg.clone())
        .partition_seed(s.seed)
        .variant_seed(s.seed)
        .build()?;
    let expected: Vec<Tensor> =
        inputs.iter().map(|i| oracle.infer(i)).collect::<Result<_, _>>()?;
    oracle.shutdown();

    let mut dep = Deployment::builder(zoo::build(s.model, s.profile, s.seed).expect("model"))
        .config(cfg.clone())
        .partition_seed(s.seed)
        .variant_seed(s.seed)
        .out_of_process(MVX_PARTITION, 0)
        .build()?;

    let mut probe = HealProbe::default();
    let mut served = 0u64;
    for _ in 0..2u64 {
        let idx = (served % inputs.len() as u64) as usize;
        let out = dep.infer(&inputs[idx])?;
        if !bits_equal(&out, &expected[idx]) {
            probe.lost_batches += 1;
        }
        served += 1;
    }

    probe.killed = dep.kill_worker(MVX_PARTITION, 0);
    let kill_instant = Instant::now();
    let deadline = kill_instant + heal_deadline(&cfg);
    let poll = cfg.drain_poll();
    while Instant::now() < deadline {
        let idx = (served % inputs.len() as u64) as usize;
        match dep.infer(&inputs[idx]) {
            Ok(out) if bits_equal(&out, &expected[idx]) => {}
            _ => probe.lost_batches += 1,
        }
        served += 1;
        probe.served_after_kill += 1;
        let events = dep.events();
        if let Some(&(qp, qv, qb)) = events.quarantines().first() {
            probe.quarantined = qp == MVX_PARTITION && qv == 0;
            probe.recovered = events.recoveries().contains(&(qp, qv));
            probe.full_strength = events
                .checkpoint_passes()
                .iter()
                .any(|&(pp, pb, agreeing)| pp == qp && pb > qb && agreeing == PANEL);
            if probe.quarantined && probe.recovered && probe.full_strength {
                probe.heal_ns = kill_instant.elapsed().as_nanos() as u64;
                break;
            }
        }
        std::thread::sleep(poll);
    }
    probe.respawned =
        mvtee_telemetry::counter("core.worker.spawned").get() >= spawned0 + 2;
    dep.shutdown();
    Ok(probe)
}

/// `v` of the sorted slice at quantile `q`.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs the dist experiment.
pub fn run_dist(s: &DistSettings) -> DistReport {
    let model = zoo::build(s.model, s.profile, s.seed).expect("zoo model builds");
    let fingerprint = config_fingerprint(&model);
    drop(model);

    let mut report = DistReport {
        seed: s.seed,
        fingerprint,
        batches: s.batches,
        workers: 0,
        outputs_identical: false,
        transcript_identical: false,
        audit_entries: 0,
        audit_error: None,
        wire: Vec::new(),
        rtt_p50_ns: 0,
        rtt_p95_ns: 0,
        heal: None,
        error: None,
    };

    let (ref_outputs, ref_transcript, ref_workers, _) = match conformance_run(s, &[]) {
        Ok(run) => run,
        Err(e) => {
            report.error = Some(format!("in-process reference failed: {e}"));
            return report;
        }
    };
    debug_assert_eq!(ref_workers, 0);
    let (dist_outputs, dist_transcript, workers, wire) =
        match conformance_run(s, &OUT_OF_PROCESS) {
            Ok(run) => run,
            Err(e) => {
                report.error = Some(format!("distributed run failed: {e}"));
                return report;
            }
        };

    report.workers = workers;
    report.outputs_identical = ref_outputs.len() == dist_outputs.len()
        && ref_outputs.iter().zip(&dist_outputs).all(|(a, b)| bits_equal(a, b));
    report.transcript_identical = ref_transcript == dist_transcript;
    match verify_transcript(&dist_transcript) {
        Ok(summary) => report.audit_entries = summary.entries,
        Err(e) => report.audit_error = Some(e.to_string()),
    }
    let mut rtts: Vec<u64> = wire.iter().map(|w| w.rtt_ns).collect();
    rtts.sort_unstable();
    report.rtt_p50_ns = percentile(&rtts, 0.50);
    report.rtt_p95_ns = percentile(&rtts, 0.95);
    report.wire = wire;

    if s.probe_heal {
        match run_heal_probe(s) {
            Ok(probe) => report.heal = Some(probe),
            Err(e) => report.error = Some(format!("heal probe failed: {e}")),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance_phase_passes_every_gate() {
        // The heal probe kills and respawns a worker process — the CLI
        // (and CI's dist-smoke job) runs it in its own process; the unit
        // test holds the byte-identity gates with real workers.
        let mut s = DistSettings::quick(7);
        s.batches = 2;
        s.probe_heal = false;
        let report = run_dist(&s);
        assert!(
            report.gate_failures().is_empty(),
            "gate failures: {:?}\n{}",
            report.gate_failures(),
            report.render_text()
        );
        assert_eq!(report.workers, OUT_OF_PROCESS.len());
        assert!(report.wire_bytes_out() > 0 && report.wire_bytes_in() > 0);
        let json = report.render_json();
        assert!(json.contains("\"mvtee-dist-v1\""));
        assert!(json.contains("\"gate_failures\": []"));
    }
}
